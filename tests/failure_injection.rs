//! Failure injection across the substrates: storage corruption, vault
//! misuse, incoherent configurations.

use sp_system::core::{RunConfig, SpSystem};
use sp_system::env::{catalog, Version};
use sp_system::store::{FrozenImage, ObjectId, StoreError};

/// Corrupting a stored artifact is detected at read time — the integrity
/// guarantee the preservation programme rests on.
#[test]
fn storage_corruption_is_detected() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    let run = system
        .run_validation(
            "hermes",
            image,
            &RunConfig {
                scale: 0.1,
                ..RunConfig::default()
            },
        )
        .unwrap();

    // Corrupt the first output object of the run.
    let (_, victim) = run.results[0].outputs[0].clone();
    assert!(system.storage().content().corrupt_for_test(victim));
    match system.storage().content().get(victim) {
        Err(StoreError::Corrupt { expected, .. }) => assert_eq!(expected, victim),
        other => panic!("corruption must be detected, got {other:?}"),
    }
    // The fsck sweep finds exactly the corrupted object.
    assert_eq!(system.storage().content().verify_all(), vec![victim]);
}

/// The vault refuses to overwrite a conserved image.
#[test]
fn vault_is_write_once() {
    let system = SpSystem::new();
    let image = FrozenImage {
        label: "h1-final".into(),
        recipe: ObjectId::for_bytes(b"recipe"),
        artifacts: vec![],
        frozen_at: 0,
        description: "first conservation".into(),
    };
    system.vault().freeze(image.clone()).unwrap();
    let err = system.vault().freeze(image).unwrap_err();
    assert!(matches!(err, StoreError::AlreadyFrozen(_)));
}

/// Runs against unknown experiments or images fail cleanly, without
/// touching the ledger.
#[test]
fn unknown_targets_leave_no_trace() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    let config = RunConfig::default();
    assert!(system.run_validation("ghost", image, &config).is_err());
    assert!(system
        .run_validation("ghost", sp_system::env::VmImageId(42), &config)
        .is_err());
    assert_eq!(system.ledger().run_count(), 0);
}

/// A cyclic experiment stack is rejected at registration.
#[test]
fn cyclic_stack_rejected_at_registration() {
    use sp_system::build::{DependencyGraph, Package, PackageKind};
    let mut graph = DependencyGraph::new();
    graph
        .add(Package::new("a", Version::new(1, 0, 0), PackageKind::Library).dep("b"))
        .unwrap();
    graph
        .add(Package::new("b", Version::new(1, 0, 0), PackageKind::Library).dep("a"))
        .unwrap();
    let broken = sp_system::core::ExperimentDef {
        name: "broken".into(),
        color: "grey",
        graph,
        suite: sp_system::core::TestSuite::new(
            "broken",
            sp_system::core::PreservationLevel::FullSoftware,
        ),
        entry_points: vec![],
    };
    let system = SpSystem::new();
    assert!(system.register_experiment(broken).is_err());
}

/// DST files survive storage round-trips but reject tampering.
#[test]
fn dst_files_reject_tampering() {
    use sp_system::hep::{read_dst, write_dst, EventGenerator, GeneratorConfig};
    let events: Vec<_> = EventGenerator::new(GeneratorConfig::hera_nc(), 5)
        .take(20)
        .collect();
    let bytes = write_dst(&events);

    let system = SpSystem::new();
    let oid = system.storage().put_named(
        sp_system::store::StorageArea::Results,
        "test/dst",
        bytes.to_vec(),
    );
    let restored = system.storage().content().get(oid).unwrap();
    assert_eq!(read_dst(&restored).unwrap(), events);

    let mut tampered = restored.to_vec();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    assert!(read_dst(&tampered).is_err());
}
