//! Failure injection across the substrates: storage corruption, vault
//! misuse, incoherent configurations.

use sp_system::core::{RunConfig, SpSystem};
use sp_system::env::{catalog, Version};
use sp_system::store::{FrozenImage, ObjectId, StoreError};

/// Corrupting a stored artifact is detected at read time — the integrity
/// guarantee the preservation programme rests on.
#[test]
fn storage_corruption_is_detected() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    let run = system
        .run_validation(
            "hermes",
            image,
            &RunConfig {
                scale: 0.1,
                ..RunConfig::default()
            },
        )
        .unwrap();

    // Corrupt the first output object of the run.
    let (_, victim) = run.results[0].outputs[0].clone();
    assert!(system.storage().content().corrupt_for_test(victim));
    match system.storage().content().get(victim) {
        Err(StoreError::Corrupt { expected, .. }) => assert_eq!(expected, victim),
        other => panic!("corruption must be detected, got {other:?}"),
    }
    // The fsck sweep finds exactly the corrupted object.
    assert_eq!(system.storage().content().verify_all(), vec![victim]);
}

/// The vault refuses to overwrite a conserved image.
#[test]
fn vault_is_write_once() {
    let system = SpSystem::new();
    let image = FrozenImage {
        label: "h1-final".into(),
        recipe: ObjectId::for_bytes(b"recipe"),
        artifacts: vec![],
        frozen_at: 0,
        description: "first conservation".into(),
    };
    system.vault().freeze(image.clone()).unwrap();
    let err = system.vault().freeze(image).unwrap_err();
    assert!(matches!(err, StoreError::AlreadyFrozen(_)));
}

/// Runs against unknown experiments or images fail cleanly, without
/// touching the ledger.
#[test]
fn unknown_targets_leave_no_trace() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    let config = RunConfig::default();
    assert!(system.run_validation("ghost", image, &config).is_err());
    assert!(system
        .run_validation("ghost", sp_system::env::VmImageId(42), &config)
        .is_err());
    assert_eq!(system.ledger().run_count(), 0);
}

/// A cyclic experiment stack is rejected at registration.
#[test]
fn cyclic_stack_rejected_at_registration() {
    use sp_system::build::{DependencyGraph, Package, PackageKind};
    let mut graph = DependencyGraph::new();
    graph
        .add(Package::new("a", Version::new(1, 0, 0), PackageKind::Library).dep("b"))
        .unwrap();
    graph
        .add(Package::new("b", Version::new(1, 0, 0), PackageKind::Library).dep("a"))
        .unwrap();
    let broken = sp_system::core::ExperimentDef {
        name: "broken".into(),
        color: "grey",
        graph,
        suite: sp_system::core::TestSuite::new(
            "broken",
            sp_system::core::PreservationLevel::FullSoftware,
        ),
        entry_points: vec![],
    };
    let system = SpSystem::new();
    assert!(system.register_experiment(broken).is_err());
}

/// DST files survive storage round-trips but reject tampering.
#[test]
fn dst_files_reject_tampering() {
    use sp_system::hep::{read_dst, write_dst, EventGenerator, GeneratorConfig};
    let events: Vec<_> = EventGenerator::new(GeneratorConfig::hera_nc(), 5)
        .take(20)
        .collect();
    let bytes = write_dst(&events);

    let system = SpSystem::new();
    let oid = system.storage().put_named(
        sp_system::store::StorageArea::Results,
        "test/dst",
        bytes.to_vec(),
    );
    let restored = system.storage().content().get(oid).unwrap();
    assert_eq!(read_dst(&restored).unwrap(), events);

    let mut tampered = restored.to_vec();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    assert!(read_dst(&tampered).is_err());
}

/// A half-written warm-state snapshot — the residue of a crash without
/// fsync — degrades a system import to a cold restart: the storage import
/// still stands, the truncation is reported (not swallowed), and nothing
/// panics or half-restores.
#[test]
fn torn_warm_state_degrades_to_cold_restart() {
    use sp_system::core::WARM_STATE_FILE;

    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    system
        .run_validation(
            "hermes",
            image,
            &RunConfig {
                scale: 0.1,
                ..RunConfig::default()
            },
        )
        .unwrap();

    let dir = std::env::temp_dir().join(format!("sp-torn-warm-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let exported = system.export_to_dir(&dir).unwrap();
    assert!(exported.warm_state_bytes > 0);

    // The crash model's worst case: the snapshot torn to a prefix.
    let warm = dir.join(WARM_STATE_FILE);
    let bytes = std::fs::read(&warm).unwrap();
    std::fs::write(&warm, &bytes[..bytes.len() / 2]).unwrap();

    let restarted = SpSystem::new();
    let summary = restarted.import_from_dir(&dir).unwrap();
    assert!(
        summary.warm_state_error.is_some(),
        "the torn snapshot must be reported, not swallowed"
    );
    assert_eq!(
        summary.warm,
        Default::default(),
        "no partial warm restore: cold restart or nothing"
    );
    assert_eq!(
        summary.storage.objects_rejected, 0,
        "the storage import stands on its own"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The system warm-state export commits with full fsync discipline: crash
/// the export at each of the final snapshot-write operations and the
/// exported directory holds either the complete snapshot or none at all.
#[test]
fn warm_state_export_has_no_third_outcome() {
    use sp_system::core::WARM_STATE_FILE;
    use sp_system::store::{FaultConfig, FaultFs};

    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    system
        .run_validation(
            "hermes",
            image,
            &RunConfig {
                scale: 0.1,
                ..RunConfig::default()
            },
        )
        .unwrap();

    // Reference pass: count the export's operations and capture the
    // intact snapshot bytes.
    let base = std::env::temp_dir().join(format!("sp-export-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let reference = base.join("reference");
    let probe = FaultFs::over_os(FaultConfig::default());
    system.export_to_dir_fs(&reference, &probe).unwrap();
    assert!(
        probe.violations().is_empty(),
        "export must sync before rename"
    );
    let total_ops = probe.op_count();
    let intact = std::fs::read(reference.join(WARM_STATE_FILE)).unwrap();

    // Crash the final stretch — the warm-state stage/sync/rename/sync
    // tail plus slack into the storage export before it.
    let first = total_ops.saturating_sub(8);
    for crash_at in first..total_ops {
        let dir = base.join(format!("crash-{crash_at}"));
        let fs = FaultFs::over_os(FaultConfig {
            seed: crash_at,
            io_fault_rate: 0.0,
            crash_at: Some(crash_at),
        });
        assert!(
            system.export_to_dir_fs(&dir, &fs).is_err(),
            "crash point {crash_at} must abort the export"
        );
        fs.apply_crash();
        assert!(fs.violations().is_empty());
        // An absent file (read fails) is equally acceptable: the export
        // never happened.
        if let Ok(bytes) = std::fs::read(dir.join(WARM_STATE_FILE)) {
            assert_eq!(
                bytes, intact,
                "crash at {crash_at}: surviving snapshot must be whole"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
