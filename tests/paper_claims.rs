//! Assertions of the paper's quantitative and structural claims, each
//! annotated with its source section.

use sp_system::core::{RunConfig, SpSystem, TestCategory};
use sp_system::env::{catalog, Compiler, OsRelease, Version};
use sp_system::exec::{ClientKind, CronSchedule};
use sp_system::experiments::{common, h1_experiment, hera_experiments};

/// §3.1: "virtual machines with five different configurations: SL5/32bit
/// with gcc4.1 and gcc4.4, SL5/64bit with gcc4.1 and gcc4.4, SL6/64bit with
/// gcc4.4."
#[test]
fn five_vm_configurations() {
    let images = catalog::paper_images();
    assert_eq!(images.len(), 5);
    let labels: Vec<String> = images.iter().map(|s| s.label()).collect();
    assert_eq!(
        labels,
        vec![
            "SL5/32bit gcc4.1",
            "SL5/32bit gcc4.4",
            "SL5/64bit gcc4.1",
            "SL5/64bit gcc4.4",
            "SL6/64bit gcc4.4",
        ]
    );
}

/// §3.1: "the ROOT versions used by the experiments: 5.26, 5.28, 5.30,
/// 5.32, and 5.34."
#[test]
fn five_root_versions() {
    let versions: Vec<String> = catalog::paper_root_versions()
        .iter()
        .map(|v| v.to_string())
        .collect();
    assert_eq!(versions, vec!["5.26", "5.28", "5.30", "5.32", "5.34"]);
}

/// §3.1: "The only requirement of a new machine is to have access to the
/// common sp-system storage … as well as the ability to run a cron-job."
#[test]
fn client_joining_requirements() {
    let system = SpSystem::new();
    // Both requirements met: any machine kind joins.
    for (name, kind) in [
        (
            "vm",
            ClientKind::VirtualMachine {
                image_label: "SL6/64bit gcc4.4".into(),
            },
        ),
        ("batch", ClientKind::BatchNode),
        ("grid", ClientKind::GridWorker),
    ] {
        assert!(system
            .register_client(name, kind, CronSchedule::nightly(), true, true)
            .is_ok());
    }
    // Either requirement missing: rejected.
    assert!(system
        .register_client(
            "no-storage",
            ClientKind::BatchNode,
            CronSchedule::nightly(),
            false,
            true
        )
        .is_err());
    assert!(system
        .register_client(
            "no-cron",
            ClientKind::BatchNode,
            CronSchedule::nightly(),
            true,
            false
        )
        .is_err());
}

/// §3.2: "the compilation of approximately 100 individual H1 software
/// packages … expected to comprise of up to 500 tests in total."
#[test]
fn h1_test_inventory() {
    let h1 = h1_experiment();
    assert_eq!(h1.package_count(), 100);
    let breakdown = h1.suite.breakdown();
    assert_eq!(breakdown.count(TestCategory::Compilation), 100);
    let expanded = common::expanded_test_count(&h1.suite);
    assert!(
        (400..=500).contains(&expanded),
        "H1 expands to {expanded} tests"
    );
}

/// §3.2: chains run "from MC generation and simulation, through multi-level
/// file production and ending with a full physics analysis and subsequent
/// validation of the results".
#[test]
fn chains_have_the_paper_stage_structure() {
    for experiment in hera_experiments() {
        for test in experiment.suite.tests() {
            if let sp_system::core::TestKind::Chain { chain, .. } = &test.kind {
                let stages: Vec<&str> = chain.stages().iter().map(|s| s.name.as_str()).collect();
                assert_eq!(
                    stages,
                    vec!["mcgen", "sim", "dst", "microdst", "analysis", "validation"],
                    "chain {} of {}",
                    chain.name,
                    experiment.name
                );
            }
        }
    }
}

/// §3.3: "Each test-job started in the sp-system is typically assigned a
/// unique ID, and all scripts and input files used in the test as well as
/// all output files are kept."
#[test]
fn unique_job_ids_and_outputs_kept() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    let config = RunConfig {
        scale: 0.1,
        ..RunConfig::default()
    };
    let run = system.run_validation("hermes", image, &config).unwrap();

    // Unique job ids across the run.
    let mut job_ids: Vec<_> = run.results.iter().map(|r| r.job).collect();
    let before = job_ids.len();
    job_ids.sort();
    job_ids.dedup();
    assert_eq!(job_ids.len(), before, "job ids are unique");

    // Every output object is retrievable from the common storage; the test
    // scripts were conserved at registration.
    for result in &run.results {
        for (_, oid) in &result.outputs {
            assert!(system.storage().content().contains(*oid));
        }
    }
    let scripts = system
        .storage()
        .list(sp_system::store::StorageArea::Tests, "hermes/");
    assert!(!scripts.is_empty(), "test scripts conserved");
}

/// §2 / Table 1: four preservation levels in three complementary areas,
/// and "most experiments in DPHEP plan for a level 4 preservation
/// programme" — all three HERA suites target Level 4.
#[test]
fn preservation_levels_and_hera_programmes() {
    use sp_system::core::PreservationLevel;
    assert_eq!(PreservationLevel::all().len(), 4);
    for experiment in hera_experiments() {
        assert_eq!(experiment.suite.level, PreservationLevel::FullSoftware);
        assert!(experiment.suite.covers_level());
    }
}

/// Figure 3: the three experiment bands carry the paper's colours.
#[test]
fn figure3_band_colours() {
    let experiments = hera_experiments();
    let by_name: std::collections::BTreeMap<&str, &str> = experiments
        .iter()
        .map(|e| (e.name.as_str(), e.color))
        .collect();
    assert_eq!(by_name["zeus"], "orange");
    assert_eq!(by_name["h1"], "blue");
    assert_eq!(by_name["hermes"], "red");
}

/// §3.1 image coherence: the extension environments exist and the
/// impossible ones are rejected.
#[test]
fn extension_images_and_coherence() {
    // SL7 images build.
    for spec in catalog::extension_images() {
        assert!(spec.validate().is_empty(), "{} invalid", spec.label());
    }
    // gcc 4.1 is not packaged for SL6; 32-bit SL6 guests don't exist.
    let bad_compiler = sp_system::env::EnvironmentSpec::new(
        OsRelease::SL6,
        sp_system::env::Arch::X86_64,
        Compiler::GCC41,
    );
    assert!(!bad_compiler.validate().is_empty());
}
