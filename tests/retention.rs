//! Retention-policy integration: pruning the run history without ever
//! losing the reference outputs the next validation needs.

use sp_system::core::{RunConfig, SpSystem};
use sp_system::env::{catalog, Version};
use sp_system::store::RetentionPolicy;

fn config() -> RunConfig {
    RunConfig {
        scale: 0.1,
        threads: 2,
        ..RunConfig::default()
    }
}

#[test]
fn keep_everything_policy_drops_nothing() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    for _ in 0..3 {
        system.clock().advance(86_400);
        system.run_validation("hermes", image, &config()).unwrap();
    }
    // Prune through the system: "now" is read from the virtual clock the
    // runs were stamped by, not passed in by the caller.
    let report = system.prune_runs(&RetentionPolicy::keep_everything());
    assert_eq!(report.dropped, 0);
    assert_eq!(report.kept, 3);
    assert_eq!(report.objects_removed, 0);
}

#[test]
fn pruning_preserves_references_and_comparability() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();

    // Five nightly runs; all successful, so the last one holds the
    // reference outputs.
    for _ in 0..5 {
        system.clock().advance(86_400);
        system.run_validation("hermes", image, &config()).unwrap();
    }
    assert_eq!(system.ledger().run_count(), 5);

    // Aggressive policy: keep the last run and one successful run.
    let report = system.prune_runs(&RetentionPolicy::pruning(1, 1, 0));
    assert!(report.dropped > 0, "old runs are pruned: {report:?}");
    assert!(system.ledger().run_count() < 5);

    // The reference survives and the next run still compares cleanly.
    assert!(system.ledger().has_reference("hermes"));
    system.clock().advance(86_400);
    let next = system.run_validation("hermes", image, &config()).unwrap();
    assert!(next.is_successful());
    let compared = next.results.iter().filter(|r| r.compare.is_some()).count();
    assert!(compared > 0, "comparisons still work after pruning");

    // Storage integrity: no dangling references anywhere.
    assert!(system.storage().content().verify_all().is_empty());
    for run in system.ledger().runs() {
        for result in &run.results {
            for (name, oid) in &result.outputs {
                assert!(
                    system.storage().content().contains(*oid),
                    "kept run {} lost output {name}",
                    run.id
                );
            }
        }
    }
}

#[test]
fn pruning_actually_frees_storage() {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    // Different seeds => different outputs per run => prunable objects.
    for seed in 0..4 {
        system.clock().advance(86_400);
        let run_config = RunConfig { seed, ..config() };
        system.run_validation("hermes", image, &run_config).unwrap();
    }
    let before = system.storage().content().len();
    let report = system.prune_runs(&RetentionPolicy::pruning(1, 1, 0));
    let after = system.storage().content().len();
    assert!(report.objects_removed > 0);
    assert_eq!(before - after, report.objects_removed);
}
