//! Reproducibility guarantees: the property §3.3 calls "ensures
//! reproducibility of previous results".

use sp_system::core::{Campaign, CampaignConfig, CampaignOptions, RunConfig, SpSystem};
use sp_system::env::{catalog, Version};

fn fresh_system() -> (SpSystem, sp_system::env::VmImageId) {
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();
    (system, image)
}

fn config(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        scale: 0.15,
        threads: 4,
        ..RunConfig::default()
    }
}

/// Two independent systems, same seed: identical run digests (outputs are
/// bit-for-bit equal by content address).
#[test]
fn identical_systems_produce_identical_digests() {
    let (system_a, image_a) = fresh_system();
    let (system_b, image_b) = fresh_system();
    let run_a = system_a
        .run_validation("hermes", image_a, &config(1))
        .unwrap();
    let run_b = system_b
        .run_validation("hermes", image_b, &config(1))
        .unwrap();
    assert_eq!(run_a.digest(), run_b.digest());
}

/// Different seeds change the workloads (hence the outputs) but not the
/// verdicts on a healthy platform.
#[test]
fn seeds_change_outputs_not_verdicts() {
    let (system_a, image_a) = fresh_system();
    let (system_b, image_b) = fresh_system();
    let run_a = system_a
        .run_validation("hermes", image_a, &config(1))
        .unwrap();
    let run_b = system_b
        .run_validation("hermes", image_b, &config(2))
        .unwrap();
    assert_ne!(run_a.digest(), run_b.digest(), "outputs differ");
    assert!(run_a.is_successful());
    assert!(run_b.is_successful());
    assert_eq!(run_a.passed(), run_b.passed());
}

/// Thread count must not affect results (the parallel builder and job pool
/// are deterministic).
#[test]
fn thread_count_is_invisible() {
    let (system_a, image_a) = fresh_system();
    let (system_b, image_b) = fresh_system();
    let mut config_1 = config(7);
    config_1.threads = 1;
    let mut config_8 = config(7);
    config_8.threads = 8;
    let run_1 = system_a
        .run_validation("hermes", image_a, &config_1)
        .unwrap();
    let run_8 = system_b
        .run_validation("hermes", image_b, &config_8)
        .unwrap();
    assert_eq!(run_1.digest(), run_8.digest());
}

/// A rerun on the same system compares bit-identically against its own
/// reference: every comparison comes back `Identical`.
#[test]
fn reruns_compare_identical() {
    let (system, image) = fresh_system();
    let first = system.run_validation("hermes", image, &config(3)).unwrap();
    let second = system.run_validation("hermes", image, &config(3)).unwrap();
    assert_eq!(first.digest(), second.digest());
    let compared = second
        .results
        .iter()
        .filter(|r| r.compare.is_some())
        .count();
    assert!(compared > 0, "second run compares against the reference");
    for result in &second.results {
        if let Some(outcome) = &result.compare {
            assert_eq!(
                *outcome,
                sp_system::core::CompareOutcome::Identical,
                "test {}",
                result.test
            );
        }
    }
}

/// Whole campaigns are reproducible: same configuration, same summary.
#[test]
fn campaigns_are_reproducible() {
    let run_campaign = || {
        let (system, _) = {
            let system = SpSystem::new();
            let image = system
                .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
                .unwrap();
            (system, image)
        };
        system
            .register_experiment(sp_system::experiments::hermes_experiment())
            .unwrap();
        let campaign_config = CampaignConfig {
            experiments: vec!["hermes".into()],
            images: system.images().iter().map(|i| i.id).collect(),
            repetitions: 2,
            run: config(11),
            interval_secs: 86_400,
            options: CampaignOptions::default(),
        };
        let summary = Campaign::new(&system, campaign_config).execute().unwrap();
        summary
            .runs
            .iter()
            .map(|r| (r.experiment.clone(), r.passed, r.failed, r.successful))
            .collect::<Vec<_>>()
    };
    assert_eq!(run_campaign(), run_campaign());
}
