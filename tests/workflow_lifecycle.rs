//! Integration test of the full §3.1 four-phase workflow against the real
//! ZEUS stack, including the production-recipe export and the freeze.

use sp_system::build::prune::consolidate;
use sp_system::core::{classify, MigrationManager, Phase, RunConfig, SpSystem};
use sp_system::env::{catalog, Arch, CodeTrait, Version};

fn config() -> RunConfig {
    RunConfig {
        scale: 0.3,
        threads: 4,
        ..RunConfig::default()
    }
}

#[test]
fn zeus_four_phase_lifecycle() {
    let system = SpSystem::new();
    let sl5 = system
        .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
        .unwrap();
    let sl6 = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::zeus_experiment())
        .unwrap();

    // Phase i — preparation: the ZEUS stack consolidates cleanly on SL5.
    let mut manager = MigrationManager::new("zeus", system.clock().now());
    let zeus = system.experiment("zeus").unwrap();
    let sl5_env = system.image(sl5).unwrap().spec.clone();
    let consolidation = consolidate(&zeus.graph, &sl5_env, &zeus.entry_points);
    assert!(consolidation.is_clean(), "{consolidation:?}");
    manager
        .complete_preparation(vec![], system.clock().now())
        .unwrap();
    assert_eq!(manager.phase().name(), "operation");

    // Phase ii — operation: two clean nightly runs on SL5.
    for _ in 0..2 {
        system.clock().advance(86_400);
        let run = system.run_validation("zeus", sl5, &config()).unwrap();
        assert!(run.is_successful());
        manager
            .on_run(&sl5_env, &run, None, system.clock().now())
            .unwrap();
    }

    // Production recipe is exportable as soon as a validated run exists.
    let recipe = system.export_production_recipe("zeus").unwrap();
    assert!(recipe.environment.contains("os = SL5"));
    assert_eq!(recipe.artifacts.len(), 45, "one tar-ball per ZEUS package");
    assert!(recipe.render().contains("certified by validation run"));

    // Phase iii — the SL6 migration fails; analysis opens an intervention
    // blaming zcal.
    system.clock().advance(86_400);
    let sl6_env = system.image(sl6).unwrap().spec.clone();
    let migrated = system.run_validation("zeus", sl6, &config()).unwrap();
    assert!(!migrated.is_successful());
    let diagnosis = classify(&system.experiment("zeus").unwrap(), &migrated, &sl6_env);
    manager
        .on_run(&sl6_env, &migrated, diagnosis, system.clock().now())
        .unwrap();
    assert!(matches!(manager.phase(), Phase::Analysis { .. }));
    let open = manager.open_interventions().next().unwrap();
    assert_eq!(open.diagnosis.culprit, "zcal");

    // Intervention: fix zcal and revalidate.
    let mut fixed = sp_system::experiments::zeus_experiment();
    let mut graph = sp_system::build::DependencyGraph::new();
    for mut package in fixed.graph.packages().cloned() {
        if package.id.as_str() == "zcal" {
            package
                .traits
                .retain(|t| !matches!(t, CodeTrait::PointerSizeAssumption { .. }));
        }
        graph.add(package).unwrap();
    }
    fixed.graph = graph;
    system.register_experiment(fixed).unwrap();
    system.clock().advance(86_400);
    let revalidated = system.run_validation("zeus", sl6, &config()).unwrap();
    assert!(
        revalidated.is_successful(),
        "failures after fix: {:?}",
        revalidated
            .failures()
            .map(|r| (&r.test, &r.status))
            .collect::<Vec<_>>()
    );
    manager
        .on_run(&sl6_env, &revalidated, None, system.clock().now())
        .unwrap();
    assert_eq!(manager.phase().name(), "operation");
    assert_eq!(manager.open_interventions().count(), 0);

    // The production recipe now points at the SL6 configuration.
    let recipe = system.export_production_recipe("zeus").unwrap();
    assert!(recipe.environment.contains("os = SL6"));
    assert_eq!(recipe.validated_by, revalidated.id);

    // Phase iv — freeze conserves the SL6 image; the programme ends.
    let label = manager
        .freeze(
            system.vault(),
            "ZEUS programme concluded",
            vec![],
            system.clock().now(),
        )
        .unwrap();
    assert!(label.starts_with("zeus-SL6"));
    assert!(matches!(manager.phase(), Phase::Frozen { .. }));
    assert!(system.vault().get(&label).is_ok());
    // History shows the complete arc.
    let phases: Vec<&str> = manager.history().iter().map(|(_, p)| *p).collect();
    assert_eq!(
        phases,
        vec![
            "preparation",
            "operation",
            "analysis",
            "operation",
            "frozen"
        ]
    );
}
