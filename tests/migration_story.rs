//! Cross-crate integration: the §3.3 migration narrative on the real HERA
//! stacks — reference on SL5/32, migration to 64-bit surfaces the latent
//! bugs, classification routes the intervention, the fix closes the loop.

use sp_system::core::{classify, InputCategory, RegressionReport, RunConfig, SpSystem};
use sp_system::env::{catalog, Arch, Version};

fn config() -> RunConfig {
    RunConfig {
        scale: 0.35,
        threads: 4,
        ..RunConfig::default()
    }
}

/// H1 on SL6/64: the h1bank pointer bug must surface as data-validation
/// failures (not compile failures), be classified as experiment software,
/// and name the right package.
#[test]
fn h1_sl6_migration_finds_h1bank() {
    let system = SpSystem::new();
    let sl5 = system
        .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
        .unwrap();
    let sl6 = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::h1_experiment())
        .unwrap();

    let reference = system.run_validation("h1", sl5, &config()).unwrap();
    assert!(
        reference.is_successful(),
        "SL5/32bit is the clean reference platform: {:?}",
        reference.failures().take(3).collect::<Vec<_>>()
    );

    let migrated = system.run_validation("h1", sl6, &config()).unwrap();
    assert!(!migrated.is_successful(), "the latent bug must surface");

    // Compilation still succeeds (the bug is a warning at most).
    assert!(migrated
        .by_category(sp_system::core::TestCategory::Compilation)
        .all(|r| r.status.is_pass()));

    // The regression report sees only new failures, nothing fixed.
    let regression = RegressionReport::between(&reference, &migrated);
    assert!(!regression.is_clean());
    assert!(regression.fixed().is_empty());

    // Classification: experiment software, culprit h1bank, experiment owns
    // the intervention.
    let h1 = system.experiment("h1").unwrap();
    let env = system.image(sl6).unwrap().spec.clone();
    let diagnosis = classify(&h1, &migrated, &env).unwrap();
    assert_eq!(diagnosis.category, InputCategory::ExperimentSoftware);
    assert_eq!(diagnosis.culprit, "h1bank");
    assert_eq!(diagnosis.assignee, sp_system::core::Assignee::Experiment);
}

/// HERMES has no latent 64-bit bugs: its SL6 migration is clean.
#[test]
fn hermes_sl6_migration_is_clean() {
    let system = SpSystem::new();
    let sl5 = system
        .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
        .unwrap();
    let sl6 = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();

    let reference = system.run_validation("hermes", sl5, &config()).unwrap();
    assert!(reference.is_successful());
    let migrated = system.run_validation("hermes", sl6, &config()).unwrap();
    assert!(
        migrated.is_successful(),
        "HERMES failures: {:?}",
        migrated
            .failures()
            .map(|r| (&r.test, &r.status))
            .collect::<Vec<_>>()
    );
}

/// ROOT version bumps within the 5.x series are harmless — the experiments'
/// API level is unchanged, so outputs stay bit-identical.
#[test]
fn root5_version_bumps_are_green() {
    let system = SpSystem::new();
    let root_532 = system
        .register_image(catalog::sl5_gcc44(Arch::X86_64, Version::two(5, 32)))
        .unwrap();
    let root_534 = system
        .register_image(catalog::sl5_gcc44(Arch::X86_64, Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();

    let first = system
        .run_validation("hermes", root_532, &config())
        .unwrap();
    assert!(first.is_successful());
    let bumped = system
        .run_validation("hermes", root_534, &config())
        .unwrap();
    assert!(bumped.is_successful(), "ROOT 5.32 -> 5.34 must be benign");
    assert_eq!(
        first.passed(),
        bumped.passed(),
        "identical suite outcome across ROOT 5.x"
    );
}

/// ROOT 6 breaks the CINT-era analysis layer: compile failures in the
/// ROOT-API packages, classified as an external-dependency problem.
#[test]
fn root6_breaks_the_analysis_layer() {
    let system = SpSystem::new();
    // SL6 + devtoolset keeps CERNLIB available, isolating the ROOT 6 break.
    let sl7_root6 = system
        .register_image(catalog::sl6_devtoolset_root6())
        .unwrap();
    system
        .register_experiment(sp_system::experiments::hermes_experiment())
        .unwrap();

    let run = system
        .run_validation("hermes", sl7_root6, &config())
        .unwrap();
    assert!(!run.is_successful());
    // hana fails to compile; everything depending on it skips.
    let hana_compile = run
        .results
        .iter()
        .find(|r| r.test.as_str() == "hermes/compile/hana")
        .unwrap();
    assert!(
        matches!(hana_compile.status, sp_system::core::TestStatus::Failed(_)),
        "hana must fail on ROOT 6: {:?}",
        hana_compile.status
    );

    let hermes = system.experiment("hermes").unwrap();
    let env = system.image(sl7_root6).unwrap().spec.clone();
    let diagnosis = classify(&hermes, &run, &env).unwrap();
    assert_eq!(diagnosis.category, InputCategory::ExternalDependency);
    assert_eq!(diagnosis.culprit, "root");
}

/// SL7 without CERNLIB: the Fortran legacy generators/simulation fail to
/// compile, and the event displays crash on the changed kernel interface.
#[test]
fn sl7_breaks_cernlib_users_and_legacy_tools() {
    let system = SpSystem::new();
    let sl7 = system
        .register_image(catalog::sl7_gcc48(Version::two(5, 34)))
        .unwrap();
    system
        .register_experiment(sp_system::experiments::zeus_experiment())
        .unwrap();

    let run = system.run_validation("zeus", sl7, &config()).unwrap();
    assert!(!run.is_successful());

    let failed: Vec<&str> = run.failures().map(|r| r.test.as_str()).collect();
    assert!(
        failed.contains(&"zeus/compile/mozart"),
        "CERNLIB user fails to compile: {failed:?}"
    );
    assert!(
        failed.contains(&"zeus/standalone/zevis"),
        "event display crashes on SL7: {failed:?}"
    );
}
