//! A reduced HERA campaign: all three experiments across the five paper
//! configurations, with the Figure-3 matrix on stdout and the script-based
//! web pages written to `target/sp-site/`.
//!
//! ```text
//! cargo run --release --example hera_summary
//! ```

use std::fs;
use std::path::Path;

use sp_system::core::{Campaign, CampaignConfig, CampaignOptions, RunConfig, SpSystem};
use sp_system::env::catalog;
use sp_system::report::summary::{campaign_json, render_stats};
use sp_system::report::{matrix_page, render_matrix, run_index_page, run_page};

fn main() {
    let system = SpSystem::new();
    for spec in catalog::paper_images() {
        system.register_image(spec).expect("coherent image");
    }
    for experiment in sp_system::experiments::hera_experiments() {
        system
            .register_experiment(experiment)
            .expect("coherent experiment");
    }

    let config = CampaignConfig {
        experiments: vec!["zeus".into(), "h1".into(), "hermes".into()],
        images: system.images().iter().map(|i| i.id).collect(),
        repetitions: 2,
        run: RunConfig {
            scale: 0.2,
            threads: 4,
            ..RunConfig::default()
        },
        interval_secs: 86_400,
        options: CampaignOptions::default(),
    };
    println!("running {} validation runs ...\n", config.total_runs());
    let summary = Campaign::new(&system, config)
        .execute()
        .expect("campaign executes");

    println!(
        "{}",
        render_matrix(&system, &summary, &["zeus", "h1", "hermes"])
    );
    println!("{}", render_stats(&summary));

    // The script-based web pages of §3.3.
    let site = Path::new("target/sp-site");
    fs::create_dir_all(site).expect("site directory");
    let runs = system.ledger().runs();
    fs::write(site.join("index.html"), run_index_page(&runs)).expect("index page");
    for run in &runs {
        fs::write(site.join(format!("{}.html", run.id)), run_page(run)).expect("run page");
    }
    fs::write(
        site.join("summary.html"),
        matrix_page(&system, &summary, &["zeus", "h1", "hermes"]),
    )
    .expect("matrix page");
    fs::write(site.join("campaign.json"), campaign_json(&summary).render()).expect("json export");
    // Materialise the output objects so every link on the run pages
    // resolves ("all output files are kept").
    let export = system.storage().export_to_dir(site).expect("object export");
    println!(
        "wrote {} web pages, campaign.json and {} output objects to {}",
        runs.len() + 2,
        export.objects_written,
        site.display()
    );
}
