//! Quickstart: one experiment, one image, one validation run.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sp_system::core::{RunConfig, SpSystem};
use sp_system::env::{catalog, Version};
use sp_system::report::TextTable;

fn main() {
    // The sp-system hosts virtual machine images built from recipes; this
    // one is the paper's SL6/64bit gcc4.4 configuration with ROOT 5.34.
    let system = SpSystem::new();
    let image = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .expect("catalog images are coherent");

    // Experiments register their software stack and validation suite.
    let hermes = sp_system::experiments::hermes_experiment();
    println!(
        "registering HERMES: {} packages, {} tests\n",
        hermes.package_count(),
        hermes.suite.len()
    );
    system.register_experiment(hermes).expect("coherent stack");

    // One regular validation run: build the stack, run every test, keep
    // all outputs in the common storage.
    let config = RunConfig {
        scale: 0.25,
        ..RunConfig::default()
    };
    let run = system
        .run_validation("hermes", image, &config)
        .expect("run executes");

    println!(
        "run {} on {}: {} passed, {} failed, {} skipped\n",
        run.id,
        run.image_label,
        run.passed(),
        run.failed(),
        run.skipped()
    );

    // Per-category summary (the Figure-2 view of this run).
    let mut table = TextTable::new(&["category", "passed", "total"]);
    for category in sp_system::core::TestCategory::all() {
        let total = run.by_category(category).count();
        let passed = run
            .by_category(category)
            .filter(|r| r.status.is_pass())
            .count();
        table.row_owned(vec![
            category.label().to_string(),
            passed.to_string(),
            total.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!(
        "common storage now holds {} objects ({} bytes)",
        system.storage().content().len(),
        system.storage().content().stats().bytes
    );
    assert!(run.is_successful());
    println!("\nvalidation successful — this run is now the HERMES reference");
}
