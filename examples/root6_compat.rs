//! The §3.3/§4 outlook experiment: "The next challenges include the testing
//! of the SL7 environment and checking the compatibility of the experiments
//! software with ROOT 6."
//!
//! Establishes an SL6 reference for each HERA experiment and then probes the
//! two extension configurations, printing per-category damage reports and
//! the framework's diagnoses.
//!
//! ```text
//! cargo run --release --example root6_compat
//! ```

use sp_system::core::{classify, RunConfig, SpSystem, TestCategory};
use sp_system::env::{catalog, Version};
use sp_system::report::table::{Align, TextTable};

fn main() {
    let system = SpSystem::new();
    let sl6 = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .expect("coherent image");
    let sl7_root5 = system
        .register_image(catalog::sl7_gcc48(Version::two(5, 34)))
        .expect("coherent image");
    let sl7_root6 = system
        .register_image(catalog::sl7_gcc48(catalog::root6_version()))
        .expect("coherent image");
    // ROOT 6 on SL6/gcc4.4 is *not even installable* (no C++11): the image
    // build itself must fail, which is its own §4 lesson.
    let impossible = catalog::sl6_gcc44(catalog::root6_version());
    assert!(
        system.register_image(impossible).is_err(),
        "ROOT 6 requires a C++11 toolchain"
    );
    println!("note: ROOT 6 on SL6/gcc4.4 rejected at image build (needs C++11)\n");

    for experiment in sp_system::experiments::hera_experiments() {
        system
            .register_experiment(experiment)
            .expect("coherent experiment");
    }
    let config = RunConfig {
        scale: 0.25,
        ..RunConfig::default()
    };

    // SL6 references.
    for experiment in ["zeus", "h1", "hermes"] {
        system
            .run_validation(experiment, sl6, &config)
            .expect("reference run");
    }

    for (label, image) in [("SL7 + ROOT 5.34", sl7_root5), ("SL7 + ROOT 6", sl7_root6)] {
        println!("=== {label} ===\n");
        let mut table = TextTable::new(&["experiment", "category", "passed", "failed", "skipped"])
            .align(&[
                Align::Left,
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for experiment in ["zeus", "h1", "hermes"] {
            let run = system
                .run_validation(experiment, image, &config)
                .expect("probe run");
            for category in TestCategory::all() {
                let results: Vec<_> = run.by_category(category).collect();
                if results.is_empty() {
                    continue;
                }
                let passed = results.iter().filter(|r| r.status.is_pass()).count();
                let failed = results
                    .iter()
                    .filter(|r| matches!(r.status, sp_system::core::TestStatus::Failed(_)))
                    .count();
                let skipped = results.len() - passed - failed;
                table.row_owned(vec![
                    experiment.to_string(),
                    category.label().to_string(),
                    passed.to_string(),
                    failed.to_string(),
                    skipped.to_string(),
                ]);
            }
            if !run.is_successful() {
                let def = system.experiment(experiment).expect("registered");
                let env = system.image(image).expect("registered").spec.clone();
                if let Some(diagnosis) = classify(&def, &run, &env) {
                    println!("{experiment}: {}", diagnosis.headline());
                }
            }
        }
        println!("\n{}", table.render());
    }

    println!(
        "conclusion: ROOT 6 removes the CINT-era API the HERA analysis layers\n\
         were written against; the sp-system pinpoints the affected packages\n\
         (h1oo/h1micro, orange/zdis, hana) so the experiments know exactly\n\
         where migration effort is needed."
    );
}
