//! The full H1 Level-4 preservation programme, end to end: the four phases
//! of §3.1 driven through the [`MigrationManager`].
//!
//! 1. **Preparation** — consolidate the stack against the SL5 image.
//! 2. **Operation** — regular validated runs on SL5/32bit.
//! 3. **Migration & analysis** — integrate SL6/64bit, watch the latent
//!    pointer bug surface, read the automatic diagnosis, apply the fix.
//! 4. **Freeze** — conserve the last working image in the vault.
//!
//! ```text
//! cargo run --release --example h1_migration
//! ```

use sp_system::build::prune::consolidate;
use sp_system::core::{classify, MigrationManager, RegressionReport, RunConfig, SpSystem};
use sp_system::env::{catalog, Arch, CodeTrait, Version};

fn main() {
    let system = SpSystem::new();
    let sl5 = system
        .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
        .expect("coherent image");
    let sl6 = system
        .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
        .expect("coherent image");
    system
        .register_experiment(sp_system::experiments::h1_experiment())
        .expect("coherent experiment");
    let config = RunConfig {
        scale: 0.4,
        ..RunConfig::default()
    };

    // ---- phase (i): preparation -----------------------------------------
    let now = system.clock().now();
    let mut manager = MigrationManager::new("h1", now);
    let h1 = system.experiment("h1").expect("registered");
    let sl5_env = system.image(sl5).expect("registered").spec.clone();
    let report = consolidate(&h1.graph, &sl5_env, &h1.entry_points);
    println!(
        "phase i (preparation): consolidation on {}",
        sl5_env.label()
    );
    println!(
        "    unnecessary externals: {:?}",
        report.unnecessary_externals
    );
    println!("    missing externals:     {:?}", report.missing_externals);
    println!(
        "    unreachable packages:  {:?}",
        report.unreachable_packages
    );
    assert!(report.is_clean(), "H1 stack is consolidated for SL5");
    manager
        .complete_preparation(vec![], system.clock().now())
        .expect("clean consolidation");
    println!("    -> entering operation\n");

    // ---- phase (ii): regular operation on SL5 ---------------------------
    for pass in 1..=3 {
        system.clock().advance(86_400);
        let run = system
            .run_validation("h1", sl5, &config)
            .expect("regular run");
        manager
            .on_run(&sl5_env, &run, None, system.clock().now())
            .expect("operation accepts runs");
        println!(
            "phase ii (operation): nightly run {} pass {pass}: {} passed / {} failed",
            run.id,
            run.passed(),
            run.failed()
        );
    }

    // ---- integrate the new environment ----------------------------------
    println!("\nintegrating new OS version: SL6/64bit gcc4.4");
    system.clock().advance(86_400);
    let sl6_env = system.image(sl6).expect("registered").spec.clone();
    let migrated = system
        .run_validation("h1", sl6, &config)
        .expect("migration run");
    let baseline = system
        .ledger()
        .latest_successful("h1")
        .expect("SL5 reference exists");
    let regression = RegressionReport::between(&baseline, &migrated);
    println!("    {}", regression.summary());

    // ---- phase (iii): analysis -------------------------------------------
    let diagnosis = classify(&h1, &migrated, &sl6_env);
    manager
        .on_run(&sl6_env, &migrated, diagnosis.clone(), system.clock().now())
        .expect("failure enters analysis");
    let diagnosis = diagnosis.expect("failed run yields a diagnosis");
    println!("\nphase iii (analysis): {}", diagnosis.headline());
    for line in diagnosis.evidence.iter().take(4) {
        println!("    evidence: {line}");
    }

    // ---- intervention: the experiment fixes the pointer bug --------------
    println!("\nintervention: h1bank INTEGER*4 pointer fields widened to INTEGER*8");
    let mut fixed = sp_system::experiments::h1_experiment();
    let mut graph = sp_system::build::DependencyGraph::new();
    for mut package in fixed.graph.packages().cloned() {
        if package.id.as_str() == "h1bank" {
            package
                .traits
                .retain(|t| !matches!(t, CodeTrait::PointerSizeAssumption { .. }));
            package.version = Version::new(5, 0, 2); // the bug-fix release
        }
        graph.add(package).expect("copying a valid graph");
    }
    fixed.graph = graph;
    system
        .register_experiment(fixed)
        .expect("fixed stack registers");

    system.clock().advance(86_400);
    let revalidated = system
        .run_validation("h1", sl6, &config)
        .expect("revalidation run");
    println!(
        "revalidation on SL6: {} passed / {} failed",
        revalidated.passed(),
        revalidated.failed()
    );
    manager
        .on_run(&sl6_env, &revalidated, None, system.clock().now())
        .expect("recovery returns to operation");
    assert!(revalidated.is_successful(), "the fix closes the migration");
    println!(
        "    -> back in operation; {} intervention(s) resolved\n",
        manager.interventions().len()
    );

    // ---- phase (iv): freeze ------------------------------------------------
    let artifacts: Vec<_> = system
        .storage()
        .list(sp_system::store::StorageArea::Artifacts, "")
        .into_iter()
        .map(|(_, oid)| oid)
        .collect();
    let label = manager
        .freeze(
            system.vault(),
            "H1 person-power ends; conserving the validated SL6 configuration",
            artifacts,
            system.clock().now(),
        )
        .expect("freeze succeeds after a good run");
    let frozen = system.vault().get(&label).expect("conserved image");
    println!("phase iv (freeze): conserved '{label}'");
    println!("    {}", frozen.description);
    println!("    {} artifact tar-balls baked in", frozen.artifacts.len());
    println!("\nworkflow history:");
    for (ts, phase) in manager.history() {
        println!("    t={ts}  {phase}");
    }
}
