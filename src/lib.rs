//! # sp-system — a validation framework for the long-term preservation of
//! high energy physics data
//!
//! A complete Rust reproduction of the software-preservation system
//! described by D. Ozerov and D. M. South (DESY), *"A Validation Framework
//! for the Long Term Preservation of High Energy Physics Data"*
//! (arXiv:1310.7814): the **sp-system** that automatically builds and
//! validates experiment software against changes to the computing
//! environment, keeping decades-old data analysable.
//!
//! This crate is the façade: it re-exports the workspace crates and hosts
//! the runnable examples and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use sp_system::core::{RunConfig, SpSystem};
//! use sp_system::env::{catalog, Version};
//!
//! // A system with one SL6 image and the HERMES experiment.
//! let system = SpSystem::new();
//! let image = system
//!     .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
//!     .unwrap();
//! system
//!     .register_experiment(sp_system::experiments::hermes_experiment())
//!     .unwrap();
//!
//! // One validation run: build everything, run every test, keep outputs.
//! let config = RunConfig { scale: 0.1, ..RunConfig::default() };
//! let run = system.run_validation("hermes", image, &config).unwrap();
//! assert!(run.is_successful());
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | the validation framework: tests, runs, comparison, classification, workflow, campaigns |
//! | [`env`](mod@env) | simulated environments: OS releases, compilers, externals, VM images |
//! | [`build`] | package model, dependency graphs, simulated builds |
//! | [`hep`] | the toy HEP chain: MC generation → simulation → reconstruction → analysis |
//! | [`exec`] | virtual clock, cron, jobs, clients, chain DAGs |
//! | [`store`] | content-addressed common storage, archives, the frozen-image vault |
//! | [`experiments`] | the synthetic H1, ZEUS and HERMES stacks |
//! | [`obs`] | observability: metrics registry, trace sink, run-history query engine |
//! | [`report`] | status matrices, HTML pages, JSON export, run-history dashboards |

pub use sp_build as build;
pub use sp_core as core;
pub use sp_env as env;
pub use sp_exec as exec;
pub use sp_experiments as experiments;
pub use sp_hep as hep;
pub use sp_obs as obs;
pub use sp_report as report;
pub use sp_store as store;
