//! # sp-hep — a toy but complete HEP software chain
//!
//! The H1 validation tests "form discrete parts in one of several full
//! analysis chains: from MC generation and simulation, through multi-level
//! file production and ending with a full physics analysis and subsequent
//! validation of the results" (§3.2). This crate provides every stage of
//! such a chain as a deterministic, seeded simulation:
//!
//! * [`kinematics`] — four-vectors and deep-inelastic-scattering variables.
//! * [`rng`] — seeded random sampling helpers (Box–Muller normals).
//! * [`mcgen`] — the Monte Carlo event generator (HERA-like NC/CC DIS).
//! * [`detsim`] — detector simulation: calorimeter smearing with versioned
//!   constants and an *environment-deviation* hook, through which the
//!   compatibility layer injects the numeric shifts of latent platform bugs.
//! * [`reco`] — event reconstruction (electron-method kinematics).
//! * [`dst`] — the binary DST event format and the slimmed µDST
//!   ("multi-level file production").
//! * [`analysis`] — the physics analysis: selection cuts and histogram
//!   filling.
//! * [`hist`] — 1-D histograms with χ² and Kolmogorov–Smirnov comparison.
//! * [`stats`] — special functions backing the statistical tests.
//!
//! Everything is reproducible: the same seed and configuration produce
//! bit-identical events, files and histograms on every run, which is the
//! property the sp-system's run-to-run comparisons rely on.
//!
//! ## Example
//!
//! ```
//! use sp_hep::{run_chain, GeneratorConfig};
//!
//! let config = GeneratorConfig::hera_nc();
//! let a = run_chain(&config, 200, 42, 0.0);
//! let b = run_chain(&config, 200, 42, 0.0);
//! // Same seed and configuration: bit-identical results.
//! assert_eq!(a.selected, b.selected);
//! assert!(a.selected <= a.total);
//! ```

pub mod analysis;
pub mod detsim;
pub mod dst;
pub mod hist;
pub mod hist_io;
pub mod kinematics;
pub mod mcgen;
pub mod reco;
pub mod rng;
pub mod stats;

pub use analysis::{Analysis, AnalysisResult, SelectionCuts};
pub use detsim::{DetectorSim, SmearingConstants};
pub use dst::{read_dst, read_micro_dst, write_dst, write_micro_dst, MicroEvent};
pub use hist::{Chi2Result, Histogram1D, HistogramSet, KsResult};
pub use hist_io::{decode_set, encode_set};
pub use kinematics::{DisKinematics, FourVector};
pub use mcgen::{Event, EventGenerator, GeneratorConfig, Particle, Process};
pub use reco::{reconstruct, RecoEvent};

/// Reusable per-event buffers for the analysis chain.
///
/// One validation run processes thousands of events through
/// generate → simulate → reconstruct; allocating fresh particle vectors for
/// every event used to dominate the chain's wall time. A `ChainScratch`
/// owns the generated-event and simulated-event buffers instead, so a
/// worker amortises its allocations across a whole run (and across *runs*,
/// if it keeps the scratch alive): after warm-up the steady state performs
/// no per-event heap allocation at all — the generator's fragmentation
/// buffer lives inside [`EventGenerator`], the two event buffers live here,
/// and [`reconstruct`] and [`Analysis::process`] are allocation-free by
/// construction.
#[derive(Debug, Clone)]
pub struct ChainScratch {
    generated: Event,
    simulated: Event,
}

impl Default for ChainScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        let empty = Event {
            id: 0,
            process: mcgen::Process::NeutralCurrent,
            truth: DisKinematics {
                q2: 0.0,
                x: 0.0,
                y: 0.0,
                w2: 0.0,
            },
            particles: Vec::new(),
            weight: 1.0,
        };
        ChainScratch {
            generated: empty.clone(),
            simulated: empty,
        }
    }

    /// Current capacity of the particle buffers (generated, simulated) —
    /// useful for asserting that the buffers are actually reused.
    pub fn capacities(&self) -> (usize, usize) {
        (
            self.generated.particles.capacity(),
            self.simulated.particles.capacity(),
        )
    }
}

/// Runs the complete chain (generate → simulate → reconstruct → analyse)
/// with `events` events and the given seed, applying an optional
/// environment-induced deviation (σ units) in the detector simulation.
///
/// This is the convenience entry point used by examples and by the
/// validation framework's chain tests. It creates a fresh [`ChainScratch`]
/// per call; hot loops that run many chains should hold their own scratch
/// and call [`run_chain_with_scratch`].
pub fn run_chain(
    config: &GeneratorConfig,
    events: usize,
    seed: u64,
    deviation_sigma: f64,
) -> AnalysisResult {
    let mut scratch = ChainScratch::new();
    run_chain_with_scratch(config, events, seed, deviation_sigma, &mut scratch)
}

/// [`run_chain`] with caller-provided scratch buffers: the allocation-free
/// steady-state path. Results are bit-identical to [`run_chain`] for the
/// same inputs regardless of what the scratch previously held.
pub fn run_chain_with_scratch(
    config: &GeneratorConfig,
    events: usize,
    seed: u64,
    deviation_sigma: f64,
    scratch: &mut ChainScratch,
) -> AnalysisResult {
    let mut generator = EventGenerator::new(config.clone(), seed);
    let sim = DetectorSim::new(SmearingConstants::V2_SL5).with_deviation(deviation_sigma);
    let cuts = SelectionCuts::default();
    let mut analysis = Analysis::new(cuts);

    for _ in 0..events {
        generator.generate_into(&mut scratch.generated);
        sim.simulate_into(
            &scratch.generated,
            seed ^ scratch.generated.id,
            &mut scratch.simulated,
        );
        let reco = reconstruct(&scratch.simulated, config);
        analysis.process(&reco);
    }
    analysis.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_reproducible() {
        let config = GeneratorConfig::hera_nc();
        let a = run_chain(&config, 500, 42, 0.0);
        let b = run_chain(&config, 500, 42, 0.0);
        assert_eq!(a.selected, b.selected);
        let ha = a.histograms.get("q2").unwrap();
        let hb = b.histograms.get("q2").unwrap();
        assert_eq!(ha.counts(), hb.counts());
    }

    #[test]
    fn scratch_path_matches_and_reuses_buffers() {
        let config = GeneratorConfig::hera_nc();
        let fresh = run_chain(&config, 300, 42, 0.0);

        let mut scratch = ChainScratch::new();
        // Dirty the scratch with a different workload first.
        run_chain_with_scratch(&config, 50, 7, 2.0, &mut scratch);
        let warm_capacity = scratch.capacities();
        let reused = run_chain_with_scratch(&config, 300, 42, 0.0, &mut scratch);

        assert_eq!(fresh, reused, "scratch reuse must not change physics");
        assert!(
            warm_capacity.0 > 0 && warm_capacity.1 > 0,
            "buffers retained between chains: {warm_capacity:?}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let config = GeneratorConfig::hera_nc();
        let a = run_chain(&config, 500, 42, 0.0);
        let b = run_chain(&config, 500, 43, 0.0);
        assert_ne!(
            a.histograms.get("q2").unwrap().counts(),
            b.histograms.get("q2").unwrap().counts()
        );
    }

    #[test]
    fn deviation_is_statistically_detectable() {
        // This is the exact mechanism by which the sp-system catches latent
        // platform bugs: same seed, same code, different environment ⇒ the
        // validation histograms disagree far beyond statistics.
        let config = GeneratorConfig::hera_nc();
        let nominal = run_chain(&config, 3000, 7, 0.0);
        let again = run_chain(&config, 3000, 7, 0.0);
        let deviated = run_chain(&config, 3000, 7, 5.0);

        let p_same = nominal.histograms.worst_chi2_p(&again.histograms).unwrap();
        assert_eq!(p_same, 1.0, "identical runs must be bit-identical");

        let p_dev = nominal
            .histograms
            .worst_chi2_p(&deviated.histograms)
            .unwrap();
        assert!(
            p_dev < 1e-3,
            "a 5σ energy-scale deviation must fail validation, p={p_dev}"
        );
    }
}
