//! The DST ("data summary tape") binary event formats.
//!
//! HEP experiments store events in multi-level formats: the full DST with
//! every particle, and slimmed µDST files for analysis — the "multi-level
//! file production" of the H1 chain (§3.2). Both formats here are
//! self-describing, checksummed and versioned, and both round-trip
//! bit-exactly, which the property tests assert.
//!
//! DST layout (little-endian):
//!
//! ```text
//! magic    : 4 bytes  b"SPD1"
//! version  : u16
//! count    : u32      number of events
//! event*   : id u64 | process u8 | weight f64
//!            | q2 f64 | x f64 | y f64 | w2 f64      (truth kinematics)
//!            | n u16 | particle*
//! particle : pdg i32 | e f64 | px f64 | py f64 | pz f64 | charge i8 | status u8
//! digest   : 32 bytes SHA-256 of everything before it
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::kinematics::{DisKinematics, FourVector};
use crate::mcgen::{Event, Particle, Process};

const DST_MAGIC: &[u8; 4] = b"SPD1";
const MICRO_MAGIC: &[u8; 4] = b"SPU1";
const FORMAT_VERSION: u16 = 1;

/// Errors decoding a DST/µDST stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DstError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Stream shorter than its own headers promise.
    Truncated,
    /// Whole-file checksum mismatch (bit rot).
    ChecksumMismatch,
    /// Unknown process code.
    BadProcess(u8),
}

impl std::fmt::Display for DstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DstError::BadMagic => write!(f, "not a DST stream (bad magic)"),
            DstError::BadVersion(v) => write!(f, "unsupported DST version {v}"),
            DstError::Truncated => write!(f, "truncated DST stream"),
            DstError::ChecksumMismatch => write!(f, "DST checksum mismatch"),
            DstError::BadProcess(c) => write!(f, "unknown process code {c}"),
        }
    }
}

impl std::error::Error for DstError {}

/// Serialises events to the DST format.
pub fn write_dst(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + events.len() * 256);
    buf.put_slice(DST_MAGIC);
    buf.put_u16_le(FORMAT_VERSION);
    buf.put_u32_le(events.len() as u32);
    for event in events {
        buf.put_u64_le(event.id);
        buf.put_u8(event.process.code());
        buf.put_f64_le(event.weight);
        buf.put_f64_le(event.truth.q2);
        buf.put_f64_le(event.truth.x);
        buf.put_f64_le(event.truth.y);
        buf.put_f64_le(event.truth.w2);
        buf.put_u16_le(event.particles.len() as u16);
        for p in &event.particles {
            buf.put_i32_le(p.pdg_id);
            buf.put_f64_le(p.p4.e);
            buf.put_f64_le(p.p4.px);
            buf.put_f64_le(p.p4.py);
            buf.put_f64_le(p.p4.pz);
            buf.put_i8(p.charge);
            buf.put_u8(p.status);
        }
    }
    let digest = sp_store_digest(&buf);
    buf.put_slice(&digest);
    buf.freeze()
}

/// Deserialises a DST stream.
pub fn read_dst(data: &[u8]) -> Result<Vec<Event>, DstError> {
    let body = verify_envelope(data, DST_MAGIC)?;
    let mut cur = &body[6..]; // past magic+version
    if cur.remaining() < 4 {
        return Err(DstError::Truncated);
    }
    let count = cur.get_u32_le() as usize;
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        if cur.remaining() < 8 + 1 + 8 * 5 + 2 {
            return Err(DstError::Truncated);
        }
        let id = cur.get_u64_le();
        let process = Process::from_code(cur.get_u8()).ok_or(DstError::BadProcess(0))?;
        let weight = cur.get_f64_le();
        let truth = DisKinematics {
            q2: cur.get_f64_le(),
            x: cur.get_f64_le(),
            y: cur.get_f64_le(),
            w2: cur.get_f64_le(),
        };
        let n = cur.get_u16_le() as usize;
        let mut particles = Vec::with_capacity(n);
        for _ in 0..n {
            if cur.remaining() < 4 + 8 * 4 + 1 + 1 {
                return Err(DstError::Truncated);
            }
            let pdg_id = cur.get_i32_le();
            let p4 = FourVector::new(
                cur.get_f64_le(),
                cur.get_f64_le(),
                cur.get_f64_le(),
                cur.get_f64_le(),
            );
            let charge = cur.get_i8();
            let status = cur.get_u8();
            particles.push(Particle {
                pdg_id,
                p4,
                charge,
                status,
            });
        }
        events.push(Event {
            id,
            process,
            truth,
            particles,
            weight,
        });
    }
    if cur.has_remaining() {
        return Err(DstError::Truncated);
    }
    Ok(events)
}

/// A slimmed analysis-level event (µDST record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroEvent {
    /// Source event id.
    pub id: u64,
    /// Process code.
    pub process: Process,
    /// Reconstructed Q².
    pub q2: f64,
    /// Reconstructed x.
    pub x: f64,
    /// Reconstructed y.
    pub y: f64,
    /// Scattered-electron energy.
    pub e_prime: f64,
}

/// Serialises µDST records.
pub fn write_micro_dst(events: &[MicroEvent]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + events.len() * 48);
    buf.put_slice(MICRO_MAGIC);
    buf.put_u16_le(FORMAT_VERSION);
    buf.put_u32_le(events.len() as u32);
    for ev in events {
        buf.put_u64_le(ev.id);
        buf.put_u8(ev.process.code());
        buf.put_f64_le(ev.q2);
        buf.put_f64_le(ev.x);
        buf.put_f64_le(ev.y);
        buf.put_f64_le(ev.e_prime);
    }
    let digest = sp_store_digest(&buf);
    buf.put_slice(&digest);
    buf.freeze()
}

/// Deserialises a µDST stream.
pub fn read_micro_dst(data: &[u8]) -> Result<Vec<MicroEvent>, DstError> {
    let body = verify_envelope(data, MICRO_MAGIC)?;
    let mut cur = &body[6..];
    if cur.remaining() < 4 {
        return Err(DstError::Truncated);
    }
    let count = cur.get_u32_le() as usize;
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        if cur.remaining() < 8 + 1 + 8 * 4 {
            return Err(DstError::Truncated);
        }
        let id = cur.get_u64_le();
        let code = cur.get_u8();
        let process = Process::from_code(code).ok_or(DstError::BadProcess(code))?;
        events.push(MicroEvent {
            id,
            process,
            q2: cur.get_f64_le(),
            x: cur.get_f64_le(),
            y: cur.get_f64_le(),
            e_prime: cur.get_f64_le(),
        });
    }
    if cur.has_remaining() {
        return Err(DstError::Truncated);
    }
    Ok(events)
}

/// Checks magic, version and trailing checksum; returns the body slice
/// (including magic+version, excluding the digest).
fn verify_envelope<'a>(data: &'a [u8], magic: &[u8; 4]) -> Result<&'a [u8], DstError> {
    if data.len() < 4 + 2 + 4 + 32 {
        return Err(DstError::Truncated);
    }
    let (body, digest) = data.split_at(data.len() - 32);
    if sp_store_digest(body) != digest {
        return Err(DstError::ChecksumMismatch);
    }
    if &body[..4] != magic {
        return Err(DstError::BadMagic);
    }
    let version = u16::from_le_bytes([body[4], body[5]]);
    if version != FORMAT_VERSION {
        return Err(DstError::BadVersion(version));
    }
    Ok(body)
}

/// Local SHA-256 via a tiny FNV-free re-implementation? No — the format
/// simply reuses the same digest as the storage layer would compute, but to
/// keep `sp-hep` free of the storage dependency the digest here is an
/// independent 32-byte FNV-1a lattice: 4 parallel 64-bit FNV streams with
/// different offsets. Collision resistance is irrelevant for bit-rot
/// detection; determinism and avalanche on single-bit flips are what the
/// tests require.
fn sp_store_digest(data: &[u8]) -> [u8; 32] {
    const OFFSETS: [u64; 4] = [
        0xcbf29ce484222325,
        0x9e3779b97f4a7c15,
        0xdeadbeefcafef00d,
        0x0123456789abcdef,
    ];
    const PRIME: u64 = 0x100000001b3;
    let mut states = OFFSETS;
    for (i, &b) in data.iter().enumerate() {
        let lane = i & 3;
        states[lane] ^= b as u64 ^ ((i as u64) << 8);
        states[lane] = states[lane].wrapping_mul(PRIME);
    }
    // Final mixing pass so every lane depends on every byte.
    for round in 0..4 {
        let mixed = states[0]
            .wrapping_add(states[1].rotate_left(17))
            .wrapping_add(states[2].rotate_left(31))
            .wrapping_add(states[3].rotate_left(47))
            .wrapping_add(round);
        states[round as usize] ^= mixed.wrapping_mul(PRIME);
    }
    let mut out = [0u8; 32];
    for (i, s) in states.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&s.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcgen::{EventGenerator, GeneratorConfig};

    fn sample_events(n: usize) -> Vec<Event> {
        EventGenerator::new(GeneratorConfig::hera_nc(), 11)
            .take(n)
            .collect()
    }

    #[test]
    fn dst_round_trip() {
        let events = sample_events(25);
        let bytes = write_dst(&events);
        let restored = read_dst(&bytes).unwrap();
        assert_eq!(events, restored);
    }

    #[test]
    fn empty_dst_round_trips() {
        let bytes = write_dst(&[]);
        assert_eq!(read_dst(&bytes).unwrap(), Vec::<Event>::new());
    }

    #[test]
    fn dst_detects_bit_rot() {
        let bytes = write_dst(&sample_events(5)).to_vec();
        for idx in [0usize, 10, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[idx] ^= 0x10;
            let err = read_dst(&corrupted).unwrap_err();
            assert!(
                matches!(err, DstError::ChecksumMismatch | DstError::BadMagic),
                "flip at {idx}: {err:?}"
            );
        }
    }

    #[test]
    fn dst_detects_truncation() {
        let bytes = write_dst(&sample_events(5));
        for cut in [0usize, 8, bytes.len() - 33] {
            assert!(read_dst(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let micro = write_micro_dst(&[]);
        assert_eq!(read_dst(&micro).unwrap_err(), DstError::BadMagic);
    }

    #[test]
    fn micro_dst_round_trip() {
        let records: Vec<MicroEvent> = (0..10)
            .map(|i| MicroEvent {
                id: i,
                process: Process::NeutralCurrent,
                q2: 10.0 + i as f64,
                x: 0.01 * (i + 1) as f64,
                y: 0.1,
                e_prime: 25.0,
            })
            .collect();
        let bytes = write_micro_dst(&records);
        assert_eq!(read_micro_dst(&bytes).unwrap(), records);
    }

    #[test]
    fn micro_is_smaller_than_dst() {
        let events = sample_events(50);
        let micro: Vec<MicroEvent> = events
            .iter()
            .map(|e| MicroEvent {
                id: e.id,
                process: e.process,
                q2: e.truth.q2,
                x: e.truth.x,
                y: e.truth.y,
                e_prime: e.scattered_lepton().map(|p| p.p4.e).unwrap_or(0.0),
            })
            .collect();
        let dst_size = write_dst(&events).len();
        let micro_size = write_micro_dst(&micro).len();
        assert!(
            micro_size * 4 < dst_size,
            "µDST ({micro_size}) should be much smaller than DST ({dst_size})"
        );
    }

    #[test]
    fn digest_avalanche() {
        let a = sp_store_digest(b"the same payload");
        let mut flipped = b"the same payload".to_vec();
        flipped[0] ^= 1;
        let b = sp_store_digest(&flipped);
        let differing_bytes = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        assert!(differing_bytes > 8, "weak avalanche: {differing_bytes}");
    }

    #[test]
    fn writing_is_deterministic() {
        let events = sample_events(10);
        assert_eq!(write_dst(&events), write_dst(&events));
    }
}
