//! Binary serialisation of histograms.
//!
//! Validation outputs are kept in the common storage by content address;
//! histograms therefore need a deterministic byte encoding. The format is
//! little-endian, length-prefixed and versioned:
//!
//! ```text
//! set   : magic b"SPH1" | version u16 | count u32 | hist*
//! hist  : name_len u16 | name utf-8 | nbins u32 | lo f64 | hi f64
//!         | counts f64* | sumw2 f64* | underflow f64 | overflow f64
//!         | entries u64 | sum_w f64 | sum_wx f64 | sum_wx2 f64
//! ```

use bytes::{Buf, Bytes};

use crate::hist::{Histogram1D, HistogramSet};

const MAGIC: &[u8; 4] = b"SPH1";
const VERSION: u16 = 1;

/// Errors decoding a histogram stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistIoError {
    /// Wrong magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Stream shorter than promised.
    Truncated,
    /// Histogram name is not UTF-8.
    BadName,
}

impl std::fmt::Display for HistIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistIoError::BadMagic => write!(f, "not a histogram stream"),
            HistIoError::BadVersion(v) => write!(f, "unsupported histogram version {v}"),
            HistIoError::Truncated => write!(f, "truncated histogram stream"),
            HistIoError::BadName => write!(f, "invalid histogram name"),
        }
    }
}

impl std::error::Error for HistIoError {}

/// Serialises a histogram set.
pub fn encode_set(set: &HistogramSet) -> Bytes {
    let mut buf = Vec::with_capacity(64 + set.len() * 512);
    encode_set_with(set, &mut |bytes| buf.extend_from_slice(bytes));
    Bytes::from(buf)
}

/// Streams the set encoding through `emit` field by field, so callers can
/// hash or tee the bytes without materialising the whole encoding first
/// (the digest-first content-addressing path relies on this).
pub fn encode_set_with(set: &HistogramSet, emit: &mut dyn FnMut(&[u8])) {
    emit(MAGIC);
    emit(&VERSION.to_le_bytes());
    emit(&(set.len() as u32).to_le_bytes());
    for hist in set.iter() {
        encode_hist_with(hist, emit);
    }
}

/// Deserialises a histogram set.
pub fn decode_set(data: &[u8]) -> Result<HistogramSet, HistIoError> {
    let mut cur = data;
    if cur.remaining() < 10 {
        return Err(HistIoError::Truncated);
    }
    let mut magic = [0u8; 4];
    cur.copy_to_slice(&mut magic);
    if magic != *MAGIC {
        return Err(HistIoError::BadMagic);
    }
    let version = cur.get_u16_le();
    if version != VERSION {
        return Err(HistIoError::BadVersion(version));
    }
    let count = cur.get_u32_le() as usize;
    let mut set = HistogramSet::new();
    for _ in 0..count {
        set.insert(decode_hist(&mut cur)?);
    }
    if cur.has_remaining() {
        return Err(HistIoError::Truncated);
    }
    Ok(set)
}

fn encode_hist_with(hist: &Histogram1D, emit: &mut dyn FnMut(&[u8])) {
    emit(&(hist.name().len() as u16).to_le_bytes());
    emit(hist.name().as_bytes());
    emit(&(hist.nbins() as u32).to_le_bytes());
    emit(&hist.lo().to_le_bytes());
    emit(&hist.hi().to_le_bytes());
    for &c in hist.counts() {
        emit(&c.to_le_bytes());
    }
    for &s in hist.sumw2() {
        emit(&s.to_le_bytes());
    }
    emit(&hist.underflow().to_le_bytes());
    emit(&hist.overflow().to_le_bytes());
    emit(&hist.entries().to_le_bytes());
    let (sum_w, sum_wx, sum_wx2) = hist.moment_sums();
    emit(&sum_w.to_le_bytes());
    emit(&sum_wx.to_le_bytes());
    emit(&sum_wx2.to_le_bytes());
}

fn decode_hist(cur: &mut &[u8]) -> Result<Histogram1D, HistIoError> {
    if cur.remaining() < 2 {
        return Err(HistIoError::Truncated);
    }
    let name_len = cur.get_u16_le() as usize;
    if cur.remaining() < name_len {
        return Err(HistIoError::Truncated);
    }
    let name_bytes = cur.copy_to_bytes(name_len);
    let name = std::str::from_utf8(&name_bytes)
        .map_err(|_| HistIoError::BadName)?
        .to_string();
    if cur.remaining() < 4 + 16 {
        return Err(HistIoError::Truncated);
    }
    let nbins = cur.get_u32_le() as usize;
    let lo = cur.get_f64_le();
    let hi = cur.get_f64_le();
    let needed = nbins * 16 + 16 + 8 + 24;
    if cur.remaining() < needed || nbins == 0 || lo >= hi {
        return Err(HistIoError::Truncated);
    }
    let mut counts = Vec::with_capacity(nbins);
    for _ in 0..nbins {
        counts.push(cur.get_f64_le());
    }
    let mut sumw2 = Vec::with_capacity(nbins);
    for _ in 0..nbins {
        sumw2.push(cur.get_f64_le());
    }
    let underflow = cur.get_f64_le();
    let overflow = cur.get_f64_le();
    let entries = cur.get_u64_le();
    let sum_w = cur.get_f64_le();
    let sum_wx = cur.get_f64_le();
    let sum_wx2 = cur.get_f64_le();
    Ok(Histogram1D::from_parts(
        name, nbins, lo, hi, counts, sumw2, underflow, overflow, entries, sum_w, sum_wx, sum_wx2,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram1D;

    fn sample_set() -> HistogramSet {
        let mut q2 = Histogram1D::new("q2", 20, 0.0, 100.0);
        q2.fill(5.0);
        q2.fill_weighted(55.0, 2.5);
        q2.fill(-1.0);
        q2.fill(200.0);
        let mut y = Histogram1D::new("y", 10, 0.0, 1.0);
        y.fill(0.3);
        [q2, y].into_iter().collect()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let set = sample_set();
        let decoded = decode_set(&encode_set(&set)).unwrap();
        assert_eq!(set, decoded);
        // Statistical comparisons on the decoded set behave identically.
        let p = set
            .get("q2")
            .unwrap()
            .chi2_test(decoded.get("q2").unwrap())
            .unwrap();
        assert_eq!(p.chi2, 0.0);
    }

    #[test]
    fn empty_set_round_trips() {
        let set = HistogramSet::new();
        assert_eq!(decode_set(&encode_set(&set)).unwrap(), set);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_set(&sample_set()), encode_set(&sample_set()));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_set(&sample_set());
        for cut in [0usize, 4, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_set(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode_set(&sample_set()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_set(&bytes).unwrap_err(), HistIoError::BadMagic);
    }
}
