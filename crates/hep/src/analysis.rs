//! The physics analysis: event selection and histogram production.
//!
//! The last stage of the validation chain: applies DIS selection cuts and
//! fills the control distributions whose run-to-run comparison is the
//! "subsequent validation of the results" (§3.2).

use crate::hist::{Histogram1D, HistogramSet};
use crate::reco::RecoEvent;

/// Neutral-current DIS selection cuts (HERA-typical values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionCuts {
    /// Minimum reconstructed Q² (GeV²).
    pub q2_min: f64,
    /// Inelasticity window (min, max).
    pub y_range: (f64, f64),
    /// Minimum scattered-electron energy (GeV).
    pub e_prime_min: f64,
    /// `E − p_z` containment window (GeV).
    pub empz_range: (f64, f64),
}

impl Default for SelectionCuts {
    fn default() -> Self {
        SelectionCuts {
            q2_min: 4.0,
            y_range: (0.05, 0.70),
            e_prime_min: 11.0,
            empz_range: (35.0, 75.0),
        }
    }
}

impl SelectionCuts {
    /// Whether a reconstructed event passes the selection.
    pub fn passes(&self, event: &RecoEvent) -> bool {
        let Some(electron) = event.electron else {
            return false;
        };
        let Some(k) = event.kinematics else {
            return false;
        };
        k.q2 >= self.q2_min
            && k.y >= self.y_range.0
            && k.y <= self.y_range.1
            && electron.e >= self.e_prime_min
            && event.e_minus_pz >= self.empz_range.0
            && event.e_minus_pz <= self.empz_range.1
    }
}

/// Cut-flow counters: how many events survive each stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutFlow {
    /// Events processed.
    pub total: u64,
    /// Events with a reconstructed electron.
    pub with_electron: u64,
    /// Events passing the kinematic cuts too.
    pub selected: u64,
}

/// The streaming analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    cuts: SelectionCuts,
    cut_flow: CutFlow,
    histograms: HistogramSet,
}

impl Analysis {
    /// Creates an analysis with the standard control distributions booked.
    pub fn new(cuts: SelectionCuts) -> Self {
        let mut histograms = HistogramSet::new();
        // log10(Q²) from 0.6 (Q²=4) to 4.0 (Q²=10⁴).
        histograms.insert(Histogram1D::new("q2", 34, 0.6, 4.0));
        // log10(x) from -5 to 0.
        histograms.insert(Histogram1D::new("x", 40, -5.0, 0.0));
        histograms.insert(Histogram1D::new("y", 26, 0.0, 0.78));
        histograms.insert(Histogram1D::new("e_prime", 44, 0.0, 55.0));
        histograms.insert(Histogram1D::new("theta_e", 32, 0.0, 3.2));
        histograms.insert(Histogram1D::new("empz", 40, 35.0, 75.0));
        histograms.insert(Histogram1D::new("n_charged", 40, 0.0, 40.0));
        histograms.insert(Histogram1D::new("pt_had", 40, 0.0, 60.0));
        Analysis {
            cuts,
            cut_flow: CutFlow::default(),
            histograms,
        }
    }

    /// Processes one reconstructed event.
    pub fn process(&mut self, event: &RecoEvent) {
        self.cut_flow.total += 1;
        if event.electron.is_some() {
            self.cut_flow.with_electron += 1;
        }
        if !self.cuts.passes(event) {
            return;
        }
        self.cut_flow.selected += 1;

        let electron = event.electron.expect("selection requires electron");
        let k = event.kinematics.expect("selection requires kinematics");
        let fill = |set: &mut HistogramSet, name: &str, value: f64| {
            set.get_mut(name)
                .expect("histogram booked in constructor")
                .fill(value);
        };
        fill(&mut self.histograms, "q2", k.q2.max(1e-12).log10());
        fill(&mut self.histograms, "x", k.x.max(1e-12).log10());
        fill(&mut self.histograms, "y", k.y);
        fill(&mut self.histograms, "e_prime", electron.e);
        fill(&mut self.histograms, "theta_e", electron.theta());
        fill(&mut self.histograms, "empz", event.e_minus_pz);
        fill(&mut self.histograms, "n_charged", event.n_charged as f64);
        fill(&mut self.histograms, "pt_had", event.hadronic.pt());
    }

    /// Finishes the analysis, consuming it.
    pub fn finish(self) -> AnalysisResult {
        AnalysisResult {
            total: self.cut_flow.total,
            with_electron: self.cut_flow.with_electron,
            selected: self.cut_flow.selected,
            histograms: self.histograms,
        }
    }
}

/// The analysis output: cut flow plus control distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// Events processed.
    pub total: u64,
    /// Events with a reconstructed electron.
    pub with_electron: u64,
    /// Events passing the full selection.
    pub selected: u64,
    /// The control distributions.
    pub histograms: HistogramSet,
}

impl AnalysisResult {
    /// Selection efficiency (selected / total).
    pub fn efficiency(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.selected as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detsim::{DetectorSim, SmearingConstants};
    use crate::mcgen::{EventGenerator, GeneratorConfig};
    use crate::reco::reconstruct;

    fn run(config: GeneratorConfig, n: usize, seed: u64) -> AnalysisResult {
        let sim = DetectorSim::new(SmearingConstants::V2_SL5);
        let mut analysis = Analysis::new(SelectionCuts::default());
        for ev in EventGenerator::new(config.clone(), seed).take(n) {
            let reco = reconstruct(&sim.simulate(&ev, seed ^ ev.id), &config);
            analysis.process(&reco);
        }
        analysis.finish()
    }

    #[test]
    fn nc_selection_selects_a_reasonable_fraction() {
        let result = run(GeneratorConfig::hera_nc(), 1000, 1);
        assert_eq!(result.total, 1000);
        assert!(
            result.selected > 100,
            "too few selected: {}",
            result.selected
        );
        assert!(
            result.selected < 990,
            "cuts not cutting: {}",
            result.selected
        );
        assert!(result.with_electron >= result.selected);
    }

    #[test]
    fn cc_events_fail_nc_selection() {
        let result = run(GeneratorConfig::hera_cc(), 500, 2);
        assert_eq!(result.selected, 0, "no scattered electron, no selection");
    }

    #[test]
    fn photoproduction_suppressed() {
        let result = run(GeneratorConfig::hera_php(), 500, 3);
        assert_eq!(result.selected, 0);
    }

    #[test]
    fn histograms_filled_consistently() {
        let result = run(GeneratorConfig::hera_nc(), 1000, 4);
        let q2 = result.histograms.get("q2").unwrap();
        // Every selected event fills q2 exactly once (entries include
        // under/overflow fills).
        assert_eq!(q2.entries(), result.selected);
        // e_prime above the 11 GeV cut.
        let e_prime = result.histograms.get("e_prime").unwrap();
        assert!(e_prime.mean() >= 11.0);
    }

    #[test]
    fn efficiency_bounds() {
        let result = run(GeneratorConfig::hera_nc(), 500, 5);
        assert!(result.efficiency() > 0.0 && result.efficiency() < 1.0);
        let empty = Analysis::new(SelectionCuts::default()).finish();
        assert_eq!(empty.efficiency(), 0.0);
    }

    #[test]
    fn q2_spectrum_is_falling() {
        let result = run(GeneratorConfig::hera_nc(), 3000, 6);
        let q2 = result.histograms.get("q2").unwrap();
        let counts = q2.counts();
        let first_half: f64 = counts[..counts.len() / 2].iter().sum();
        let second_half: f64 = counts[counts.len() / 2..].iter().sum();
        assert!(
            first_half > 3.0 * second_half,
            "Q² spectrum must fall: low={first_half}, high={second_half}"
        );
    }
}
