//! Seeded sampling helpers.
//!
//! `rand` deliberately ships only uniform primitives in its core crate; the
//! Gaussian and power-law samplers the toy detector needs are implemented
//! here (Box–Muller and inverse-transform respectively) to keep the
//! dependency set to the approved list.

use rand::Rng;

/// Draws one standard-normal variate via Box–Muller.
///
/// Uses the polar-free trigonometric form; one of the pair is discarded for
/// simplicity (generation is not a bottleneck next to histogram analysis).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * standard_normal(rng)
}

/// Samples from a power-law density `p(x) ∝ x^(-alpha)` on `[lo, hi]`,
/// `alpha > 1` (inverse transform). Used for the DIS Q² spectrum.
pub fn power_law<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(alpha > 1.0 && lo > 0.0 && hi > lo);
    let u: f64 = rng.gen();
    let one_minus = 1.0 - alpha;
    let lo_pow = lo.powf(one_minus);
    let hi_pow = hi.powf(one_minus);
    (lo_pow + u * (hi_pow - lo_pow)).powf(1.0 / one_minus)
}

/// Samples a small multiplicity from a shifted geometric-like distribution
/// with the given mean, clamped to `[1, max]`.
pub fn multiplicity<R: Rng + ?Sized>(rng: &mut R, mean: f64, max: usize) -> usize {
    // Sum of a few uniforms approximates the bell shape well enough for a
    // toy hadronic final state.
    let raw = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0;
    let n = (raw * mean * 2.0).round() as usize;
    n.clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn power_law_in_bounds_and_falling() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0usize;
        let mut high = 0usize;
        for _ in 0..10_000 {
            let x = power_law(&mut rng, 2.0, 4.0, 100.0);
            assert!((4.0..=100.0).contains(&x));
            if x < 10.0 {
                low += 1;
            } else if x > 50.0 {
                high += 1;
            }
        }
        assert!(
            low > 10 * high,
            "power law must fall steeply: low={low}, high={high}"
        );
    }

    #[test]
    fn multiplicity_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let n = multiplicity(&mut rng, 12.0, 40);
            assert!((1..=40).contains(&n));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
