//! 1-D histograms with statistical comparison tests.
//!
//! Histograms are the currency of HEP validation: the output file of a
//! validation test "may be a simple yes/no, a text file, a histogram, a
//! root file" (§3.3). The comparison tests (χ² over bins with proper error
//! propagation, and Kolmogorov–Smirnov on the cumulative distribution) are
//! the two standard HEP compatibility checks between a new run and its
//! reference.

use std::collections::BTreeMap;

use crate::stats::{chi2_p_value, kolmogorov_q};

/// A fixed-binning 1-D histogram with weighted fills and per-bin variance
/// tracking (the `Sumw2` of ROOT histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram1D {
    name: String,
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
    sumw2: Vec<f64>,
    underflow: f64,
    overflow: f64,
    entries: u64,
    sum_w: f64,
    sum_wx: f64,
    sum_wx2: f64,
}

impl Histogram1D {
    /// Creates a histogram with `nbins` equal bins on `[lo, hi)`.
    ///
    /// # Panics
    /// If `nbins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(name: impl Into<String>, nbins: usize, lo: f64, hi: f64) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        Histogram1D {
            name: name.into(),
            lo,
            hi,
            counts: vec![0.0; nbins],
            sumw2: vec![0.0; nbins],
            underflow: 0.0,
            overflow: 0.0,
            entries: 0,
            sum_w: 0.0,
            sum_wx: 0.0,
            sum_wx2: 0.0,
        }
    }

    /// Histogram name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.counts.len()
    }

    /// Lower edge.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bin contents (in-range bins only).
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Per-bin sum of squared weights.
    pub fn sumw2(&self) -> &[f64] {
        &self.sumw2
    }

    /// Underflow content.
    pub fn underflow(&self) -> f64 {
        self.underflow
    }

    /// Overflow content.
    pub fn overflow(&self) -> f64 {
        self.overflow
    }

    /// Number of fill calls.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total in-range weight.
    pub fn integral(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The running moment sums `(Σw, Σwx, Σwx²)` over in-range fills;
    /// exposed for serialisation.
    pub fn moment_sums(&self) -> (f64, f64, f64) {
        (self.sum_w, self.sum_wx, self.sum_wx2)
    }

    /// Reconstructs a histogram from serialised parts (see `hist_io`).
    /// Not intended for general use: the caller is responsible for the
    /// internal consistency of the moment sums.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        name: String,
        nbins: usize,
        lo: f64,
        hi: f64,
        counts: Vec<f64>,
        sumw2: Vec<f64>,
        underflow: f64,
        overflow: f64,
        entries: u64,
        sum_w: f64,
        sum_wx: f64,
        sum_wx2: f64,
    ) -> Self {
        assert_eq!(counts.len(), nbins, "counts length must equal nbins");
        assert_eq!(sumw2.len(), nbins, "sumw2 length must equal nbins");
        Histogram1D {
            name,
            lo,
            hi,
            counts,
            sumw2,
            underflow,
            overflow,
            entries,
            sum_w,
            sum_wx,
            sum_wx2,
        }
    }

    /// Bin index for a value, if in range.
    pub fn bin_index(&self, x: f64) -> Option<usize> {
        if !x.is_finite() || x < self.lo || x >= self.hi {
            return None;
        }
        let width = (self.hi - self.lo) / self.nbins() as f64;
        let idx = ((x - self.lo) / width) as usize;
        Some(idx.min(self.nbins() - 1))
    }

    /// Centre of bin `idx`.
    pub fn bin_center(&self, idx: usize) -> f64 {
        let width = (self.hi - self.lo) / self.nbins() as f64;
        self.lo + (idx as f64 + 0.5) * width
    }

    /// Fills with unit weight.
    pub fn fill(&mut self, x: f64) {
        self.fill_weighted(x, 1.0);
    }

    /// Fills with the given weight. Non-finite values count as entries but
    /// land in overflow (mirroring ROOT's NaN handling closely enough).
    pub fn fill_weighted(&mut self, x: f64, w: f64) {
        self.entries += 1;
        match self.bin_index(x) {
            Some(idx) => {
                self.counts[idx] += w;
                self.sumw2[idx] += w * w;
                self.sum_w += w;
                self.sum_wx += w * x;
                self.sum_wx2 += w * x * x;
            }
            None if x < self.lo => self.underflow += w,
            None => self.overflow += w,
        }
    }

    /// Weighted mean of in-range fills.
    pub fn mean(&self) -> f64 {
        if self.sum_w == 0.0 {
            0.0
        } else {
            self.sum_wx / self.sum_w
        }
    }

    /// Weighted standard deviation of in-range fills.
    pub fn std_dev(&self) -> f64 {
        if self.sum_w == 0.0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_wx2 / self.sum_w - mean * mean).max(0.0).sqrt()
    }

    /// Adds another histogram bin-by-bin (same binning required).
    pub fn add(&mut self, other: &Histogram1D) -> Result<(), BinningMismatch> {
        self.check_binning(other)?;
        for (c, oc) in self.counts.iter_mut().zip(&other.counts) {
            *c += oc;
        }
        for (s, os) in self.sumw2.iter_mut().zip(&other.sumw2) {
            *s += os;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.entries += other.entries;
        self.sum_w += other.sum_w;
        self.sum_wx += other.sum_wx;
        self.sum_wx2 += other.sum_wx2;
        Ok(())
    }

    /// Multiplies all contents by `factor` (luminosity scaling).
    pub fn scale(&mut self, factor: f64) {
        for c in &mut self.counts {
            *c *= factor;
        }
        for s in &mut self.sumw2 {
            *s *= factor * factor;
        }
        self.underflow *= factor;
        self.overflow *= factor;
        self.sum_w *= factor;
        self.sum_wx *= factor;
        self.sum_wx2 *= factor;
    }

    fn check_binning(&self, other: &Histogram1D) -> Result<(), BinningMismatch> {
        if self.nbins() != other.nbins() || self.lo != other.lo || self.hi != other.hi {
            return Err(BinningMismatch {
                left: format!("{}[{}:{};{}]", self.name, self.lo, self.hi, self.nbins()),
                right: format!(
                    "{}[{}:{};{}]",
                    other.name,
                    other.lo,
                    other.hi,
                    other.nbins()
                ),
            });
        }
        Ok(())
    }

    /// χ² compatibility test against another histogram of identical
    /// binning. Bins where both histograms are empty are skipped; the
    /// variance per bin is `sumw2_a + sumw2_b` (both histograms treated as
    /// statistically independent samples).
    pub fn chi2_test(&self, other: &Histogram1D) -> Result<Chi2Result, BinningMismatch> {
        self.check_binning(other)?;
        let mut chi2 = 0.0;
        let mut ndf = 0u32;
        for i in 0..self.nbins() {
            let (a, b) = (self.counts[i], other.counts[i]);
            let var = self.sumw2[i] + other.sumw2[i];
            if var <= 0.0 {
                continue;
            }
            chi2 += (a - b) * (a - b) / var;
            ndf += 1;
        }
        let p_value = chi2_p_value(chi2, ndf);
        Ok(Chi2Result { chi2, ndf, p_value })
    }

    /// Two-sample Kolmogorov–Smirnov test on the binned cumulative
    /// distributions (the ROOT `TH1::KolmogorovTest` approach).
    pub fn ks_test(&self, other: &Histogram1D) -> Result<KsResult, BinningMismatch> {
        self.check_binning(other)?;
        // One fused sweep gathers both integrals and both Σw² totals —
        // the naive formulation walks the bin arrays four times before
        // the CDF loop even starts.
        let (mut sum_a, mut sum_b, mut w2_a, mut w2_b) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..self.nbins() {
            sum_a += self.counts[i];
            sum_b += other.counts[i];
            w2_a += self.sumw2[i];
            w2_b += other.sumw2[i];
        }
        if sum_a <= 0.0 || sum_b <= 0.0 {
            // Two empty histograms are trivially compatible; one empty and
            // one filled are maximally incompatible.
            let d = if sum_a == sum_b { 0.0 } else { 1.0 };
            return Ok(KsResult {
                statistic: d,
                p_value: if d == 0.0 { 1.0 } else { 0.0 },
            });
        }
        // Accumulate the *unnormalised* cumulative sums and scale each by
        // a precomputed reciprocal: no per-bin division, and the two
        // running sums are bit-identical across self-comparison (so a
        // histogram against itself still yields exactly D = 0).
        let (inv_a, inv_b) = (1.0 / sum_a, 1.0 / sum_b);
        let mut cum_a = 0.0;
        let mut cum_b = 0.0;
        let mut d: f64 = 0.0;
        for i in 0..self.nbins() {
            cum_a += self.counts[i];
            cum_b += other.counts[i];
            d = d.max((cum_a * inv_a - cum_b * inv_b).abs());
        }
        // Effective sample sizes from the weighted sums: `(Σw)² / Σw²`.
        let n_a = if w2_a <= 0.0 {
            0.0
        } else {
            sum_a * sum_a / w2_a
        };
        let n_b = if w2_b <= 0.0 {
            0.0
        } else {
            sum_b * sum_b / w2_b
        };
        let n_eff = (n_a * n_b / (n_a + n_b)).sqrt();
        let lambda = (n_eff + 0.12 + 0.11 / n_eff) * d;
        Ok(KsResult {
            statistic: d,
            p_value: kolmogorov_q(lambda),
        })
    }
}

/// Binning incompatibility between two histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinningMismatch {
    /// Description of the left histogram.
    pub left: String,
    /// Description of the right histogram.
    pub right: String,
}

impl std::fmt::Display for BinningMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binning mismatch: {} vs {}", self.left, self.right)
    }
}

impl std::error::Error for BinningMismatch {}

/// Result of a χ² compatibility test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub chi2: f64,
    /// Degrees of freedom (bins with content).
    pub ndf: u32,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl Chi2Result {
    /// χ²/ndf, the quantity quoted in validation summaries.
    pub fn reduced(&self) -> f64 {
        if self.ndf == 0 {
            0.0
        } else {
            self.chi2 / self.ndf as f64
        }
    }
}

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// Maximum CDF distance D.
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
}

/// A named collection of histograms — the "output file" of an analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSet {
    histograms: BTreeMap<String, Histogram1D>,
}

impl HistogramSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        HistogramSet::default()
    }

    /// Inserts (or replaces) a histogram under its own name.
    pub fn insert(&mut self, hist: Histogram1D) {
        self.histograms.insert(hist.name().to_string(), hist);
    }

    /// Looks up by name.
    pub fn get(&self, name: &str) -> Option<&Histogram1D> {
        self.histograms.get(name)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Histogram1D> {
        self.histograms.get_mut(name)
    }

    /// Iterates histograms in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Histogram1D> {
        self.histograms.values()
    }

    /// Number of histograms.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Names in order.
    pub fn names(&self) -> Vec<&str> {
        self.histograms.keys().map(String::as_str).collect()
    }

    /// Worst (smallest) χ² p-value across histograms present in both sets;
    /// `None` if no common histograms. Missing counterparts and binning
    /// mismatches count as p = 0 (maximally incompatible) since they mean
    /// the producing code changed shape.
    pub fn worst_chi2_p(&self, other: &HistogramSet) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for (name, hist) in &self.histograms {
            let p = match other.get(name) {
                Some(o) => hist.chi2_test(o).map(|r| r.p_value).unwrap_or(0.0),
                None => 0.0,
            };
            worst = Some(worst.map_or(p, |w: f64| w.min(p)));
        }
        worst
    }
}

impl FromIterator<Histogram1D> for HistogramSet {
    fn from_iter<T: IntoIterator<Item = Histogram1D>>(iter: T) -> Self {
        let mut set = HistogramSet::new();
        for h in iter {
            set.insert(h);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_hist(name: &str, seed: u64, n: usize, mean: f64) -> Histogram1D {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = Histogram1D::new(name, 50, -5.0, 15.0);
        for _ in 0..n {
            h.fill(crate::rng::normal(&mut rng, mean, 2.0));
        }
        h
    }

    #[test]
    fn fill_and_ranges() {
        let mut h = Histogram1D::new("test", 10, 0.0, 10.0);
        h.fill(-1.0);
        h.fill(0.0);
        h.fill(5.5);
        h.fill(9.999);
        h.fill(10.0);
        h.fill(f64::NAN);
        assert_eq!(h.entries(), 6);
        assert_eq!(h.underflow(), 1.0);
        assert_eq!(h.overflow(), 2.0); // 10.0 and NaN
        assert_eq!(h.integral(), 3.0);
        assert_eq!(h.bin_index(5.5), Some(5));
        assert_eq!(h.bin_index(10.0), None);
    }

    #[test]
    fn moments() {
        let mut h = Histogram1D::new("m", 100, -10.0, 30.0);
        for _ in 0..10 {
            h.fill(10.0);
        }
        assert!((h.mean() - 10.0).abs() < 1e-12);
        assert_eq!(h.std_dev(), 0.0);
        h.fill(20.0);
        assert!(h.mean() > 10.0);
        assert!(h.std_dev() > 0.0);
    }

    #[test]
    fn weighted_fills() {
        let mut h = Histogram1D::new("w", 4, 0.0, 4.0);
        h.fill_weighted(1.5, 2.0);
        h.fill_weighted(1.5, 3.0);
        assert_eq!(h.counts()[1], 5.0);
        assert_eq!(h.sumw2()[1], 13.0);
        assert_eq!(h.entries(), 2);
    }

    #[test]
    fn self_comparison_is_perfect() {
        let h = gaussian_hist("g", 1, 5000, 5.0);
        let chi2 = h.chi2_test(&h).unwrap();
        assert_eq!(chi2.chi2, 0.0);
        assert_eq!(chi2.p_value, 1.0);
        let ks = h.ks_test(&h).unwrap();
        assert_eq!(ks.statistic, 0.0);
        assert!((ks.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn statistically_identical_samples_are_compatible() {
        let a = gaussian_hist("a", 1, 5000, 5.0);
        let b = gaussian_hist("b", 2, 5000, 5.0);
        let chi2 = a.chi2_test(&b).unwrap();
        assert!(
            chi2.p_value > 1e-3,
            "same-distribution samples: p={}, chi2/ndf={}",
            chi2.p_value,
            chi2.reduced()
        );
        let ks = a.ks_test(&b).unwrap();
        assert!(ks.p_value > 1e-3, "KS p={}", ks.p_value);
    }

    #[test]
    fn shifted_samples_are_incompatible() {
        let a = gaussian_hist("a", 1, 5000, 5.0);
        let b = gaussian_hist("b", 2, 5000, 6.0); // half-σ shift
        let chi2 = a.chi2_test(&b).unwrap();
        assert!(chi2.p_value < 1e-6, "shifted: p={}", chi2.p_value);
        let ks = a.ks_test(&b).unwrap();
        assert!(ks.p_value < 1e-6, "shifted KS: p={}", ks.p_value);
    }

    #[test]
    fn chi2_is_symmetric() {
        let a = gaussian_hist("a", 3, 2000, 5.0);
        let b = gaussian_hist("b", 4, 2000, 5.2);
        let ab = a.chi2_test(&b).unwrap();
        let ba = b.chi2_test(&a).unwrap();
        assert!((ab.chi2 - ba.chi2).abs() < 1e-9);
        assert_eq!(ab.ndf, ba.ndf);
    }

    #[test]
    fn binning_mismatch_rejected() {
        let a = Histogram1D::new("a", 10, 0.0, 1.0);
        let b = Histogram1D::new("b", 20, 0.0, 1.0);
        assert!(a.chi2_test(&b).is_err());
        assert!(a.ks_test(&b).is_err());
        let mut a2 = a.clone();
        assert!(a2.add(&b).is_err());
    }

    #[test]
    fn add_and_scale() {
        let mut a = gaussian_hist("a", 5, 1000, 5.0);
        let b = gaussian_hist("b", 6, 1000, 5.0);
        let total_before = a.integral() + b.integral();
        a.add(&b).unwrap();
        assert!((a.integral() - total_before).abs() < 1e-9);
        let integral = a.integral();
        a.scale(0.5);
        assert!((a.integral() - integral * 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_vs_filled_ks() {
        let empty = Histogram1D::new("e", 10, 0.0, 1.0);
        let mut filled = Histogram1D::new("f", 10, 0.0, 1.0);
        filled.fill(0.5);
        let ks = empty.ks_test(&filled).unwrap();
        assert_eq!(ks.statistic, 1.0);
        assert_eq!(ks.p_value, 0.0);
        let ks = empty.ks_test(&empty.clone()).unwrap();
        assert_eq!(ks.p_value, 1.0);
    }

    #[test]
    fn histogram_set_worst_p() {
        let mut set_a = HistogramSet::new();
        let mut set_b = HistogramSet::new();
        set_a.insert(gaussian_hist("same", 1, 3000, 5.0));
        set_b.insert(gaussian_hist("same", 2, 3000, 5.0));
        let p_same = set_a.worst_chi2_p(&set_b).unwrap();
        assert!(p_same > 1e-3);

        set_a.insert(gaussian_hist("shifted", 3, 3000, 5.0));
        set_b.insert(gaussian_hist("shifted", 4, 3000, 7.0));
        let p_shifted = set_a.worst_chi2_p(&set_b).unwrap();
        assert!(p_shifted < 1e-6);

        // Missing histogram counts as maximal incompatibility.
        set_a.insert(gaussian_hist("only-in-a", 5, 100, 5.0));
        assert_eq!(set_a.worst_chi2_p(&set_b), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram1D::new("bad", 0, 0.0, 1.0);
    }
}
