//! Event reconstruction.
//!
//! Takes the simulated (smeared) event and produces the physics-level
//! quantities the analysis consumes: the identified scattered electron,
//! electron-method kinematics, the hadronic system and the `E − p_z`
//! containment check.

use crate::kinematics::{DisKinematics, FourVector};
use crate::mcgen::{Event, GeneratorConfig};

/// A reconstructed event.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoEvent {
    /// Source event id.
    pub id: u64,
    /// Generator process (carried through for truth-matching studies).
    pub process: crate::mcgen::Process,
    /// Identified scattered-electron four-vector, if any.
    pub electron: Option<FourVector>,
    /// Reconstructed kinematics (electron method), if an electron was
    /// found.
    pub kinematics: Option<DisKinematics>,
    /// Summed hadronic final state.
    pub hadronic: FourVector,
    /// Charged-track multiplicity.
    pub n_charged: usize,
    /// Total `E − p_z` of the visible final state; ≈ 2·E_e for contained
    /// NC events (HERA convention: lepton along −z).
    pub e_minus_pz: f64,
    /// Missing transverse momentum (CC signature).
    pub pt_miss: f64,
}

/// Reconstructs one simulated event.
///
/// Electron finding: the highest-energy electromagnetic deposit
/// (|pdg| = 11) above 3 GeV in the backward hemisphere. This toy algorithm
/// misidentifies nothing by construction, but acceptance and efficiency
/// losses upstream make it realistically lossy.
pub fn reconstruct(event: &Event, config: &GeneratorConfig) -> RecoEvent {
    // NB: generated events use +z along the *proton*; the scattered lepton
    // emerges at large θ (backward hemisphere).
    let electron = event
        .particles
        .iter()
        .filter(|p| p.status == 1 && p.pdg_id.abs() == 11 && p.p4.e > 3.0)
        .max_by(|a, b| a.p4.e.total_cmp(&b.p4.e))
        .map(|p| p.p4);

    let hadronic: FourVector = event
        .particles
        .iter()
        .filter(|p| p.status == 1 && p.pdg_id != 12 && p.pdg_id.abs() != 11)
        .map(|p| p.p4)
        .sum();

    let n_charged = event
        .particles
        .iter()
        .filter(|p| p.status == 1 && p.charge != 0)
        .count();

    let kinematics = electron
        .map(|e| DisKinematics::electron_method(config.e_beam, config.p_beam, e.e, e.theta()));

    let visible: FourVector = event
        .particles
        .iter()
        .filter(|p| p.status == 1 && p.pdg_id != 12)
        .map(|p| p.p4)
        .sum();

    // In the generator frame all final-state momenta are built from
    // from_polar (θ measured from +z = proton direction); the scattered
    // lepton's true E − p_z uses the lepton-beam convention, so convert:
    // for HERA analyses Σ(E − p_z) is evaluated with p_z signed along the
    // *proton* direction, giving ≈ 2·E_e for contained events because the
    // incoming lepton carries E + |p_z| ≈ 2E_e of the conserved quantity.
    let e_minus_pz = visible.e - visible.pz;

    RecoEvent {
        id: event.id,
        process: event.process,
        electron,
        kinematics,
        hadronic,
        n_charged,
        e_minus_pz,
        pt_miss: visible.pt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detsim::{DetectorSim, SmearingConstants};
    use crate::mcgen::{EventGenerator, GeneratorConfig};

    fn reco_sample(config: GeneratorConfig, n: usize, seed: u64) -> Vec<RecoEvent> {
        let sim = DetectorSim::new(SmearingConstants::V2_SL5);
        EventGenerator::new(config.clone(), seed)
            .take(n)
            .map(|ev| {
                let simulated = sim.simulate(&ev, seed ^ ev.id);
                reconstruct(&simulated, &config)
            })
            .collect()
    }

    #[test]
    fn most_nc_events_reconstruct_an_electron() {
        let events = reco_sample(GeneratorConfig::hera_nc(), 200, 1);
        let with_electron = events.iter().filter(|e| e.electron.is_some()).count();
        assert!(
            with_electron > 150,
            "electron finding efficiency too low: {with_electron}/200"
        );
    }

    #[test]
    fn cc_events_have_no_electron_but_pt_miss() {
        let events = reco_sample(GeneratorConfig::hera_cc(), 200, 2);
        assert!(events.iter().all(|e| e.electron.is_none()));
        let mean_ptmiss: f64 = events.iter().map(|e| e.pt_miss).sum::<f64>() / events.len() as f64;
        let nc = reco_sample(GeneratorConfig::hera_nc(), 200, 2);
        let mean_ptmiss_nc: f64 = nc.iter().map(|e| e.pt_miss).sum::<f64>() / nc.len() as f64;
        assert!(
            mean_ptmiss > mean_ptmiss_nc,
            "CC events should have more missing pT: {mean_ptmiss} vs {mean_ptmiss_nc}"
        );
    }

    #[test]
    fn kinematics_present_iff_electron() {
        for event in reco_sample(GeneratorConfig::hera_nc(), 100, 3) {
            assert_eq!(event.electron.is_some(), event.kinematics.is_some());
            if let Some(k) = event.kinematics {
                assert!(k.q2 >= 0.0);
                assert!((0.0..=1.0).contains(&k.x));
            }
        }
    }

    #[test]
    fn reconstruction_is_deterministic() {
        let a = reco_sample(GeneratorConfig::hera_nc(), 50, 9);
        let b = reco_sample(GeneratorConfig::hera_nc(), 50, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn charged_multiplicity_counted() {
        let events = reco_sample(GeneratorConfig::hera_nc(), 100, 5);
        assert!(events.iter().any(|e| e.n_charged > 0));
    }
}
