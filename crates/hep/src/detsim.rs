//! Detector simulation: acceptance and calorimeter smearing.
//!
//! The constants are *versioned* like real calibration sets: migrating the
//! environment must not change them (that would be a preservation failure),
//! so the validation framework compares distributions produced with the same
//! constants across environments.
//!
//! The `deviation` hook is how the platform-compatibility layer couples in:
//! a latent code bug that manifests on a new platform (uninitialised
//! variable, pointer-width assumption) is modelled as a small energy-scale
//! bias proportional to the deviation magnitude. Real HERA validation caught
//! exactly this class of bug as shifted validation histograms (§3.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mcgen::{Event, Particle};
use crate::rng::normal;

/// Calorimeter resolution and scale constants.
///
/// Resolution model: σ(E)/E = a/√E ⊕ b (stochastic ⊕ constant term).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmearingConstants {
    /// Version tag of the calibration set.
    pub version: &'static str,
    /// Electromagnetic stochastic term (GeV^½).
    pub em_stochastic: f64,
    /// Electromagnetic constant term.
    pub em_constant: f64,
    /// Hadronic stochastic term (GeV^½).
    pub had_stochastic: f64,
    /// Hadronic constant term.
    pub had_constant: f64,
    /// Fractional energy-scale uncertainty, the unit in which environment
    /// deviations are expressed.
    pub scale_uncertainty: f64,
    /// Polar-angle acceptance (min, max) in radians.
    pub acceptance: (f64, f64),
    /// Single-particle detection efficiency.
    pub efficiency: f64,
}

impl SmearingConstants {
    /// The original HERA-era calibration (SL4 validation reference).
    pub const V1_SL4: SmearingConstants = SmearingConstants {
        version: "v1-sl4",
        em_stochastic: 0.12,
        em_constant: 0.011,
        had_stochastic: 0.52,
        had_constant: 0.022,
        scale_uncertainty: 0.02,
        acceptance: (0.07, 3.05),
        efficiency: 0.975,
    };

    /// The refined calibration used during the SL5 era — the reference set
    /// for all sp-system comparisons.
    pub const V2_SL5: SmearingConstants = SmearingConstants {
        version: "v2-sl5",
        em_stochastic: 0.11,
        em_constant: 0.010,
        had_stochastic: 0.50,
        had_constant: 0.020,
        scale_uncertainty: 0.02,
        acceptance: (0.07, 3.05),
        efficiency: 0.98,
    };
}

/// The detector simulation stage.
#[derive(Debug, Clone)]
pub struct DetectorSim {
    constants: SmearingConstants,
    /// Environment-induced energy-scale deviation in units of
    /// `scale_uncertainty` (0 = healthy platform).
    deviation_sigma: f64,
}

impl DetectorSim {
    /// Creates a simulation with the given calibration constants.
    pub fn new(constants: SmearingConstants) -> Self {
        DetectorSim {
            constants,
            deviation_sigma: 0.0,
        }
    }

    /// Injects an environment-induced deviation (σ units of the energy
    /// scale uncertainty). Zero leaves the simulation nominal.
    pub fn with_deviation(mut self, deviation_sigma: f64) -> Self {
        self.deviation_sigma = deviation_sigma;
        self
    }

    /// The active calibration constants.
    pub fn constants(&self) -> &SmearingConstants {
        &self.constants
    }

    /// Simulates one event: acceptance, efficiency and energy smearing.
    /// `seed` should be unique per event (e.g. run seed ⊕ event id) for
    /// reproducibility.
    pub fn simulate(&self, event: &Event, seed: u64) -> Event {
        let mut out = Event {
            id: event.id,
            process: event.process,
            truth: event.truth,
            particles: Vec::with_capacity(event.particles.len()),
            weight: event.weight,
        };
        self.simulate_into(event, seed, &mut out);
        out
    }

    /// [`simulate`](Self::simulate), writing the simulated event into
    /// `out`'s reused buffers instead of allocating. Draws the same random
    /// sequence, so both paths are bit-identical for the same seed.
    pub fn simulate_into(&self, event: &Event, seed: u64, out: &mut Event) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let scale = 1.0 + self.deviation_sigma * self.constants.scale_uncertainty;
        // A deviating platform also loses a little efficiency (wrong branch
        // taken on garbage reads drops particles).
        let efficiency =
            (self.constants.efficiency * (1.0 - 0.01 * self.deviation_sigma)).clamp(0.0, 1.0);
        let (theta_min, theta_max) = self.constants.acceptance;

        out.id = event.id;
        out.process = event.process;
        out.truth = event.truth;
        out.weight = event.weight;
        out.particles.clear();
        for p in &event.particles {
            // Neutrinos pass through unmeasured.
            if p.pdg_id == 12 {
                out.particles.push(p.clone());
                continue;
            }
            let theta = p.p4.theta();
            if theta < theta_min || theta > theta_max {
                continue; // outside acceptance (beam pipe)
            }
            if rng.gen::<f64>() > efficiency {
                continue; // detection inefficiency
            }
            let smeared = self.smear(p, scale, &mut rng);
            out.particles.push(smeared);
        }
    }

    /// Smears one particle's energy with the appropriate resolution and
    /// applies the (possibly deviated) energy scale.
    fn smear(&self, p: &Particle, scale: f64, rng: &mut StdRng) -> Particle {
        let electromagnetic = p.pdg_id.abs() == 11 || p.pdg_id == 22 || p.pdg_id == 111;
        let (a, b) = if electromagnetic {
            (self.constants.em_stochastic, self.constants.em_constant)
        } else {
            (self.constants.had_stochastic, self.constants.had_constant)
        };
        let e = p.p4.e.max(1e-3);
        let rel_sigma = ((a * a / e) + b * b).sqrt();
        let factor = (normal(rng, 1.0, rel_sigma) * scale).max(0.01);
        let mut out = p.clone();
        out.p4 = p.p4.scale(factor);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcgen::{EventGenerator, GeneratorConfig};

    fn sample_event(seed: u64) -> Event {
        EventGenerator::new(GeneratorConfig::hera_nc(), seed)
            .next()
            .expect("generator is infinite")
    }

    #[test]
    fn simulation_is_reproducible() {
        let event = sample_event(1);
        let sim = DetectorSim::new(SmearingConstants::V2_SL5);
        let a = sim.simulate(&event, 99);
        let b = sim.simulate(&event, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn simulate_into_matches_allocating_path() {
        let sim = DetectorSim::new(SmearingConstants::V2_SL5).with_deviation(1.5);
        let mut scratch = sample_event(9); // pre-dirtied buffer
        for seed in 0..20u64 {
            let event = sample_event(seed);
            sim.simulate_into(&event, seed ^ 77, &mut scratch);
            assert_eq!(scratch, sim.simulate(&event, seed ^ 77));
        }
    }

    #[test]
    fn different_event_seeds_differ() {
        let event = sample_event(1);
        let sim = DetectorSim::new(SmearingConstants::V2_SL5);
        let a = sim.simulate(&event, 99);
        let b = sim.simulate(&event, 100);
        assert_ne!(a, b);
    }

    #[test]
    fn acceptance_removes_beampipe_particles() {
        let sim = DetectorSim::new(SmearingConstants::V2_SL5);
        let mut event = sample_event(2);
        // Inject a particle straight down the beam pipe.
        event.particles.push(Particle::final_state(
            211,
            crate::kinematics::FourVector::from_polar(50.0, 0.001, 0.0),
            1,
        ));
        let simulated = sim.simulate(&event, 7);
        assert!(simulated
            .particles
            .iter()
            .all(|p| p.pdg_id == 12 || p.p4.theta() >= 0.07));
    }

    #[test]
    fn neutrinos_are_not_measured_but_kept() {
        let sim = DetectorSim::new(SmearingConstants::V2_SL5);
        let event = EventGenerator::new(GeneratorConfig::hera_cc(), 3)
            .next()
            .unwrap();
        let nu_energy = event
            .particles
            .iter()
            .find(|p| p.pdg_id == 12)
            .map(|p| p.p4.e)
            .expect("CC event has a neutrino");
        let simulated = sim.simulate(&event, 11);
        let nu_after = simulated
            .particles
            .iter()
            .find(|p| p.pdg_id == 12)
            .map(|p| p.p4.e)
            .expect("neutrino survives");
        assert_eq!(nu_energy, nu_after);
    }

    #[test]
    fn smearing_changes_energies_but_not_wildly() {
        let sim = DetectorSim::new(SmearingConstants::V2_SL5);
        let event = sample_event(4);
        let simulated = sim.simulate(&event, 13);
        for p in &simulated.particles {
            assert!(p.p4.e > 0.0);
            assert!(p.p4.e < 2000.0);
        }
    }

    #[test]
    fn deviation_biases_mean_energy() {
        // Average over many events: the deviated sim must be systematically
        // higher in total visible energy.
        let sim_nom = DetectorSim::new(SmearingConstants::V2_SL5);
        let sim_dev = DetectorSim::new(SmearingConstants::V2_SL5).with_deviation(5.0);
        let mut sum_nom = 0.0;
        let mut sum_dev = 0.0;
        for (i, event) in EventGenerator::new(GeneratorConfig::hera_nc(), 6)
            .take(300)
            .enumerate()
        {
            sum_nom += sim_nom.simulate(&event, i as u64).visible_sum().e;
            sum_dev += sim_dev.simulate(&event, i as u64).visible_sum().e;
        }
        assert!(
            sum_dev > sum_nom * 1.005,
            "5σ scale deviation must be visible: {sum_dev} vs {sum_nom}"
        );
    }

    #[test]
    fn calibration_versions_differ() {
        assert_ne!(SmearingConstants::V1_SL4, SmearingConstants::V2_SL5);
        assert_eq!(SmearingConstants::V2_SL5.version, "v2-sl5");
    }
}
