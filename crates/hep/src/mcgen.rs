//! The Monte Carlo event generator.
//!
//! Generates HERA-like neutral-current and charged-current DIS events plus
//! photoproduction background. The physics is deliberately simple — a
//! falling Q² spectrum, uniform inelasticity, a toy hadronic final state —
//! but every generated quantity is kinematically consistent, so downstream
//! stages (simulation, reconstruction, analysis) exercise realistic code
//! paths and the validation comparisons have genuine distributions to test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kinematics::{DisKinematics, FourVector};
use crate::rng::{multiplicity, power_law};

/// Physics process of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Process {
    /// Neutral-current DIS (scattered lepton in the detector).
    NeutralCurrent,
    /// Charged-current DIS (neutrino escapes; missing pT).
    ChargedCurrent,
    /// Photoproduction background (no high-Q² lepton).
    Photoproduction,
}

impl Process {
    /// Compact code used in DST records.
    pub fn code(self) -> u8 {
        match self {
            Process::NeutralCurrent => 1,
            Process::ChargedCurrent => 2,
            Process::Photoproduction => 3,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Process::NeutralCurrent),
            2 => Some(Process::ChargedCurrent),
            3 => Some(Process::Photoproduction),
            _ => None,
        }
    }

    /// Name used in histogram labels and reports.
    pub fn label(self) -> &'static str {
        match self {
            Process::NeutralCurrent => "nc-dis",
            Process::ChargedCurrent => "cc-dis",
            Process::Photoproduction => "photoproduction",
        }
    }
}

/// A generated particle.
#[derive(Debug, Clone, PartialEq)]
pub struct Particle {
    /// PDG id (11 = e⁻, −11 = e⁺, 211 = π⁺, 22 = γ, 12 = ν, 2112-ish for
    /// the toy hadron soup).
    pub pdg_id: i32,
    /// Four-momentum.
    pub p4: FourVector,
    /// Electric charge in units of e.
    pub charge: i8,
    /// Status: 1 = final state, 2 = intermediate.
    pub status: u8,
}

impl Particle {
    /// Final-state particle helper.
    pub fn final_state(pdg_id: i32, p4: FourVector, charge: i8) -> Self {
        Particle {
            pdg_id,
            p4,
            charge,
            status: 1,
        }
    }
}

/// A generated event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Sequential event id (unique within a generation run).
    pub id: u64,
    /// Physics process.
    pub process: Process,
    /// Generator-level (true) kinematics.
    pub truth: DisKinematics,
    /// Final-state particles.
    pub particles: Vec<Particle>,
    /// Event weight (1 for unweighted toy generation).
    pub weight: f64,
}

impl Event {
    /// Sum four-vector of all final-state particles.
    pub fn visible_sum(&self) -> FourVector {
        self.particles
            .iter()
            .filter(|p| p.status == 1 && p.pdg_id != 12)
            .map(|p| p.p4)
            .sum()
    }

    /// The scattered lepton, if present in the final state.
    pub fn scattered_lepton(&self) -> Option<&Particle> {
        self.particles
            .iter()
            .filter(|p| p.status == 1 && p.pdg_id.abs() == 11)
            .max_by(|a, b| a.p4.e.total_cmp(&b.p4.e))
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Lepton beam energy (GeV).
    pub e_beam: f64,
    /// Proton beam energy (GeV).
    pub p_beam: f64,
    /// Process to generate.
    pub process: Process,
    /// Minimum generated Q² (GeV²) for DIS processes.
    pub q2_min: f64,
    /// Maximum generated Q² (GeV²).
    pub q2_max: f64,
    /// Mean charged multiplicity of the hadronic final state.
    pub mean_multiplicity: f64,
}

impl GeneratorConfig {
    /// HERA-II neutral-current DIS defaults.
    pub fn hera_nc() -> Self {
        GeneratorConfig {
            e_beam: 27.6,
            p_beam: 920.0,
            process: Process::NeutralCurrent,
            q2_min: 4.0,
            q2_max: 10_000.0,
            mean_multiplicity: 12.0,
        }
    }

    /// HERA-II charged-current DIS defaults.
    pub fn hera_cc() -> Self {
        GeneratorConfig {
            process: Process::ChargedCurrent,
            q2_min: 100.0,
            ..Self::hera_nc()
        }
    }

    /// Photoproduction background defaults.
    pub fn hera_php() -> Self {
        GeneratorConfig {
            process: Process::Photoproduction,
            q2_min: 0.01,
            q2_max: 1.0,
            mean_multiplicity: 8.0,
            ..Self::hera_nc()
        }
    }

    /// Overrides the beam energies (builder style).
    pub fn with_beams(mut self, e_beam: f64, p_beam: f64) -> Self {
        self.e_beam = e_beam;
        self.p_beam = p_beam;
        self
    }
}

/// The seeded event generator; an [`Iterator`] over [`Event`]s.
pub struct EventGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    next_id: u64,
    /// Reusable jet-fragmentation buffer so the steady-state hot path
    /// ([`generate_into`](Self::generate_into)) performs no allocation.
    fractions: Vec<f64>,
}

impl EventGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        EventGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            fractions: Vec::new(),
        }
    }

    /// Generates one event into a fresh allocation.
    fn generate(&mut self) -> Event {
        let mut event = Event {
            id: 0,
            process: self.config.process,
            truth: DisKinematics {
                q2: 0.0,
                x: 0.0,
                y: 0.0,
                w2: 0.0,
            },
            particles: Vec::new(),
            weight: 1.0,
        };
        self.generate_into(&mut event);
        event
    }

    /// Generates the next event **in place**, reusing `out`'s particle
    /// buffer. Draws exactly the same random sequence as the allocating
    /// iterator path, so `generate_into` and `generate` produce
    /// bit-identical event streams from the same seed.
    pub fn generate_into(&mut self, out: &mut Event) {
        let id = self.next_id;
        self.next_id += 1;
        let cfg = &self.config;
        let s = DisKinematics::s(cfg.e_beam, cfg.p_beam);

        // Sample Q² from a falling power law and y uniformly in a fiducial
        // range; derive x. Resample y until x ≤ 1 (kinematic boundary).
        let q2 = power_law(&mut self.rng, 1.8, cfg.q2_min, cfg.q2_max);
        let mut y: f64 = self.rng.gen_range(0.02..0.95);
        let mut x = q2 / (s * y);
        while x > 1.0 {
            y = self.rng.gen_range(0.02..0.95);
            x = q2 / (s * y);
        }
        let w2 = (s * y - q2).max(0.0);
        let truth = DisKinematics { q2, x, y, w2 };

        out.particles.clear();
        let particles = &mut out.particles;

        // Scattered lepton (NC) or neutrino (CC); photoproduction has a
        // quasi-real photon and no high-energy lepton in the detector. The
        // hadronic current jet balances the lepton's transverse momentum.
        let phi_lepton = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let lepton_pt;
        match cfg.process {
            Process::NeutralCurrent => {
                let (e_prime, theta) = scattered_lepton_kinematics(cfg.e_beam, q2, y);
                let p4 = FourVector::from_polar(e_prime, theta, phi_lepton);
                lepton_pt = p4.pt();
                particles.push(Particle::final_state(11, p4, -1));
            }
            Process::ChargedCurrent => {
                let (e_nu, theta) = scattered_lepton_kinematics(cfg.e_beam, q2, y);
                let p4 = FourVector::from_polar(e_nu, theta, phi_lepton);
                lepton_pt = p4.pt();
                particles.push(Particle::final_state(12, p4, 0));
            }
            Process::Photoproduction => {
                // The scattered electron escapes down the beam pipe; the
                // hadronic system carries only soft intrinsic pT.
                lepton_pt = self.rng.gen_range(0.3..2.5);
            }
        }

        // Current jet: back-to-back in azimuth with the lepton, transverse
        // momentum balancing it, energy set by the inelasticity.
        let phi_jet = phi_lepton + std::f64::consts::PI;
        let jet_energy = (y * cfg.p_beam).max(3.0);
        let jet_pt = lepton_pt.min(0.95 * jet_energy);
        let jet_pz = (jet_energy * jet_energy - jet_pt * jet_pt).max(0.0).sqrt();
        let jet = FourVector::new(
            jet_energy,
            jet_pt * phi_jet.cos(),
            jet_pt * phi_jet.sin(),
            jet_pz,
        );

        // Fragment the jet into `n` pions: momentum fractions normalised to
        // one, each fragment smeared around the jet axis so the sum stays
        // close to (but not exactly at) the jet four-vector.
        let n = multiplicity(&mut self.rng, cfg.mean_multiplicity, 60);
        self.fractions.clear();
        self.fractions
            .extend((0..n).map(|_| self.rng.gen_range(0.2..1.2)));
        let total: f64 = self.fractions.iter().sum();
        for f in &mut self.fractions {
            *f /= total;
        }
        let jet_theta = jet.theta();
        for (i, frac) in self.fractions.iter().enumerate() {
            let e = (jet.e * frac).max(0.05);
            let dtheta = self.rng.gen_range(-0.25..0.25);
            let dphi = self.rng.gen_range(-0.35..0.35);
            let pdg = if i % 3 == 0 { 111 } else { 211 };
            let charge = if pdg == 211 {
                if i % 2 == 0 {
                    1
                } else {
                    -1
                }
            } else {
                0
            };
            particles.push(Particle::final_state(
                pdg,
                FourVector::from_polar(e, (jet_theta + dtheta).clamp(0.02, 3.1), phi_jet + dphi),
                charge,
            ));
        }

        out.id = id;
        out.process = cfg.process;
        out.truth = truth;
        out.weight = 1.0;
    }
}

impl Iterator for EventGenerator {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        Some(self.generate())
    }
}

/// Electron-method inversion: given (E_e, Q², y) return (E', θ).
///
/// From Q² = 2 E_e E′ (1 + cos θ) and y = 1 − (E′/2E_e)(1 − cos θ):
/// E′(1+cosθ) = Q²/(2E_e) and E′(1−cosθ) = 2E_e(1−y) ⇒
/// E′ = E_e(1−y) + Q²/(4E_e), cosθ = (Q²/(2 E_e E′)) − 1.
fn scattered_lepton_kinematics(e_beam: f64, q2: f64, y: f64) -> (f64, f64) {
    let e_prime = e_beam * (1.0 - y) + q2 / (4.0 * e_beam);
    let cos_theta = (q2 / (2.0 * e_beam * e_prime) - 1.0).clamp(-1.0, 1.0);
    (e_prime, cos_theta.acos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<Event> = EventGenerator::new(GeneratorConfig::hera_nc(), 5)
            .take(20)
            .collect();
        let b: Vec<Event> = EventGenerator::new(GeneratorConfig::hera_nc(), 5)
            .take(20)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_into_matches_iterator_path() {
        let allocated: Vec<Event> = EventGenerator::new(GeneratorConfig::hera_nc(), 11)
            .take(30)
            .collect();
        let mut generator = EventGenerator::new(GeneratorConfig::hera_nc(), 11);
        let mut scratch = allocated[0].clone(); // arbitrary pre-dirtied buffer
        for expected in &allocated {
            generator.generate_into(&mut scratch);
            assert_eq!(&scratch, expected, "in-place path must be bit-identical");
        }
    }

    #[test]
    fn event_ids_are_sequential() {
        let events: Vec<Event> = EventGenerator::new(GeneratorConfig::hera_nc(), 1)
            .take(5)
            .collect();
        let ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nc_events_have_scattered_electron() {
        for event in EventGenerator::new(GeneratorConfig::hera_nc(), 2).take(50) {
            let lepton = event.scattered_lepton().expect("NC keeps the electron");
            assert_eq!(lepton.pdg_id, 11);
            assert!(lepton.p4.e > 0.0);
        }
    }

    #[test]
    fn cc_events_have_no_visible_lepton() {
        for event in EventGenerator::new(GeneratorConfig::hera_cc(), 2).take(50) {
            assert!(event.scattered_lepton().is_none());
            assert!(event.particles.iter().any(|p| p.pdg_id == 12));
        }
    }

    #[test]
    fn photoproduction_has_no_lepton_at_all() {
        for event in EventGenerator::new(GeneratorConfig::hera_php(), 2).take(50) {
            assert!(event.scattered_lepton().is_none());
            assert!(!event.particles.iter().any(|p| p.pdg_id == 12));
        }
    }

    #[test]
    fn truth_kinematics_within_bounds() {
        let cfg = GeneratorConfig::hera_nc();
        for event in EventGenerator::new(cfg.clone(), 3).take(200) {
            assert!(event.truth.q2 >= cfg.q2_min && event.truth.q2 <= cfg.q2_max);
            assert!(event.truth.x > 0.0 && event.truth.x <= 1.0);
            assert!(event.truth.y > 0.0 && event.truth.y < 1.0);
        }
    }

    #[test]
    fn lepton_kinematics_inversion_consistent() {
        // Round-trip: (Q², y) -> (E', θ) -> electron method -> (Q², y).
        let (e_beam, p_beam) = (27.6, 920.0);
        for (q2, y) in [(10.0, 0.2), (100.0, 0.5), (1000.0, 0.7)] {
            let (e_prime, theta) = scattered_lepton_kinematics(e_beam, q2, y);
            let rec = DisKinematics::electron_method(e_beam, p_beam, e_prime, theta);
            assert!((rec.q2 - q2).abs() / q2 < 1e-9, "Q² {} vs {q2}", rec.q2);
            assert!((rec.y - y).abs() < 1e-9, "y {} vs {y}", rec.y);
        }
    }

    #[test]
    fn process_codes_round_trip() {
        for p in [
            Process::NeutralCurrent,
            Process::ChargedCurrent,
            Process::Photoproduction,
        ] {
            assert_eq!(Process::from_code(p.code()), Some(p));
        }
        assert_eq!(Process::from_code(0), None);
    }

    #[test]
    fn hadrons_are_present_and_energetic() {
        for event in EventGenerator::new(GeneratorConfig::hera_nc(), 4).take(50) {
            let hadrons: Vec<&Particle> = event
                .particles
                .iter()
                .filter(|p| p.pdg_id == 211 || p.pdg_id == 111)
                .collect();
            assert!(!hadrons.is_empty());
            assert!(hadrons.iter().all(|h| h.p4.e > 0.0));
        }
    }
}
