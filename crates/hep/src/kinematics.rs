//! Four-vectors and deep-inelastic-scattering kinematics.
//!
//! HERA collided 27.6 GeV electrons/positrons with 920 GeV protons — the
//! "data taken at a unique centre of mass energy and/or with unique initial
//! state particles" whose preservation motivates the whole programme (§1).

/// An energy–momentum four-vector in GeV (metric +---).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FourVector {
    /// Energy.
    pub e: f64,
    /// x-momentum.
    pub px: f64,
    /// y-momentum.
    pub py: f64,
    /// z-momentum (positive along the proton beam).
    pub pz: f64,
}

impl FourVector {
    /// Constructs from components.
    pub fn new(e: f64, px: f64, py: f64, pz: f64) -> Self {
        FourVector { e, px, py, pz }
    }

    /// A particle at rest with mass `m`.
    pub fn at_rest(m: f64) -> Self {
        FourVector::new(m, 0.0, 0.0, 0.0)
    }

    /// Constructs from energy, polar angle θ, azimuth φ for a massless
    /// particle.
    pub fn from_polar(e: f64, theta: f64, phi: f64) -> Self {
        FourVector {
            e,
            px: e * theta.sin() * phi.cos(),
            py: e * theta.sin() * phi.sin(),
            pz: e * theta.cos(),
        }
    }

    /// Three-momentum magnitude.
    pub fn p(&self) -> f64 {
        (self.px * self.px + self.py * self.py + self.pz * self.pz).sqrt()
    }

    /// Transverse momentum.
    pub fn pt(&self) -> f64 {
        (self.px * self.px + self.py * self.py).sqrt()
    }

    /// Invariant mass squared (may be slightly negative from rounding).
    pub fn m2(&self) -> f64 {
        self.e * self.e - self.p() * self.p()
    }

    /// Invariant mass (clamped at zero).
    pub fn m(&self) -> f64 {
        self.m2().max(0.0).sqrt()
    }

    /// Polar angle θ ∈ [0, π] measured from +z (proton direction).
    pub fn theta(&self) -> f64 {
        let p = self.p();
        if p == 0.0 {
            0.0
        } else {
            (self.pz / p).clamp(-1.0, 1.0).acos()
        }
    }

    /// Azimuthal angle φ ∈ (−π, π].
    pub fn phi(&self) -> f64 {
        self.py.atan2(self.px)
    }

    /// Pseudorapidity η = −ln tan(θ/2).
    pub fn eta(&self) -> f64 {
        let theta = self.theta();
        if theta <= 0.0 {
            f64::INFINITY
        } else if theta >= std::f64::consts::PI {
            f64::NEG_INFINITY
        } else {
            -(theta / 2.0).tan().ln()
        }
    }

    /// `E − p_z`, the quantity conserved at ≈ 2·E_e for fully contained NC
    /// DIS events (the standard HERA containment check).
    pub fn e_minus_pz(&self) -> f64 {
        self.e - self.pz
    }

    /// Component-wise sum.
    pub fn add(&self, other: &FourVector) -> FourVector {
        FourVector {
            e: self.e + other.e,
            px: self.px + other.px,
            py: self.py + other.py,
            pz: self.pz + other.pz,
        }
    }

    /// Scales all components (energy calibration).
    pub fn scale(&self, factor: f64) -> FourVector {
        FourVector {
            e: self.e * factor,
            px: self.px * factor,
            py: self.py * factor,
            pz: self.pz * factor,
        }
    }
}

impl std::ops::Add for FourVector {
    type Output = FourVector;
    fn add(self, rhs: FourVector) -> FourVector {
        FourVector::add(&self, &rhs)
    }
}

impl std::iter::Sum for FourVector {
    fn sum<I: Iterator<Item = FourVector>>(iter: I) -> FourVector {
        iter.fold(FourVector::default(), |acc, v| acc.add(&v))
    }
}

/// The DIS event variables: Q², Bjorken x, inelasticity y, hadronic mass W.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisKinematics {
    /// Negative four-momentum transfer squared (GeV²).
    pub q2: f64,
    /// Bjorken scaling variable.
    pub x: f64,
    /// Inelasticity.
    pub y: f64,
    /// Invariant mass squared of the hadronic final state (GeV²).
    pub w2: f64,
}

impl DisKinematics {
    /// Electron-method reconstruction from the scattered-lepton energy and
    /// polar angle, for beam energies `e_beam` (lepton) and `p_beam`
    /// (proton).
    ///
    /// Q² = 2 E_e E'_e (1 + cos θ), y = 1 − (E'_e / 2E_e)(1 − cos θ),
    /// x = Q² / (s·y), W² = s·y − Q² + m_p² (m_p neglected).
    pub fn electron_method(e_beam: f64, p_beam: f64, e_prime: f64, theta: f64) -> Self {
        let s = 4.0 * e_beam * p_beam;
        let cos_t = theta.cos();
        let q2 = 2.0 * e_beam * e_prime * (1.0 + cos_t);
        let y = 1.0 - (e_prime / (2.0 * e_beam)) * (1.0 - cos_t);
        let x = if y > 0.0 && s > 0.0 {
            (q2 / (s * y)).min(1.0)
        } else {
            1.0
        };
        let w2 = (s * y - q2).max(0.0);
        DisKinematics { q2, x, y, w2 }
    }

    /// Centre-of-mass energy squared for beam energies.
    pub fn s(e_beam: f64, p_beam: f64) -> f64 {
        4.0 * e_beam * p_beam
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn massless_vector_has_zero_mass() {
        let v = FourVector::from_polar(27.6, 2.5, 0.3);
        assert!(v.m().abs() < 1e-9);
        assert!((v.p() - 27.6).abs() < 1e-9);
    }

    #[test]
    fn rest_vector() {
        let v = FourVector::at_rest(0.938);
        assert!((v.m() - 0.938).abs() < 1e-12);
        assert_eq!(v.pt(), 0.0);
    }

    #[test]
    fn angles() {
        let forward = FourVector::from_polar(10.0, 0.0, 0.0);
        assert!(forward.theta().abs() < 1e-12);
        let transverse = FourVector::from_polar(10.0, PI / 2.0, 0.0);
        assert!((transverse.theta() - PI / 2.0).abs() < 1e-12);
        assert!(transverse.eta().abs() < 1e-12);
        assert!((transverse.pt() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn addition_and_sum() {
        let a = FourVector::new(1.0, 0.5, 0.0, 0.5);
        let b = FourVector::new(2.0, -0.5, 0.0, 1.5);
        let c = a + b;
        assert_eq!(c.e, 3.0);
        assert_eq!(c.px, 0.0);
        let s: FourVector = [a, b].into_iter().sum();
        assert_eq!(s.e, 3.0);
    }

    #[test]
    fn hera_cms_energy() {
        let s = DisKinematics::s(27.6, 920.0);
        // √s ≈ 319 GeV at HERA-II.
        assert!((s.sqrt() - 318.7).abs() < 1.0);
    }

    #[test]
    fn electron_method_sane_region() {
        // A typical scattered electron: E' = 25 GeV, θ = 2.7 rad (backward,
        // i.e. close to the lepton beam direction at HERA conventions).
        let k = DisKinematics::electron_method(27.6, 920.0, 25.0, 2.7);
        assert!(k.q2 > 0.0, "Q² positive, got {}", k.q2);
        assert!((0.0..=1.0).contains(&k.y), "y in range, got {}", k.y);
        assert!((0.0..=1.0).contains(&k.x), "x in range, got {}", k.x);
        assert!(k.w2 >= 0.0);
    }

    #[test]
    fn backscatter_limit_is_low_q2() {
        // θ → π means the lepton barely scattered: Q² → 0.
        let k = DisKinematics::electron_method(27.6, 920.0, 27.6, PI - 1e-6);
        assert!(k.q2 < 1e-3);
    }

    #[test]
    fn e_minus_pz_of_beam_electron() {
        // HERA convention: lepton beam travels along −z.
        let beam = FourVector::new(27.6, 0.0, 0.0, -27.6);
        assert!((beam.e_minus_pz() - 55.2).abs() < 1e-9);
    }

    #[test]
    fn scale_changes_energy_linearly() {
        let v = FourVector::from_polar(20.0, 1.0, 0.0).scale(1.02);
        assert!((v.e - 20.4).abs() < 1e-12);
        assert!(v.m().abs() < 1e-6, "scaling preserves masslessness");
    }
}
