//! Special functions for the statistical comparison tests.
//!
//! Self-contained implementations (Lanczos log-gamma, regularized incomplete
//! gamma, Kolmogorov distribution) so the χ² and KS p-values used by the
//! validation comparators need no external numerics dependency. Accuracy is
//! ~1e-10 over the ranges the framework uses, verified against reference
//! values in the tests.

/// ln Γ(x) for x > 0 (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion for P(a, x), convergent for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x) (modified Lentz), convergent for
/// x ≥ a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Upper-tail p-value of a χ² statistic with `ndf` degrees of freedom:
/// P(X ≥ chi2) = Q(ndf/2, chi2/2).
pub fn chi2_p_value(chi2: f64, ndf: u32) -> f64 {
    if ndf == 0 {
        return 1.0;
    }
    gamma_q(ndf as f64 / 2.0, (chi2 / 2.0).max(0.0))
}

/// Kolmogorov distribution complement Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1}
/// exp(−2 j² λ²); the asymptotic KS-test p-value.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[
            (0.5, 0.3),
            (1.0, 1.0),
            (2.5, 4.0),
            (10.0, 8.0),
            (50.0, 55.0),
        ] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x}: p+q={}", p + q);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn chi2_p_value_reference() {
        // χ²=ndf has p ≈ 0.4-0.5; huge χ² has p ≈ 0; zero χ² has p = 1.
        assert!((chi2_p_value(0.0, 10) - 1.0).abs() < 1e-12);
        let p_mid = chi2_p_value(10.0, 10);
        assert!((0.35..0.55).contains(&p_mid), "p(10,10)={p_mid}");
        assert!(chi2_p_value(100.0, 10) < 1e-10);
        // Known value: P(χ² ≥ 3.84 | ndf=1) ≈ 0.05.
        assert!((chi2_p_value(3.841, 1) - 0.05).abs() < 0.001);
        // Known value: P(χ² ≥ 18.31 | ndf=10) ≈ 0.05.
        assert!((chi2_p_value(18.307, 10) - 0.05).abs() < 0.001);
    }

    #[test]
    fn kolmogorov_reference() {
        // Q(λ) is 1 at 0, ~0.27 at 1.0, small at 2.
        assert_eq!(kolmogorov_q(0.0), 1.0);
        let q1 = kolmogorov_q(1.0);
        assert!((q1 - 0.27).abs() < 0.01, "Q(1)={q1}");
        assert!(kolmogorov_q(2.0) < 0.001);
        // Critical value: Q(1.358) ≈ 0.05.
        assert!((kolmogorov_q(1.358) - 0.05).abs() < 0.002);
    }

    #[test]
    fn monotonicity() {
        let mut prev = 1.0;
        for i in 1..40 {
            let q = chi2_p_value(i as f64, 10);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
        let mut prev = 1.0;
        for i in 1..30 {
            let q = kolmogorov_q(i as f64 * 0.1);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
    }

    #[test]
    fn ndf_zero_is_vacuous() {
        assert_eq!(chi2_p_value(5.0, 0), 1.0);
    }
}
