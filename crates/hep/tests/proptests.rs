//! Property-based tests for the HEP substrate.

use proptest::prelude::*;
use sp_hep::{
    hist_io, read_dst, read_micro_dst, write_dst, write_micro_dst, DisKinematics, Event,
    FourVector, Histogram1D, MicroEvent, Particle, Process,
};

fn particle_strategy() -> impl Strategy<Value = Particle> {
    (
        prop_oneof![
            Just(11i32),
            Just(-11),
            Just(211),
            Just(-211),
            Just(111),
            Just(22),
            Just(12)
        ],
        0.01f64..500.0,
        0.0f64..std::f64::consts::PI,
        0.0f64..std::f64::consts::TAU,
        0u8..3,
    )
        .prop_map(|(pdg, e, theta, phi, status)| Particle {
            pdg_id: pdg,
            p4: FourVector::from_polar(e, theta, phi),
            charge: match pdg {
                11 | -211 => -1,
                -11 | 211 => 1,
                _ => 0,
            },
            status,
        })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        prop_oneof![
            Just(Process::NeutralCurrent),
            Just(Process::ChargedCurrent),
            Just(Process::Photoproduction)
        ],
        1.0f64..10_000.0,
        1e-5f64..1.0,
        0.01f64..0.95,
        prop::collection::vec(particle_strategy(), 0..20),
        0.1f64..10.0,
    )
        .prop_map(|(id, process, q2, x, y, particles, weight)| Event {
            id,
            process,
            truth: DisKinematics {
                q2,
                x,
                y,
                w2: (q2 * (1.0 - x) / x).max(0.0),
            },
            particles,
            weight,
        })
}

proptest! {
    /// DST round-trips arbitrary events bit-exactly.
    #[test]
    fn dst_round_trip(events in prop::collection::vec(event_strategy(), 0..12)) {
        let bytes = write_dst(&events);
        let restored = read_dst(&bytes).expect("own output is readable");
        prop_assert_eq!(events, restored);
    }

    /// µDST round-trips arbitrary records bit-exactly.
    #[test]
    fn micro_dst_round_trip(
        records in prop::collection::vec(
            (any::<u64>(), 0.0f64..1e4, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..60.0)
                .prop_map(|(id, q2, x, y, e)| MicroEvent {
                    id,
                    process: Process::NeutralCurrent,
                    q2,
                    x,
                    y,
                    e_prime: e,
                }),
            0..32,
        )
    ) {
        let bytes = write_micro_dst(&records);
        prop_assert_eq!(read_micro_dst(&bytes).unwrap(), records);
    }

    /// Any single-byte corruption of a DST stream is rejected.
    #[test]
    fn dst_bit_flip_rejected(
        events in prop::collection::vec(event_strategy(), 1..5),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = write_dst(&events).to_vec();
        let idx = ((frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= 1 << bit;
        prop_assert!(read_dst(&corrupted).is_err());
    }

    /// Histogram bookkeeping: integral + under/overflow equals the total
    /// filled weight, and entries counts fill calls.
    #[test]
    fn histogram_weight_conservation(
        values in prop::collection::vec((-20.0f64..30.0, 0.1f64..5.0), 0..200)
    ) {
        let mut hist = Histogram1D::new("h", 25, 0.0, 10.0);
        let mut total_weight = 0.0;
        for (x, w) in &values {
            hist.fill_weighted(*x, *w);
            total_weight += w;
        }
        let accounted = hist.integral() + hist.underflow() + hist.overflow();
        prop_assert!((accounted - total_weight).abs() < 1e-9);
        prop_assert_eq!(hist.entries(), values.len() as u64);
    }

    /// The histogram mean lies within the filled range of in-range values.
    #[test]
    fn histogram_mean_in_range(values in prop::collection::vec(0.5f64..9.5, 1..100)) {
        let mut hist = Histogram1D::new("h", 20, 0.0, 10.0);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for &x in &values {
            hist.fill(x);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        prop_assert!(hist.mean() >= lo - 1e-9 && hist.mean() <= hi + 1e-9);
        prop_assert!(hist.std_dev() >= 0.0);
    }

    /// χ² self-comparison is exactly zero; comparison is symmetric.
    #[test]
    fn chi2_self_zero_and_symmetric(
        a_values in prop::collection::vec(0.0f64..10.0, 1..150),
        b_values in prop::collection::vec(0.0f64..10.0, 1..150),
    ) {
        let mut a = Histogram1D::new("a", 20, 0.0, 10.0);
        for &x in &a_values {
            a.fill(x);
        }
        let mut b = Histogram1D::new("b", 20, 0.0, 10.0);
        for &x in &b_values {
            b.fill(x);
        }
        let self_test = a.chi2_test(&a).unwrap();
        prop_assert_eq!(self_test.chi2, 0.0);
        prop_assert_eq!(self_test.p_value, 1.0);

        let ab = a.chi2_test(&b).unwrap();
        let ba = b.chi2_test(&a).unwrap();
        prop_assert!((ab.chi2 - ba.chi2).abs() < 1e-9);
        prop_assert_eq!(ab.ndf, ba.ndf);
    }

    /// KS statistic is a distance: zero iff shapes match, bounded by 1.
    #[test]
    fn ks_statistic_bounded(
        values in prop::collection::vec(0.0f64..10.0, 1..150),
        scale in 1.0f64..5.0,
    ) {
        let mut a = Histogram1D::new("a", 20, 0.0, 10.0);
        for &x in &values {
            a.fill(x);
        }
        // A scaled copy has the identical shape: D = 0.
        let mut b = a.clone();
        b.scale(scale);
        let ks = a.ks_test(&b).unwrap();
        prop_assert!(ks.statistic.abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ks.p_value));
    }

    /// Histogram sets survive serialisation with statistics intact.
    #[test]
    fn hist_io_round_trip(values in prop::collection::vec(-5.0f64..15.0, 0..300)) {
        let mut hist = Histogram1D::new("q2", 30, 0.0, 10.0);
        for &x in &values {
            hist.fill(x);
        }
        let set: sp_hep::HistogramSet = [hist].into_iter().collect();
        let decoded = hist_io::decode_set(&hist_io::encode_set(&set)).unwrap();
        prop_assert_eq!(set, decoded);
    }

    /// Four-vector algebra: mass is invariant under azimuthal rotation and
    /// additivity of E and pz holds.
    #[test]
    fn four_vector_algebra(
        e in 0.1f64..100.0,
        theta in 0.0f64..std::f64::consts::PI,
        phi1 in 0.0f64..std::f64::consts::TAU,
        phi2 in 0.0f64..std::f64::consts::TAU,
    ) {
        let a = FourVector::from_polar(e, theta, phi1);
        let b = FourVector::from_polar(e, theta, phi2);
        prop_assert!((a.m2() - b.m2()).abs() < 1e-6, "mass invariant under rotation");
        let sum = a + b;
        prop_assert!((sum.e - 2.0 * e).abs() < 1e-9);
        prop_assert!((sum.pz - (a.pz + b.pz)).abs() < 1e-9);
    }

    /// Electron-method kinematics stay in the physical region for any
    /// scattered-electron measurement.
    #[test]
    fn electron_method_physical(
        e_prime in 0.5f64..60.0,
        theta in 0.01f64..3.13,
    ) {
        let k = DisKinematics::electron_method(27.6, 920.0, e_prime, theta);
        prop_assert!(k.q2 >= 0.0);
        prop_assert!((0.0..=1.0).contains(&k.x));
        prop_assert!(k.w2 >= 0.0);
    }
}
