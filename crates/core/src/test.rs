//! The validation-test taxonomy.
//!
//! Figure 2 of the paper structures the H1 tests into package compilations
//! (binaries conserved as tar-balls) and validation tests, the latter
//! spanning quick per-package checks, standalone executables run in
//! parallel, and sequential multi-stage analysis chains ending in a
//! validation of the results.

use std::collections::BTreeMap;

use sp_build::PackageId;
use sp_exec::ChainDef;

/// Unique test identifier within an experiment suite.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TestId(pub String);

impl TestId {
    /// Creates an id.
    pub fn new(id: impl Into<String>) -> Self {
        TestId(id.into())
    }

    /// The id text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TestId {
    fn from(s: &str) -> Self {
        TestId::new(s)
    }
}

impl From<String> for TestId {
    fn from(s: String) -> Self {
        TestId(s)
    }
}

/// Coarse test category — the rows of the Figure-2 outline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TestCategory {
    /// Compilation of one package (artifact stored as a tar-ball).
    Compilation,
    /// A quick per-package correctness check (runs in parallel).
    UnitCheck,
    /// A standalone executable with a real workload (runs in parallel).
    StandaloneExecutable,
    /// A sequential multi-stage analysis chain.
    AnalysisChain,
    /// Comparison of produced data against the reference run.
    DataValidation,
}

impl TestCategory {
    /// All categories in Figure-2 order.
    pub fn all() -> [TestCategory; 5] {
        [
            TestCategory::Compilation,
            TestCategory::UnitCheck,
            TestCategory::StandaloneExecutable,
            TestCategory::AnalysisChain,
            TestCategory::DataValidation,
        ]
    }

    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            TestCategory::Compilation => "package compilation",
            TestCategory::UnitCheck => "unit check",
            TestCategory::StandaloneExecutable => "standalone executable",
            TestCategory::AnalysisChain => "analysis chain",
            TestCategory::DataValidation => "data validation",
        }
    }

    /// Whether tests of this category may run in parallel with each other
    /// (§3.2: standalone tests run in parallel; chains run sequentially).
    pub fn parallelisable(self) -> bool {
        !matches!(self, TestCategory::AnalysisChain)
    }
}

/// What a test does when executed.
#[derive(Debug, Clone, PartialEq)]
pub enum TestKind {
    /// Compile one package.
    Compile {
        /// The package to compile.
        package: PackageId,
    },
    /// Run a quick deterministic check of one package's numerics.
    UnitCheck {
        /// The package under test.
        package: PackageId,
        /// Which of the package's checks this is (a package may have
        /// several).
        check_index: u32,
    },
    /// Run a standalone executable over a seeded mini-workload.
    Standalone {
        /// The executable's package.
        package: PackageId,
        /// Number of events to process.
        events: usize,
    },
    /// Run a full analysis chain; each stage is implemented by a package.
    Chain {
        /// The chain structure.
        chain: ChainDef,
        /// Stage name → implementing package.
        stage_packages: BTreeMap<String, PackageId>,
        /// Number of events to generate at the head of the chain.
        events: usize,
    },
}

impl TestKind {
    /// The category this kind belongs to.
    pub fn category(&self) -> TestCategory {
        match self {
            TestKind::Compile { .. } => TestCategory::Compilation,
            TestKind::UnitCheck { .. } => TestCategory::UnitCheck,
            TestKind::Standalone { .. } => TestCategory::StandaloneExecutable,
            TestKind::Chain { .. } => TestCategory::AnalysisChain,
        }
    }

    /// Packages this test exercises directly.
    pub fn packages(&self) -> Vec<&PackageId> {
        match self {
            TestKind::Compile { package }
            | TestKind::UnitCheck { package, .. }
            | TestKind::Standalone { package, .. } => vec![package],
            TestKind::Chain { stage_packages, .. } => stage_packages.values().collect(),
        }
    }
}

/// How a test failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The package did not compile.
    CompileError,
    /// A dependency failed, so the test could not run.
    DependencyFailed(String),
    /// The executable crashed.
    Crash(String),
    /// Non-zero exit code.
    BadExit(i32),
    /// Output comparison against the reference failed.
    ComparisonFailed(String),
    /// A chain stage failed.
    ChainStageFailed(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::CompileError => write!(f, "compile error"),
            FailureKind::DependencyFailed(d) => write!(f, "dependency failed: {d}"),
            FailureKind::Crash(m) => write!(f, "crash: {m}"),
            FailureKind::BadExit(c) => write!(f, "exit code {c}"),
            FailureKind::ComparisonFailed(m) => write!(f, "comparison failed: {m}"),
            FailureKind::ChainStageFailed(s) => write!(f, "chain stage '{s}' failed"),
        }
    }
}

/// One validation test as defined by an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationTest {
    /// Unique id within the experiment (`h1/compile/h1rec`).
    pub id: TestId,
    /// Owning experiment.
    pub experiment: String,
    /// What the test does.
    pub kind: TestKind,
    /// Process group for the Figure-3 matrix rows (`MC chain`,
    /// `DST production`, …).
    pub group: String,
}

impl ValidationTest {
    /// Creates a test.
    pub fn new(
        id: impl Into<TestId>,
        experiment: impl Into<String>,
        group: impl Into<String>,
        kind: TestKind,
    ) -> Self {
        ValidationTest {
            id: id.into(),
            experiment: experiment.into(),
            kind,
            group: group.into(),
        }
    }

    /// The test's category.
    pub fn category(&self) -> TestCategory {
        self.kind.category()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_exec::StageDef;

    #[test]
    fn categories_match_kinds() {
        let compile = TestKind::Compile {
            package: PackageId::new("h1rec"),
        };
        assert_eq!(compile.category(), TestCategory::Compilation);
        let chain = TestKind::Chain {
            chain: ChainDef::new("c", vec![StageDef::new("gen", &[])]).unwrap(),
            stage_packages: BTreeMap::new(),
            events: 100,
        };
        assert_eq!(chain.category(), TestCategory::AnalysisChain);
    }

    #[test]
    fn chains_are_sequential_others_parallel() {
        assert!(!TestCategory::AnalysisChain.parallelisable());
        assert!(TestCategory::Compilation.parallelisable());
        assert!(TestCategory::StandaloneExecutable.parallelisable());
    }

    #[test]
    fn packages_extracted() {
        let mut stage_packages = BTreeMap::new();
        stage_packages.insert("gen".to_string(), PackageId::new("django"));
        stage_packages.insert("sim".to_string(), PackageId::new("h1sim"));
        let chain = TestKind::Chain {
            chain: ChainDef::new(
                "c",
                vec![StageDef::new("gen", &[]), StageDef::new("sim", &["gen"])],
            )
            .unwrap(),
            stage_packages,
            events: 100,
        };
        let pkgs = chain.packages();
        assert_eq!(pkgs.len(), 2);
    }

    #[test]
    fn failure_kinds_display() {
        assert_eq!(FailureKind::CompileError.to_string(), "compile error");
        assert_eq!(FailureKind::BadExit(139).to_string(), "exit code 139");
        assert_eq!(
            FailureKind::ChainStageFailed("sim".into()).to_string(),
            "chain stage 'sim' failed"
        );
    }

    #[test]
    fn test_construction() {
        let t = ValidationTest::new(
            "h1/compile/h1rec",
            "h1",
            "compilation",
            TestKind::Compile {
                package: PackageId::new("h1rec"),
            },
        );
        assert_eq!(t.id.as_str(), "h1/compile/h1rec");
        assert_eq!(t.category(), TestCategory::Compilation);
    }
}
