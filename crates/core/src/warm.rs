//! Codecs for the warm-state snapshot (`SPWS`) sections.
//!
//! [`crate::SpSystem`] keeps three run memos (chain productions, output
//! content addresses, build reports) plus the storage digest cache. This
//! module serialises their *values* into the length-prefixed wire format
//! of [`sp_store::snapshot`]; the snapshot container contributes the
//! versioned header and the per-entry digests that make a restart never
//! trust a corrupted entry.
//!
//! Decoders are total: any structural mismatch yields `None` and the
//! importer drops the entry (counted as rejected) instead of guessing.
//!
//! ## Value versioning
//!
//! Every section *value* starts with the two-byte header
//! `[VALUE_TAG, VALUE_VERSION]`. Version 2 re-keyed the in-memory memos on
//! fast hashes; the on-disk values still carry full keys and SHA-256
//! addresses, but the header lets a build drop (never misread) entries
//! written by a different codec generation. The tag byte `0xF7` cannot
//! begin any realistic v1 value — v1 values started with a raw digest
//! byte, a stage/test count (≥ 247 stages would be required) or a string
//! length — and the decoders additionally fail on the length mismatch the
//! two extra bytes induce, so v1 entries are rejected deterministically.
//! The snapshot *container* version is unchanged (its layout is
//! identical); this header versions only what the values mean.

use std::collections::BTreeMap;
use std::sync::Arc;

use sp_build::{BuildReport, BuildStatus, PackageId};
use sp_store::snapshot::wire::{self, Cursor};
use sp_store::ObjectId;

use crate::run::TestStatus;
use crate::system::{MemoizedChain, MemoizedStage};
use crate::test::{FailureKind, TestCategory, TestId};

/// Section holding system counters (run-id cursor, clock).
pub(crate) const SECTION_SYSTEM: &str = "system";
/// Section holding digest-cache entries (`revision → ObjectId`).
pub(crate) const SECTION_DIGEST_CACHE: &str = "digest-cache";
/// Section holding output-memo entries (`RunKey → ObjectId`).
pub(crate) const SECTION_OUTPUT_MEMO: &str = "output-memo";
/// Section holding chain-memo entries (`RunKey → MemoizedChain`).
pub(crate) const SECTION_CHAIN_MEMO: &str = "chain-memo";
/// Section holding build-memo entries (`RunKey → BuildReport`).
pub(crate) const SECTION_BUILD_MEMO: &str = "build-memo";
/// Section holding the run ledger's reference map (`experiment → per-test
/// reference outputs`), so the first post-restore run of each experiment
/// has something to compare against instead of bootstrapping.
pub(crate) const SECTION_LEDGER_REFS: &str = "ledger-references";

/// First byte of every versioned section value.
pub(crate) const VALUE_TAG: u8 = 0xF7;
/// Current value codec version.
pub(crate) const VALUE_VERSION: u8 = 2;

fn put_value_header(out: &mut Vec<u8>) {
    out.push(VALUE_TAG);
    out.push(VALUE_VERSION);
}

fn take_value_header(cursor: &mut Cursor<'_>) -> Option<()> {
    (cursor.take(2)? == [VALUE_TAG, VALUE_VERSION]).then_some(())
}

// ---- plain u64 values (system counters) ------------------------------

pub(crate) fn encode_u64_value(v: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    put_value_header(&mut out);
    wire::put_u64(&mut out, v);
    out
}

pub(crate) fn decode_u64_value(bytes: &[u8]) -> Option<u64> {
    let mut cursor = Cursor::new(bytes);
    take_value_header(&mut cursor)?;
    let v = cursor.take_u64()?;
    cursor.finished().then_some(v)
}

// ---- object ids ------------------------------------------------------

pub(crate) fn encode_object_id(id: ObjectId) -> Vec<u8> {
    let mut out = Vec::with_capacity(34);
    put_value_header(&mut out);
    out.extend_from_slice(&id.0);
    out
}

pub(crate) fn decode_object_id(bytes: &[u8]) -> Option<ObjectId> {
    let mut cursor = Cursor::new(bytes);
    take_value_header(&mut cursor)?;
    let id = take_object_id(&mut cursor)?;
    cursor.finished().then_some(id)
}

fn put_object_id(out: &mut Vec<u8>, id: ObjectId) {
    out.extend_from_slice(&id.0);
}

fn take_object_id(cursor: &mut Cursor<'_>) -> Option<ObjectId> {
    cursor
        .take(32)
        .and_then(|raw| raw.try_into().ok().map(ObjectId))
}

// ---- test statuses ---------------------------------------------------

fn put_status(out: &mut Vec<u8>, status: &TestStatus) {
    match status {
        TestStatus::Passed => out.push(0),
        TestStatus::PassedWithWarnings(n) => {
            out.push(1);
            wire::put_u64(out, *n as u64);
        }
        TestStatus::Failed(kind) => {
            out.push(2);
            put_failure(out, kind);
        }
        TestStatus::Skipped(reason) => {
            out.push(3);
            wire::put_str(out, reason);
        }
    }
}

fn take_status(cursor: &mut Cursor<'_>) -> Option<TestStatus> {
    Some(match cursor.take(1)?[0] {
        0 => TestStatus::Passed,
        1 => TestStatus::PassedWithWarnings(cursor.take_u64()? as usize),
        2 => TestStatus::Failed(take_failure(cursor)?),
        3 => TestStatus::Skipped(cursor.take_str()?),
        _ => return None,
    })
}

fn put_failure(out: &mut Vec<u8>, kind: &FailureKind) {
    match kind {
        FailureKind::CompileError => out.push(0),
        FailureKind::DependencyFailed(s) => {
            out.push(1);
            wire::put_str(out, s);
        }
        FailureKind::Crash(s) => {
            out.push(2);
            wire::put_str(out, s);
        }
        FailureKind::BadExit(code) => {
            out.push(3);
            wire::put_u64(out, *code as i64 as u64);
        }
        FailureKind::ComparisonFailed(s) => {
            out.push(4);
            wire::put_str(out, s);
        }
        FailureKind::ChainStageFailed(s) => {
            out.push(5);
            wire::put_str(out, s);
        }
    }
}

fn take_failure(cursor: &mut Cursor<'_>) -> Option<FailureKind> {
    Some(match cursor.take(1)?[0] {
        0 => FailureKind::CompileError,
        1 => FailureKind::DependencyFailed(cursor.take_str()?),
        2 => FailureKind::Crash(cursor.take_str()?),
        3 => FailureKind::BadExit(cursor.take_u64()? as i64 as i32),
        4 => FailureKind::ComparisonFailed(cursor.take_str()?),
        5 => FailureKind::ChainStageFailed(cursor.take_str()?),
        _ => return None,
    })
}

fn put_category(out: &mut Vec<u8>, category: TestCategory) {
    out.push(match category {
        TestCategory::Compilation => 0,
        TestCategory::UnitCheck => 1,
        TestCategory::StandaloneExecutable => 2,
        TestCategory::AnalysisChain => 3,
        TestCategory::DataValidation => 4,
    });
}

fn take_category(cursor: &mut Cursor<'_>) -> Option<TestCategory> {
    Some(match cursor.take(1)?[0] {
        0 => TestCategory::Compilation,
        1 => TestCategory::UnitCheck,
        2 => TestCategory::StandaloneExecutable,
        3 => TestCategory::AnalysisChain,
        4 => TestCategory::DataValidation,
        _ => return None,
    })
}

// ---- chain memo ------------------------------------------------------

pub(crate) fn encode_chain(chain: &MemoizedChain) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + chain.stages.len() * 96);
    put_value_header(&mut out);
    wire::put_u32(&mut out, chain.stages.len() as u32);
    for stage in &chain.stages {
        wire::put_str(&mut out, &stage.stage);
        wire::put_str(&mut out, stage.test.as_str());
        put_category(&mut out, stage.category);
        put_status(&mut out, &stage.status);
        wire::put_u32(&mut out, stage.outputs.len() as u32);
        for (name, oid) in &stage.outputs {
            wire::put_str(&mut out, name);
            put_object_id(&mut out, *oid);
        }
    }
    out
}

pub(crate) fn decode_chain(bytes: &[u8]) -> Option<MemoizedChain> {
    let mut cursor = Cursor::new(bytes);
    take_value_header(&mut cursor)?;
    let stage_count = cursor.take_u32()?;
    let mut stages = Vec::with_capacity(stage_count as usize);
    for _ in 0..stage_count {
        let stage = cursor.take_str()?;
        let test = TestId::new(cursor.take_str()?);
        let category = take_category(&mut cursor)?;
        let status = take_status(&mut cursor)?;
        let output_count = cursor.take_u32()?;
        let mut outputs = Vec::with_capacity(output_count as usize);
        for _ in 0..output_count {
            let name = cursor.take_str()?;
            let oid = take_object_id(&mut cursor)?;
            outputs.push((name, oid));
        }
        stages.push(MemoizedStage {
            stage,
            test,
            category,
            status,
            outputs,
        });
    }
    cursor.finished().then_some(MemoizedChain { stages })
}

// ---- ledger references -----------------------------------------------

/// Serialises one experiment's reference map: `test id → named outputs`.
pub(crate) fn encode_reference_tests(
    tests: &BTreeMap<String, crate::ledger::TestOutputs>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + tests.len() * 96);
    put_value_header(&mut out);
    wire::put_u32(&mut out, tests.len() as u32);
    for (test, outputs) in tests {
        wire::put_str(&mut out, test);
        wire::put_u32(&mut out, outputs.len() as u32);
        for (name, oid) in outputs {
            wire::put_str(&mut out, name);
            put_object_id(&mut out, *oid);
        }
    }
    out
}

/// Parses one experiment's reference map serialised by
/// [`encode_reference_tests`]. `None` on any structural mismatch.
pub(crate) fn decode_reference_tests(
    bytes: &[u8],
) -> Option<BTreeMap<String, crate::ledger::TestOutputs>> {
    let mut cursor = Cursor::new(bytes);
    take_value_header(&mut cursor)?;
    let test_count = cursor.take_u32()?;
    let mut tests = BTreeMap::new();
    for _ in 0..test_count {
        let test = cursor.take_str()?;
        let output_count = cursor.take_u32()?;
        let mut outputs = Vec::with_capacity(output_count as usize);
        for _ in 0..output_count {
            let name = cursor.take_str()?;
            let oid = take_object_id(&mut cursor)?;
            outputs.push((name, oid));
        }
        tests.insert(test, outputs);
    }
    cursor.finished().then_some(tests)
}

// ---- build memo ------------------------------------------------------

fn put_build_status(out: &mut Vec<u8>, status: &BuildStatus) {
    match status {
        BuildStatus::Built => out.push(0),
        BuildStatus::BuiltWithWarnings(n) => {
            out.push(1);
            wire::put_u64(out, *n as u64);
        }
        BuildStatus::Failed => out.push(2),
        BuildStatus::SkippedDepFailed(dep) => {
            out.push(3);
            wire::put_str(out, dep.as_str());
        }
    }
}

fn take_build_status(cursor: &mut Cursor<'_>) -> Option<BuildStatus> {
    Some(match cursor.take(1)?[0] {
        0 => BuildStatus::Built,
        1 => BuildStatus::BuiltWithWarnings(cursor.take_u64()? as usize),
        2 => BuildStatus::Failed,
        3 => BuildStatus::SkippedDepFailed(PackageId::new(cursor.take_str()?)),
        _ => return None,
    })
}

pub(crate) fn encode_build_report(report: &BuildReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + report.records.len() * 128);
    put_value_header(&mut out);
    wire::put_str(&mut out, &report.env_label);
    wire::put_u32(&mut out, report.order.len() as u32);
    for package in &report.order {
        wire::put_str(&mut out, package.as_str());
    }
    wire::put_u32(&mut out, report.records.len() as u32);
    for (package, record) in &report.records {
        wire::put_str(&mut out, package.as_str());
        put_build_status(&mut out, &record.status);
        wire::put_str(&mut out, &record.log);
        match record.artifact {
            Some(oid) => {
                out.push(1);
                put_object_id(&mut out, oid);
            }
            None => out.push(0),
        }
    }
    out
}

pub(crate) fn decode_build_report(bytes: &[u8]) -> Option<Arc<BuildReport>> {
    let mut cursor = Cursor::new(bytes);
    take_value_header(&mut cursor)?;
    let env_label = cursor.take_str()?;
    let order_count = cursor.take_u32()?;
    let mut order = Vec::with_capacity(order_count as usize);
    for _ in 0..order_count {
        order.push(PackageId::new(cursor.take_str()?));
    }
    let record_count = cursor.take_u32()?;
    let mut records = BTreeMap::new();
    for _ in 0..record_count {
        let package = PackageId::new(cursor.take_str()?);
        let status = take_build_status(&mut cursor)?;
        let log = cursor.take_str()?;
        let artifact = match cursor.take(1)?[0] {
            0 => None,
            1 => Some(take_object_id(&mut cursor)?),
            _ => return None,
        };
        records.insert(
            package.clone(),
            sp_build::BuildRecord {
                package,
                status,
                log,
                artifact,
            },
        );
    }
    cursor.finished().then(|| {
        Arc::new(BuildReport {
            env_label,
            order,
            records,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_header_guards_every_codec() {
        // Every encoder leads with the versioned header...
        let id = ObjectId::for_bytes(b"artifact");
        let chain = MemoizedChain { stages: vec![] };
        let refs: BTreeMap<String, crate::ledger::TestOutputs> = BTreeMap::new();
        let report = BuildReport {
            env_label: "SL6".into(),
            order: vec![],
            records: BTreeMap::new(),
        };
        for bytes in [
            encode_u64_value(42),
            encode_object_id(id),
            encode_chain(&chain),
            encode_reference_tests(&refs),
            encode_build_report(&report),
        ] {
            assert_eq!(&bytes[..2], &[VALUE_TAG, VALUE_VERSION]);
        }
        // ...and every decoder rejects v1-shaped values (no header): a raw
        // 32-byte digest, a raw little-endian counter, raw count-prefixed
        // aggregates. Rejection, not misreads.
        assert_eq!(decode_object_id(&id.0), None);
        assert_eq!(decode_u64_value(&42u64.to_le_bytes()), None);
        let mut v1_chain = Vec::new();
        wire::put_u32(&mut v1_chain, 0);
        assert!(decode_chain(&v1_chain).is_none());
        assert!(decode_reference_tests(&v1_chain).is_none());
        let mut v1_report = Vec::new();
        wire::put_str(&mut v1_report, "SL6");
        wire::put_u32(&mut v1_report, 0);
        wire::put_u32(&mut v1_report, 0);
        assert!(decode_build_report(&v1_report).is_none());
        // A future version bump is likewise dropped, not guessed at.
        let mut future = encode_object_id(id);
        future[1] = VALUE_VERSION + 1;
        assert_eq!(decode_object_id(&future), None);
    }

    #[test]
    fn u64_value_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(decode_u64_value(&encode_u64_value(v)), Some(v));
        }
        let bytes = encode_u64_value(7);
        assert_eq!(decode_u64_value(&bytes[..bytes.len() - 1]), None);
        assert_eq!(decode_u64_value(b""), None);
    }

    #[test]
    fn chain_round_trip() {
        let chain = MemoizedChain {
            stages: vec![
                MemoizedStage {
                    stage: "mcgen".into(),
                    test: TestId::new("h1/chain/nc/mcgen"),
                    category: TestCategory::AnalysisChain,
                    status: TestStatus::Passed,
                    outputs: vec![("gen.dst".into(), ObjectId::for_bytes(b"dst"))],
                },
                MemoizedStage {
                    stage: "validation".into(),
                    test: TestId::new("h1/chain/nc/validation"),
                    category: TestCategory::DataValidation,
                    status: TestStatus::Failed(FailureKind::ComparisonFailed("chi2".into())),
                    outputs: vec![],
                },
            ],
        };
        let bytes = encode_chain(&chain);
        let decoded = decode_chain(&bytes).expect("round trip");
        assert_eq!(decoded.stages.len(), 2);
        assert_eq!(decoded.stages[0].stage, "mcgen");
        assert_eq!(decoded.stages[0].outputs, chain.stages[0].outputs);
        assert_eq!(decoded.stages[1].status, chain.stages[1].status);
        assert!(
            decode_chain(&bytes[..bytes.len() - 1]).is_none(),
            "truncation rejected"
        );
        assert!(decode_chain(b"").is_none());
    }

    #[test]
    fn statuses_round_trip() {
        let statuses = [
            TestStatus::Passed,
            TestStatus::PassedWithWarnings(7),
            TestStatus::Failed(FailureKind::CompileError),
            TestStatus::Failed(FailureKind::DependencyFailed("lib".into())),
            TestStatus::Failed(FailureKind::Crash("segv".into())),
            TestStatus::Failed(FailureKind::BadExit(-3)),
            TestStatus::Failed(FailureKind::ChainStageFailed("sim".into())),
            TestStatus::Skipped("no artifact".into()),
        ];
        for status in &statuses {
            let mut bytes = Vec::new();
            put_status(&mut bytes, status);
            let mut cursor = Cursor::new(&bytes);
            assert_eq!(take_status(&mut cursor).as_ref(), Some(status));
            assert!(cursor.finished());
        }
    }

    #[test]
    fn reference_map_round_trip() {
        let mut tests: BTreeMap<String, crate::ledger::TestOutputs> = BTreeMap::new();
        tests.insert(
            "h1/unit/util-0".into(),
            vec![("result".into(), ObjectId::for_bytes(b"r0"))],
        );
        tests.insert(
            "h1/chain/nc/analysis".into(),
            vec![
                ("histograms".into(), ObjectId::for_bytes(b"h")),
                ("events.dst".into(), ObjectId::for_bytes(b"d")),
            ],
        );
        let bytes = encode_reference_tests(&tests);
        assert_eq!(decode_reference_tests(&bytes), Some(tests));
        assert!(decode_reference_tests(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_reference_tests(b"junk").is_none());
    }

    #[test]
    fn build_report_round_trip() {
        let mut records = BTreeMap::new();
        records.insert(
            PackageId::new("lib"),
            sp_build::BuildRecord {
                package: PackageId::new("lib"),
                status: BuildStatus::BuiltWithWarnings(2),
                log: "warning: ...".into(),
                artifact: Some(ObjectId::for_bytes(b"tarball")),
            },
        );
        records.insert(
            PackageId::new("ana"),
            sp_build::BuildRecord {
                package: PackageId::new("ana"),
                status: BuildStatus::SkippedDepFailed(PackageId::new("lib")),
                log: String::new(),
                artifact: None,
            },
        );
        let report = BuildReport {
            env_label: "SL6/64bit gcc4.4".into(),
            order: vec![PackageId::new("lib"), PackageId::new("ana")],
            records,
        };
        let bytes = encode_build_report(&report);
        let decoded = decode_build_report(&bytes).expect("round trip");
        assert_eq!(*decoded, report);
        assert!(decode_build_report(&bytes[..10]).is_none());
    }
}
