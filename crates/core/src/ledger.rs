//! Run bookkeeping over the common storage.
//!
//! The ledger records every validation run, resolves the *reference* run a
//! new run must be compared against ("any differences compared to the last
//! successful test are examined", §3.1 iii), and serves the queries the
//! script-based web pages of §3.3 need ("record and display available
//! validation runs for a given description").

use std::collections::BTreeMap;

use parking_lot::RwLock;
use sp_store::ObjectId;

use crate::run::{RunId, ValidationRun};

/// Named output objects of one test (name → content address pairs).
type TestOutputs = Vec<(String, ObjectId)>;

/// In-memory run ledger with per-test reference-output tracking.
#[derive(Default)]
pub struct RunLedger {
    runs: RwLock<Vec<ValidationRun>>,
    /// experiment → (test id string → reference outputs) from the last
    /// successful run of that experiment.
    references: RwLock<BTreeMap<String, BTreeMap<String, TestOutputs>>>,
}

impl RunLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RunLedger::default()
    }

    /// Records a completed run. If the run validated successfully, its
    /// outputs become the new reference for the experiment.
    pub fn record(&self, run: ValidationRun) {
        if run.is_successful() {
            let mut refs = self.references.write();
            let entry = refs.entry(run.experiment.clone()).or_default();
            for result in &run.results {
                entry.insert(result.test.as_str().to_string(), result.outputs.clone());
            }
        }
        self.runs.write().push(run);
    }

    /// Reference outputs for one test of an experiment, if any successful
    /// run has produced them.
    pub fn reference_outputs(&self, experiment: &str, test_id: &str) -> Option<TestOutputs> {
        self.references
            .read()
            .get(experiment)
            .and_then(|tests| tests.get(test_id))
            .cloned()
    }

    /// Whether an experiment has any reference at all (false before its
    /// first successful run).
    pub fn has_reference(&self, experiment: &str) -> bool {
        self.references
            .read()
            .get(experiment)
            .map(|t| !t.is_empty())
            .unwrap_or(false)
    }

    /// Total number of recorded runs.
    pub fn run_count(&self) -> usize {
        self.runs.read().len()
    }

    /// All runs (cloned) in recording order.
    pub fn runs(&self) -> Vec<ValidationRun> {
        self.runs.read().clone()
    }

    /// Runs whose description contains `needle` (the "available validation
    /// runs for a given description" query of §3.3).
    pub fn runs_matching(&self, needle: &str) -> Vec<ValidationRun> {
        self.runs
            .read()
            .iter()
            .filter(|r| r.description.contains(needle))
            .cloned()
            .collect()
    }

    /// The most recent run of an experiment on a given image label.
    pub fn latest(&self, experiment: &str, image_label: &str) -> Option<ValidationRun> {
        self.runs
            .read()
            .iter()
            .rev()
            .find(|r| r.experiment == experiment && r.image_label == image_label)
            .cloned()
    }

    /// The most recent *successful* run of an experiment (any image).
    pub fn latest_successful(&self, experiment: &str) -> Option<ValidationRun> {
        self.runs
            .read()
            .iter()
            .rev()
            .find(|r| r.experiment == experiment && r.is_successful())
            .cloned()
    }

    /// Looks up a run by id.
    pub fn get(&self, id: RunId) -> Option<ValidationRun> {
        self.runs.read().iter().find(|r| r.id == id).cloned()
    }

    /// Applies a retention policy (§3.3 keeps everything; a pruning host
    /// IT department would not): drops expired runs from the ledger and
    /// removes their now-unreferenced output objects from `storage`.
    /// Reference outputs and outputs shared with kept runs always survive.
    pub fn prune(
        &self,
        policy: &sp_store::RetentionPolicy,
        now: u64,
        storage: &sp_store::ContentStore,
    ) -> PruneReport {
        use std::collections::BTreeSet;

        let mut runs = self.runs.write();
        let references = self.references.read();

        // Reference object ids are sacrosanct.
        let mut protected: BTreeSet<ObjectId> = BTreeSet::new();
        for tests in references.values() {
            for outputs in tests.values() {
                protected.extend(outputs.iter().map(|(_, oid)| *oid));
            }
        }

        // The reference run of an experiment is its most recent successful
        // run — the one whose outputs were promoted into the reference map.
        let mut reference_runs: BTreeSet<RunId> = BTreeSet::new();
        {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for run in runs.iter().rev() {
                if run.is_successful() && seen.insert(run.experiment.as_str()) {
                    reference_runs.insert(run.id);
                }
            }
        }

        let records: Vec<sp_store::retention::RetentionRecord> = runs
            .iter()
            .map(|run| sp_store::retention::RetentionRecord {
                key: run.id.to_string(),
                timestamp: run.timestamp,
                successful: run.is_successful(),
                is_reference: reference_runs.contains(&run.id),
            })
            .collect();
        let (kept_keys, dropped_keys) = policy.apply(&records, now);
        let kept: BTreeSet<&String> = kept_keys.iter().collect();

        // Objects still needed: everything referenced by a kept run.
        let mut needed = protected;
        for run in runs.iter().filter(|r| kept.contains(&r.id.to_string())) {
            for result in &run.results {
                needed.extend(result.outputs.iter().map(|(_, oid)| *oid));
            }
        }

        let mut objects_removed = 0usize;
        runs.retain(|run| {
            if kept.contains(&run.id.to_string()) {
                return true;
            }
            for result in &run.results {
                for (_, oid) in &result.outputs {
                    if !needed.contains(oid) && storage.remove(*oid) {
                        objects_removed += 1;
                    }
                }
            }
            false
        });

        PruneReport {
            kept: kept_keys.len(),
            dropped: dropped_keys.len(),
            objects_removed,
        }
    }
}

/// Result of a ledger pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneReport {
    /// Runs kept.
    pub kept: usize,
    /// Runs dropped from the ledger.
    pub dropped: usize,
    /// Storage objects removed (not shared with any kept run or reference).
    pub objects_removed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{TestResult, TestStatus};
    use crate::test::{FailureKind, TestCategory, TestId};
    use sp_exec::JobId;

    fn run(id: u64, experiment: &str, image: &str, ok: bool) -> ValidationRun {
        ValidationRun {
            id: RunId(id),
            experiment: experiment.into(),
            image_label: image.into(),
            description: format!("{experiment} @ root 5.34"),
            timestamp: 1_000 + id,
            results: vec![TestResult {
                test: TestId::new("t1"),
                category: TestCategory::Compilation,
                group: "compilation".into(),
                job: JobId(id),
                status: if ok {
                    TestStatus::Passed
                } else {
                    TestStatus::Failed(FailureKind::CompileError)
                },
                outputs: vec![(
                    "log".to_string(),
                    ObjectId::for_bytes(format!("out-{id}").as_bytes()),
                )],
                compare: None,
            }],
        }
    }

    #[test]
    fn successful_runs_become_reference() {
        let ledger = RunLedger::new();
        assert!(!ledger.has_reference("h1"));
        ledger.record(run(1, "h1", "SL5", true));
        assert!(ledger.has_reference("h1"));
        let outputs = ledger.reference_outputs("h1", "t1").unwrap();
        assert_eq!(outputs[0].1, ObjectId::for_bytes(b"out-1"));
    }

    #[test]
    fn failed_runs_do_not_update_reference() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        ledger.record(run(2, "h1", "SL6", false));
        let outputs = ledger.reference_outputs("h1", "t1").unwrap();
        assert_eq!(outputs[0].1, ObjectId::for_bytes(b"out-1"), "still run 1");
    }

    #[test]
    fn references_are_per_experiment() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        assert!(!ledger.has_reference("zeus"));
        assert!(ledger.reference_outputs("zeus", "t1").is_none());
    }

    #[test]
    fn queries() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        ledger.record(run(2, "h1", "SL6", false));
        ledger.record(run(3, "zeus", "SL6", true));
        assert_eq!(ledger.run_count(), 3);
        assert_eq!(ledger.latest("h1", "SL6").unwrap().id, RunId(2));
        assert_eq!(ledger.latest_successful("h1").unwrap().id, RunId(1));
        assert_eq!(ledger.runs_matching("zeus").len(), 1);
        assert!(ledger.get(RunId(2)).is_some());
        assert!(ledger.get(RunId(99)).is_none());
    }

    #[test]
    fn latest_successful_moves_forward() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        ledger.record(run(2, "h1", "SL5", true));
        assert_eq!(ledger.latest_successful("h1").unwrap().id, RunId(2));
    }
}
