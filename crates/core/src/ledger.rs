//! Run bookkeeping over the common storage.
//!
//! The ledger records every validation run, resolves the *reference* run a
//! new run must be compared against ("any differences compared to the last
//! successful test are examined", §3.1 iii), and serves the queries the
//! script-based web pages of §3.3 need ("record and display available
//! validation runs for a given description").

use std::collections::BTreeMap;

use parking_lot::RwLock;
use sp_store::ObjectId;

use crate::run::{RunId, ValidationRun};

/// Named output objects of one test (name → content address pairs).
pub type TestOutputs = Vec<(String, ObjectId)>;

/// A captured copy of one experiment's reference map (`None` = the
/// experiment had no references), restorable via
/// [`RunLedger::restore_reference_state`].
pub type ReferenceState = Option<BTreeMap<String, TestOutputs>>;

/// In-memory run ledger with per-test reference-output tracking.
#[derive(Default)]
pub struct RunLedger {
    runs: RwLock<Vec<ValidationRun>>,
    /// experiment → (test id string → reference outputs) from the last
    /// successful run of that experiment.
    references: RwLock<BTreeMap<String, BTreeMap<String, TestOutputs>>>,
}

impl RunLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RunLedger::default()
    }

    /// Records a completed run. If the run validated successfully, its
    /// outputs become the new reference for the experiment.
    pub fn record(&self, run: ValidationRun) {
        self.promote(&run);
        self.runs.write().push(run);
    }

    /// Promotes a successful run's outputs to reference status *without*
    /// appending it to the run log. No-op for failed runs.
    ///
    /// This is the half of [`record`](Self::record) the parallel campaign
    /// engine needs mid-repetition: an experiment lane must update its
    /// references in image order (the next run of the same experiment
    /// compares against them), while the run log itself is appended once
    /// per repetition via [`log_batch`](Self::log_batch) so the recording
    /// order stays deterministic across worker counts.
    pub fn promote(&self, run: &ValidationRun) {
        if !run.is_successful() {
            return;
        }
        let mut refs = self.references.write();
        let entry = refs.entry(run.experiment.clone()).or_default();
        for result in &run.results {
            entry.insert(result.test.as_str().to_string(), result.outputs.clone());
        }
    }

    /// Records a whole batch of runs under a single lock acquisition per
    /// map (one for the references, one for the run log), instead of one
    /// per run. Reference promotion follows batch order, so committing a
    /// campaign repetition's runs in task order reproduces exactly the
    /// reference state sequential execution would have left behind.
    pub fn commit_batch(&self, runs: Vec<ValidationRun>) {
        if runs.is_empty() {
            return;
        }
        {
            let mut refs = self.references.write();
            for run in runs.iter().filter(|r| r.is_successful()) {
                let entry = refs.entry(run.experiment.clone()).or_default();
                for result in &run.results {
                    entry.insert(result.test.as_str().to_string(), result.outputs.clone());
                }
            }
        }
        self.runs.write().extend(runs);
    }

    /// Appends a batch of runs to the run log under a single lock
    /// acquisition **without touching the references** — the append half
    /// of [`commit_batch`](Self::commit_batch), for callers (the campaign
    /// engine) that already promoted each run via
    /// [`promote`](Self::promote) in dependency order and would only
    /// redo that work.
    pub fn log_batch(&self, runs: Vec<ValidationRun>) {
        if runs.is_empty() {
            return;
        }
        self.runs.write().extend(runs);
    }

    /// Removes every logged run whose id falls in `[first, first+count)`,
    /// returning how many were retracted.
    ///
    /// This is the fencing-rollback primitive of the fleet worker: a
    /// campaign executed under a lease that was fenced away mid-flight
    /// has already logged its repetitions locally, but as far as the
    /// queue is concerned those runs never happened — another worker owns
    /// (and will re-log) the same pre-reserved id range. Retracting them
    /// keeps the local invariant that each reserved range appears in the
    /// ledger exactly once, so re-leasing your own fenced-away campaign
    /// is indistinguishable from leasing a stranger's.
    pub fn retract_range(&self, first: RunId, count: u64) -> usize {
        if count == 0 {
            return 0;
        }
        let end = first.0.saturating_add(count);
        let mut runs = self.runs.write();
        let before = runs.len();
        runs.retain(|run| run.id.0 < first.0 || run.id.0 >= end);
        before - runs.len()
    }

    /// Captures one experiment's current reference map. The campaign
    /// scheduler snapshots this before dispatching a repetition: lanes
    /// promote references *as they run* (the next run of the same
    /// experiment must compare against them), so a repetition discarded by
    /// cancellation needs its promotions rolled back — references of a
    /// run that officially never happened must not leak into later work.
    pub fn reference_state(&self, experiment: &str) -> ReferenceState {
        self.references.read().get(experiment).cloned()
    }

    /// Restores an experiment's reference map to a previously captured
    /// [`reference_state`](Self::reference_state) (`None` removes it).
    pub fn restore_reference_state(&self, experiment: &str, state: ReferenceState) {
        let mut refs = self.references.write();
        match state {
            Some(map) => {
                refs.insert(experiment.to_string(), map);
            }
            None => {
                refs.remove(experiment);
            }
        }
    }

    /// Snapshot of the whole reference map — one `(experiment, test map)`
    /// pair per experiment, in name order — for the warm-state exporter.
    /// Together with [`absorb_references`](Self::absorb_references) this
    /// is what lets a restarted system compare its first post-restore run
    /// of each experiment against the pre-restart reference instead of
    /// bootstrapping a new one.
    pub fn export_references(&self) -> Vec<(String, BTreeMap<String, TestOutputs>)> {
        self.references
            .read()
            .iter()
            .map(|(experiment, tests)| (experiment.clone(), tests.clone()))
            .collect()
    }

    /// Restores reference entries exported by
    /// [`export_references`](Self::export_references). Entries merge
    /// test-wise into the current map but **never overwrite** a reference
    /// a live run has already promoted — on a restarted system the
    /// snapshot only fills gaps, it cannot travel a reference back in
    /// time. Returns how many test references were absorbed.
    pub fn absorb_references(
        &self,
        entries: Vec<(String, BTreeMap<String, TestOutputs>)>,
    ) -> usize {
        let mut refs = self.references.write();
        let mut absorbed = 0;
        for (experiment, tests) in entries {
            let entry = refs.entry(experiment).or_default();
            for (test, outputs) in tests {
                if let std::collections::btree_map::Entry::Vacant(slot) = entry.entry(test) {
                    slot.insert(outputs);
                    absorbed += 1;
                }
            }
        }
        absorbed
    }

    /// Reference outputs for one test of an experiment, if any successful
    /// run has produced them.
    pub fn reference_outputs(&self, experiment: &str, test_id: &str) -> Option<TestOutputs> {
        self.references
            .read()
            .get(experiment)
            .and_then(|tests| tests.get(test_id))
            .cloned()
    }

    /// Content address of one named reference output, read under the lock
    /// without cloning the whole output list — the digest-first comparison
    /// paths call this once per test, so it stays allocation-free.
    pub fn reference_output_id(
        &self,
        experiment: &str,
        test_id: &str,
        output_name: &str,
    ) -> Option<ObjectId> {
        self.references
            .read()
            .get(experiment)?
            .get(test_id)?
            .iter()
            .find(|(name, _)| name == output_name)
            .map(|(_, id)| *id)
    }

    /// Whether an experiment has any reference at all (false before its
    /// first successful run).
    pub fn has_reference(&self, experiment: &str) -> bool {
        self.references
            .read()
            .get(experiment)
            .map(|t| !t.is_empty())
            .unwrap_or(false)
    }

    /// Total number of recorded runs.
    pub fn run_count(&self) -> usize {
        self.runs.read().len()
    }

    /// All runs (cloned) in recording order.
    pub fn runs(&self) -> Vec<ValidationRun> {
        self.runs.read().clone()
    }

    /// Runs whose description contains `needle` (the "available validation
    /// runs for a given description" query of §3.3).
    pub fn runs_matching(&self, needle: &str) -> Vec<ValidationRun> {
        self.runs
            .read()
            .iter()
            .filter(|r| r.description.contains(needle))
            .cloned()
            .collect()
    }

    /// The most recent run of an experiment on a given image label.
    pub fn latest(&self, experiment: &str, image_label: &str) -> Option<ValidationRun> {
        self.runs
            .read()
            .iter()
            .rev()
            .find(|r| r.experiment == experiment && r.image_label == image_label)
            .cloned()
    }

    /// The most recent *successful* run of an experiment (any image).
    pub fn latest_successful(&self, experiment: &str) -> Option<ValidationRun> {
        self.runs
            .read()
            .iter()
            .rev()
            .find(|r| r.experiment == experiment && r.is_successful())
            .cloned()
    }

    /// Looks up a run by id.
    pub fn get(&self, id: RunId) -> Option<ValidationRun> {
        self.runs.read().iter().find(|r| r.id == id).cloned()
    }

    /// [`prune`](Self::prune) with "now" read from a
    /// [`sp_store::TimeSource`] — in simulations the `sp-exec` virtual
    /// clock, so age-based retention rules are decided in simulated time,
    /// against the same clock the runs were stamped by.
    pub fn prune_at(
        &self,
        policy: &sp_store::RetentionPolicy,
        time: &impl sp_store::TimeSource,
        storage: &sp_store::ContentStore,
    ) -> PruneReport {
        self.prune(policy, time.now_secs(), storage)
    }

    /// Applies a retention policy (§3.3 keeps everything; a pruning host
    /// IT department would not): drops expired runs from the ledger and
    /// removes their now-unreferenced output objects from `storage`.
    /// Reference outputs and outputs shared with kept runs always survive.
    pub fn prune(
        &self,
        policy: &sp_store::RetentionPolicy,
        now: u64,
        storage: &sp_store::ContentStore,
    ) -> PruneReport {
        use std::collections::BTreeSet;

        let mut runs = self.runs.write();
        let references = self.references.read();

        // Reference object ids are sacrosanct.
        let mut protected: BTreeSet<ObjectId> = BTreeSet::new();
        for tests in references.values() {
            for outputs in tests.values() {
                protected.extend(outputs.iter().map(|(_, oid)| *oid));
            }
        }

        // The reference run of an experiment is its most recent successful
        // run — the one whose outputs were promoted into the reference map.
        let mut reference_runs: BTreeSet<RunId> = BTreeSet::new();
        {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for run in runs.iter().rev() {
                if run.is_successful() && seen.insert(run.experiment.as_str()) {
                    reference_runs.insert(run.id);
                }
            }
        }

        let records: Vec<sp_store::retention::RetentionRecord> = runs
            .iter()
            .map(|run| sp_store::retention::RetentionRecord {
                key: run.id.to_string(),
                timestamp: run.timestamp,
                successful: run.is_successful(),
                is_reference: reference_runs.contains(&run.id),
            })
            .collect();
        let (kept_keys, dropped_keys) = policy.apply(&records, now);
        let kept: BTreeSet<&String> = kept_keys.iter().collect();

        // Objects still needed: everything referenced by a kept run.
        let mut needed = protected;
        for run in runs.iter().filter(|r| kept.contains(&r.id.to_string())) {
            for result in &run.results {
                needed.extend(result.outputs.iter().map(|(_, oid)| *oid));
            }
        }

        let mut objects_removed = 0usize;
        runs.retain(|run| {
            if kept.contains(&run.id.to_string()) {
                return true;
            }
            for result in &run.results {
                for (_, oid) in &result.outputs {
                    if !needed.contains(oid) && storage.remove(*oid) {
                        objects_removed += 1;
                    }
                }
            }
            false
        });

        PruneReport {
            kept: kept_keys.len(),
            dropped: dropped_keys.len(),
            objects_removed,
        }
    }
}

/// Result of a ledger pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneReport {
    /// Runs kept.
    pub kept: usize,
    /// Runs dropped from the ledger.
    pub dropped: usize,
    /// Storage objects removed (not shared with any kept run or reference).
    pub objects_removed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{TestResult, TestStatus};
    use crate::test::{FailureKind, TestCategory, TestId};
    use sp_exec::JobId;

    fn run(id: u64, experiment: &str, image: &str, ok: bool) -> ValidationRun {
        ValidationRun {
            id: RunId(id),
            experiment: experiment.into(),
            image_label: image.into(),
            description: format!("{experiment} @ root 5.34"),
            timestamp: 1_000 + id,
            results: vec![TestResult {
                test: TestId::new("t1"),
                category: TestCategory::Compilation,
                group: "compilation".into(),
                job: JobId(id),
                status: if ok {
                    TestStatus::Passed
                } else {
                    TestStatus::Failed(FailureKind::CompileError)
                },
                outputs: vec![(
                    "log".to_string(),
                    ObjectId::for_bytes(format!("out-{id}").as_bytes()),
                )],
                compare: None,
            }],
        }
    }

    #[test]
    fn successful_runs_become_reference() {
        let ledger = RunLedger::new();
        assert!(!ledger.has_reference("h1"));
        ledger.record(run(1, "h1", "SL5", true));
        assert!(ledger.has_reference("h1"));
        let outputs = ledger.reference_outputs("h1", "t1").unwrap();
        assert_eq!(outputs[0].1, ObjectId::for_bytes(b"out-1"));
    }

    #[test]
    fn failed_runs_do_not_update_reference() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        ledger.record(run(2, "h1", "SL6", false));
        let outputs = ledger.reference_outputs("h1", "t1").unwrap();
        assert_eq!(outputs[0].1, ObjectId::for_bytes(b"out-1"), "still run 1");
    }

    #[test]
    fn references_are_per_experiment() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        assert!(!ledger.has_reference("zeus"));
        assert!(ledger.reference_outputs("zeus", "t1").is_none());
    }

    #[test]
    fn queries() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        ledger.record(run(2, "h1", "SL6", false));
        ledger.record(run(3, "zeus", "SL6", true));
        assert_eq!(ledger.run_count(), 3);
        assert_eq!(ledger.latest("h1", "SL6").unwrap().id, RunId(2));
        assert_eq!(ledger.latest_successful("h1").unwrap().id, RunId(1));
        assert_eq!(ledger.runs_matching("zeus").len(), 1);
        assert!(ledger.get(RunId(2)).is_some());
        assert!(ledger.get(RunId(99)).is_none());
    }

    #[test]
    fn commit_batch_matches_sequential_record() {
        let sequential = RunLedger::new();
        let batched = RunLedger::new();
        let runs = vec![
            run(1, "h1", "SL5", true),
            run(2, "zeus", "SL5", true),
            run(3, "h1", "SL6", false),
            run(4, "h1", "SL5", true),
        ];
        for r in runs.clone() {
            sequential.record(r);
        }
        batched.commit_batch(runs);
        assert_eq!(batched.run_count(), sequential.run_count());
        for experiment in ["h1", "zeus"] {
            assert_eq!(
                batched.reference_outputs(experiment, "t1"),
                sequential.reference_outputs(experiment, "t1"),
                "batch-order promotion must equal sequential promotion"
            );
            assert_eq!(
                batched.latest_successful(experiment).map(|r| r.id),
                sequential.latest_successful(experiment).map(|r| r.id)
            );
        }
        batched.commit_batch(Vec::new());
        assert_eq!(batched.run_count(), 4, "empty batch is a no-op");
    }

    #[test]
    fn log_batch_appends_without_promoting() {
        let ledger = RunLedger::new();
        ledger.log_batch(vec![run(1, "h1", "SL5", true), run(2, "h1", "SL5", true)]);
        assert_eq!(ledger.run_count(), 2);
        assert!(
            !ledger.has_reference("h1"),
            "log_batch must leave references untouched"
        );
        ledger.log_batch(Vec::new());
        assert_eq!(ledger.run_count(), 2);
    }

    #[test]
    fn promote_updates_references_without_logging() {
        let ledger = RunLedger::new();
        ledger.promote(&run(1, "h1", "SL5", true));
        assert!(ledger.has_reference("h1"));
        assert_eq!(
            ledger.run_count(),
            0,
            "promotion does not append to the log"
        );
        ledger.promote(&run(2, "h1", "SL6", false));
        let outputs = ledger.reference_outputs("h1", "t1").unwrap();
        assert_eq!(
            outputs[0].1,
            ObjectId::for_bytes(b"out-1"),
            "failures don't promote"
        );
    }

    #[test]
    fn reference_state_round_trips_and_rolls_back() {
        let ledger = RunLedger::new();
        // No references yet: the captured state is `None`, and restoring
        // it after a promotion removes the leaked entry.
        let before = ledger.reference_state("h1");
        assert!(before.is_none());
        ledger.promote(&run(1, "h1", "SL5", true));
        assert!(ledger.has_reference("h1"));
        ledger.restore_reference_state("h1", before);
        assert!(!ledger.has_reference("h1"), "promotion rolled back");

        // With an existing reference: restore brings back exactly the
        // captured outputs, not the later promotion's.
        ledger.promote(&run(1, "h1", "SL5", true));
        let captured = ledger.reference_state("h1");
        ledger.promote(&run(2, "h1", "SL6", true));
        assert_eq!(
            ledger.reference_outputs("h1", "t1").unwrap()[0].1,
            ObjectId::for_bytes(b"out-2")
        );
        ledger.restore_reference_state("h1", captured);
        assert_eq!(
            ledger.reference_outputs("h1", "t1").unwrap()[0].1,
            ObjectId::for_bytes(b"out-1"),
            "restored to the captured state"
        );
    }

    #[test]
    fn exported_references_absorb_without_clobbering_live_state() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        ledger.record(run(2, "zeus", "SL5", true));
        let exported = ledger.export_references();
        assert_eq!(exported.len(), 2);

        // A cold ledger absorbs everything.
        let restored = RunLedger::new();
        assert_eq!(restored.absorb_references(exported.clone()), 2);
        assert_eq!(
            restored.reference_outputs("h1", "t1"),
            ledger.reference_outputs("h1", "t1")
        );
        assert!(restored.has_reference("zeus"));

        // A ledger that already promoted a *newer* reference keeps it:
        // the snapshot fills gaps, it never travels references back.
        let live = RunLedger::new();
        live.record(run(9, "h1", "SL6", true));
        let newer = live.reference_outputs("h1", "t1").unwrap();
        assert_eq!(live.absorb_references(exported), 1, "only zeus is new");
        assert_eq!(live.reference_outputs("h1", "t1").unwrap(), newer);
        assert!(live.has_reference("zeus"));
    }

    #[test]
    fn retract_range_removes_exactly_the_fenced_ids() {
        let ledger = RunLedger::new();
        ledger.log_batch(vec![
            run(10, "h1", "SL5", true),
            run(11, "h1", "SL6", true),
            run(12, "zeus", "SL5", true),
            run(13, "zeus", "SL6", true),
        ]);
        assert_eq!(ledger.retract_range(RunId(11), 2), 2);
        let remaining: Vec<u64> = ledger.runs().iter().map(|r| r.id.0).collect();
        assert_eq!(remaining, vec![10, 13]);
        // Empty and non-overlapping ranges retract nothing.
        assert_eq!(ledger.retract_range(RunId(11), 0), 0);
        assert_eq!(ledger.retract_range(RunId(500), 10), 0);
        assert_eq!(ledger.run_count(), 2);
    }

    #[test]
    fn latest_successful_moves_forward() {
        let ledger = RunLedger::new();
        ledger.record(run(1, "h1", "SL5", true));
        ledger.record(run(2, "h1", "SL5", true));
        assert_eq!(ledger.latest_successful("h1").unwrap().id, RunId(2));
    }
}
