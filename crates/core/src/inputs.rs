//! The three input categories and intervention routing.
//!
//! "Three distinct categories are identified as separate inputs to the
//! validation system, as illustrated in figure 1: the experiment specific
//! software, any external software dependencies and finally the operating
//! system, including the compiler." (§3.1)
//!
//! "Intervention is then required either by the host of the validation
//! suite or the experiment themselves, depending on the nature of the
//! reported problem." (§3.1 iii)

/// One of the three separated inputs of Figure 1.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InputCategory {
    /// The experiment-specific software (owned by the experiment).
    ExperimentSoftware,
    /// An external software dependency (ROOT, CERNLIB, …).
    ExternalDependency,
    /// The operating system, including the compiler.
    OperatingSystem,
}

impl InputCategory {
    /// All categories in Figure-1 order.
    pub fn all() -> [InputCategory; 3] {
        [
            InputCategory::ExperimentSoftware,
            InputCategory::ExternalDependency,
            InputCategory::OperatingSystem,
        ]
    }

    /// Display label used in reports and the Figure-1 diagram.
    pub fn label(&self) -> &'static str {
        match self {
            InputCategory::ExperimentSoftware => "experiment specific software",
            InputCategory::ExternalDependency => "external software dependencies",
            InputCategory::OperatingSystem => "operating system (incl. compiler)",
        }
    }

    /// Who owns problems in this input: the routing rule of §3.1 (iii).
    /// Experiment software belongs to the experiment; the OS/compiler layer
    /// belongs to the host IT department; externals are shared (the host
    /// installs them, the experiment codes against them).
    pub fn default_assignee(&self) -> Assignee {
        match self {
            InputCategory::ExperimentSoftware => Assignee::Experiment,
            InputCategory::ExternalDependency => Assignee::Joint,
            InputCategory::OperatingSystem => Assignee::HostIt,
        }
    }
}

impl std::fmt::Display for InputCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Who must intervene on a reported problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assignee {
    /// The host of the validation suite (IT department).
    HostIt,
    /// The experiment collaboration.
    Experiment,
    /// Both, jointly.
    Joint,
}

impl std::fmt::Display for Assignee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Assignee::HostIt => write!(f, "host IT department"),
            Assignee::Experiment => write!(f, "experiment"),
            Assignee::Joint => write!(f, "host IT + experiment"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_categories() {
        assert_eq!(InputCategory::all().len(), 3);
    }

    #[test]
    fn routing_rules() {
        assert_eq!(
            InputCategory::ExperimentSoftware.default_assignee(),
            Assignee::Experiment
        );
        assert_eq!(
            InputCategory::OperatingSystem.default_assignee(),
            Assignee::HostIt
        );
        assert_eq!(
            InputCategory::ExternalDependency.default_assignee(),
            Assignee::Joint
        );
    }

    #[test]
    fn labels_match_figure1() {
        assert_eq!(
            InputCategory::ExperimentSoftware.to_string(),
            "experiment specific software"
        );
        assert_eq!(
            InputCategory::OperatingSystem.label(),
            "operating system (incl. compiler)"
        );
    }
}
