//! Validation runs and their results.
//!
//! "Each test-job started in the sp-system is typically assigned a unique
//! ID, and all scripts and input files used in the test as well as all
//! output files are kept. This allows the validation of all versions
//! against each other and ensures reproducibility of previous results. In
//! addition to this unique ID, validation jobs may be tagged with a
//! description, indicating which software versions were used, and the Unix
//! time stamp of the execution to aid the bookkeeping." (§3.3)

use sp_exec::JobId;
use sp_store::ObjectId;

use crate::compare::CompareOutcome;
use crate::test::{FailureKind, TestCategory, TestId};

/// Unique identifier of a validation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunId(pub u64);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spr-{:06}", self.0)
    }
}

/// Terminal status of one test within a run.
#[derive(Debug, Clone, PartialEq)]
pub enum TestStatus {
    /// Everything fine, outputs compatible with the reference.
    Passed,
    /// Passed, but the build/run produced `usize` warnings.
    PassedWithWarnings(usize),
    /// Failed.
    Failed(FailureKind),
    /// Not run (dependency failures, missing artifacts).
    Skipped(String),
}

impl TestStatus {
    /// Whether the test counts as successful.
    pub fn is_pass(&self) -> bool {
        matches!(self, TestStatus::Passed | TestStatus::PassedWithWarnings(_))
    }

    /// Single-character glyph for matrix cells.
    pub fn glyph(&self) -> char {
        match self {
            TestStatus::Passed => '+',
            TestStatus::PassedWithWarnings(_) => 'w',
            TestStatus::Failed(_) => 'X',
            TestStatus::Skipped(_) => '-',
        }
    }
}

/// The result of one test in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Which test.
    pub test: TestId,
    /// Its category (denormalised for reporting).
    pub category: TestCategory,
    /// Process group (Figure-3 row).
    pub group: String,
    /// The job that executed it.
    pub job: JobId,
    /// Terminal status.
    pub status: TestStatus,
    /// Output objects kept in the common storage.
    pub outputs: Vec<(String, ObjectId)>,
    /// Comparison verdict against the reference run, if one existed.
    pub compare: Option<CompareOutcome>,
}

/// One complete validation run of an experiment suite on one image.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRun {
    /// Unique run id.
    pub id: RunId,
    /// Experiment name.
    pub experiment: String,
    /// Image configuration label the run executed on.
    pub image_label: String,
    /// Description tag ("which software versions were used").
    pub description: String,
    /// Unix timestamp of execution.
    pub timestamp: u64,
    /// Per-test results, in test-id order.
    pub results: Vec<TestResult>,
}

impl ValidationRun {
    /// Number of passing tests.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.status.is_pass()).count()
    }

    /// Number of failed tests.
    pub fn failed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.status, TestStatus::Failed(_)))
            .count()
    }

    /// Number of skipped tests.
    pub fn skipped(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.status, TestStatus::Skipped(_)))
            .count()
    }

    /// Whether the whole run validated ("If the validation is successful,
    /// no further action must be taken").
    pub fn is_successful(&self) -> bool {
        self.results.iter().all(|r| r.status.is_pass())
    }

    /// The failed results.
    pub fn failures(&self) -> impl Iterator<Item = &TestResult> {
        self.results
            .iter()
            .filter(|r| matches!(r.status, TestStatus::Failed(_)))
    }

    /// Results belonging to one category.
    pub fn by_category(&self, category: TestCategory) -> impl Iterator<Item = &TestResult> {
        self.results.iter().filter(move |r| r.category == category)
    }

    /// A deterministic digest over the run's test statuses and outputs,
    /// used for "validation of all versions against each other": two runs
    /// with equal digests produced bit-identical outcomes.
    pub fn digest(&self) -> ObjectId {
        let mut text = String::with_capacity(self.results.len() * 48);
        for r in &self.results {
            text.push_str(r.test.as_str());
            text.push('=');
            text.push(r.status.glyph());
            for (name, id) in &r.outputs {
                text.push(':');
                text.push_str(name);
                text.push('@');
                text.push_str(&id.to_hex());
            }
            text.push('\n');
        }
        ObjectId::for_bytes(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, status: TestStatus) -> TestResult {
        TestResult {
            test: TestId::new(id),
            category: TestCategory::Compilation,
            group: "compilation".into(),
            job: JobId(1),
            status,
            outputs: vec![],
            compare: None,
        }
    }

    fn run_with(statuses: Vec<TestStatus>) -> ValidationRun {
        ValidationRun {
            id: RunId(1),
            experiment: "h1".into(),
            image_label: "SL6/64bit gcc4.4".into(),
            description: "h1 @ root 5.34".into(),
            timestamp: 1_383_000_000,
            results: statuses
                .into_iter()
                .enumerate()
                .map(|(i, s)| result(&format!("t{i}"), s))
                .collect(),
        }
    }

    #[test]
    fn run_id_format() {
        assert_eq!(RunId(7).to_string(), "spr-000007");
    }

    #[test]
    fn counting_and_success() {
        let run = run_with(vec![
            TestStatus::Passed,
            TestStatus::PassedWithWarnings(3),
            TestStatus::Failed(FailureKind::CompileError),
            TestStatus::Skipped("dep".into()),
        ]);
        assert_eq!(run.passed(), 2);
        assert_eq!(run.failed(), 1);
        assert_eq!(run.skipped(), 1);
        assert!(!run.is_successful());
        assert_eq!(run.failures().count(), 1);

        let good = run_with(vec![TestStatus::Passed, TestStatus::PassedWithWarnings(1)]);
        assert!(good.is_successful());
    }

    #[test]
    fn digest_is_sensitive_to_status() {
        let a = run_with(vec![TestStatus::Passed, TestStatus::Passed]);
        let b = run_with(vec![
            TestStatus::Passed,
            TestStatus::Failed(FailureKind::CompileError),
        ]);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.digest());
    }

    #[test]
    fn digest_is_sensitive_to_outputs() {
        let mut a = run_with(vec![TestStatus::Passed]);
        let mut b = a.clone();
        a.results[0]
            .outputs
            .push(("hist".into(), ObjectId::for_bytes(b"one")));
        b.results[0]
            .outputs
            .push(("hist".into(), ObjectId::for_bytes(b"two")));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn glyphs() {
        assert_eq!(TestStatus::Passed.glyph(), '+');
        assert_eq!(TestStatus::PassedWithWarnings(1).glyph(), 'w');
        assert_eq!(TestStatus::Failed(FailureKind::CompileError).glyph(), 'X');
        assert_eq!(TestStatus::Skipped("x".into()).glyph(), '-');
    }
}
