//! Run-to-run regression analysis.
//!
//! "If a test fails, any differences compared to the last successful test
//! are examined and problems identified." (§3.1 iii). The
//! [`RegressionReport`] is that examination: which tests newly broke, which
//! recovered, which keep failing, and what changed in between.

use std::collections::BTreeMap;

use crate::run::{TestStatus, ValidationRun};
use crate::test::TestId;

/// The status transition of one test between two runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// Passed before, fails now — the regression the framework exists to
    /// catch.
    NewFailure {
        /// Status in the current run.
        now: TestStatus,
    },
    /// Failed before, passes now.
    Fixed,
    /// Failed in both runs.
    StillFailing,
    /// Passed in both runs.
    StillPassing,
    /// Not present in the earlier run (new test).
    Added {
        /// Status in the current run.
        now: TestStatus,
    },
    /// Present before, absent now (removed test).
    Removed,
}

/// Comparison of a run against a baseline run.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// Baseline run id (display form).
    pub baseline: String,
    /// Current run id (display form).
    pub current: String,
    /// Per-test transitions.
    pub transitions: BTreeMap<TestId, Transition>,
}

impl RegressionReport {
    /// Builds the report from a baseline and a current run.
    pub fn between(baseline: &ValidationRun, current: &ValidationRun) -> Self {
        let base: BTreeMap<&TestId, &TestStatus> = baseline
            .results
            .iter()
            .map(|r| (&r.test, &r.status))
            .collect();
        let cur: BTreeMap<&TestId, &TestStatus> = current
            .results
            .iter()
            .map(|r| (&r.test, &r.status))
            .collect();

        let mut transitions = BTreeMap::new();
        for (test, status) in &cur {
            let transition = match base.get(*test) {
                None => Transition::Added {
                    now: (*status).clone(),
                },
                Some(before) => match (before.is_pass(), status.is_pass()) {
                    (true, true) => Transition::StillPassing,
                    (true, false) => Transition::NewFailure {
                        now: (*status).clone(),
                    },
                    (false, true) => Transition::Fixed,
                    (false, false) => Transition::StillFailing,
                },
            };
            transitions.insert((*test).clone(), transition);
        }
        for test in base.keys() {
            if !cur.contains_key(*test) {
                transitions.insert((*test).clone(), Transition::Removed);
            }
        }

        RegressionReport {
            baseline: baseline.id.to_string(),
            current: current.id.to_string(),
            transitions,
        }
    }

    /// Tests that newly broke.
    pub fn new_failures(&self) -> Vec<&TestId> {
        self.transitions
            .iter()
            .filter(|(_, t)| matches!(t, Transition::NewFailure { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// Tests that recovered.
    pub fn fixed(&self) -> Vec<&TestId> {
        self.transitions
            .iter()
            .filter(|(_, t)| matches!(t, Transition::Fixed))
            .map(|(id, _)| id)
            .collect()
    }

    /// Tests failing in both runs.
    pub fn still_failing(&self) -> Vec<&TestId> {
        self.transitions
            .iter()
            .filter(|(_, t)| matches!(t, Transition::StillFailing))
            .map(|(id, _)| id)
            .collect()
    }

    /// Whether the current run introduces no regressions.
    pub fn is_clean(&self) -> bool {
        self.new_failures().is_empty()
    }

    /// One-paragraph text summary for reports and intervention tickets.
    pub fn summary(&self) -> String {
        format!(
            "{} vs {}: {} new failures, {} fixed, {} still failing, {} unchanged",
            self.current,
            self.baseline,
            self.new_failures().len(),
            self.fixed().len(),
            self.still_failing().len(),
            self.transitions
                .values()
                .filter(|t| matches!(t, Transition::StillPassing))
                .count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{RunId, TestResult};
    use crate::test::{FailureKind, TestCategory};
    use sp_exec::JobId;

    fn run(id: u64, statuses: &[(&str, bool)]) -> ValidationRun {
        ValidationRun {
            id: RunId(id),
            experiment: "h1".into(),
            image_label: "SL6".into(),
            description: String::new(),
            timestamp: id,
            results: statuses
                .iter()
                .map(|(test, ok)| TestResult {
                    test: TestId::new(*test),
                    category: TestCategory::Compilation,
                    group: "g".into(),
                    job: JobId(1),
                    status: if *ok {
                        TestStatus::Passed
                    } else {
                        TestStatus::Failed(FailureKind::CompileError)
                    },
                    outputs: vec![],
                    compare: None,
                })
                .collect(),
        }
    }

    #[test]
    fn transitions_classified() {
        let baseline = run(1, &[("a", true), ("b", true), ("c", false), ("gone", true)]);
        let current = run(2, &[("a", true), ("b", false), ("c", false), ("new", true)]);
        let report = RegressionReport::between(&baseline, &current);

        assert_eq!(
            report.transitions[&TestId::new("a")],
            Transition::StillPassing
        );
        assert!(matches!(
            report.transitions[&TestId::new("b")],
            Transition::NewFailure { .. }
        ));
        assert_eq!(
            report.transitions[&TestId::new("c")],
            Transition::StillFailing
        );
        assert!(matches!(
            report.transitions[&TestId::new("new")],
            Transition::Added { .. }
        ));
        assert_eq!(
            report.transitions[&TestId::new("gone")],
            Transition::Removed
        );

        assert_eq!(report.new_failures(), vec![&TestId::new("b")]);
        assert!(!report.is_clean());
    }

    #[test]
    fn fixed_detected() {
        let baseline = run(1, &[("a", false)]);
        let current = run(2, &[("a", true)]);
        let report = RegressionReport::between(&baseline, &current);
        assert_eq!(report.fixed(), vec![&TestId::new("a")]);
        assert!(report.is_clean());
    }

    #[test]
    fn summary_counts() {
        let baseline = run(1, &[("a", true), ("b", true)]);
        let current = run(2, &[("a", true), ("b", false)]);
        let report = RegressionReport::between(&baseline, &current);
        let summary = report.summary();
        assert!(summary.contains("1 new failures"));
        assert!(summary.contains("1 unchanged"));
    }

    #[test]
    fn identical_runs_are_clean() {
        let a = run(1, &[("a", true), ("b", false)]);
        let b = run(2, &[("a", true), ("b", false)]);
        let report = RegressionReport::between(&a, &b);
        assert!(report.is_clean());
        assert_eq!(report.still_failing().len(), 1);
    }
}
