//! Experiment definitions.
//!
//! An [`ExperimentDef`] bundles what an experiment brings to the sp-system:
//! its software stack (the dependency graph of packages), its validation
//! suite, and presentation metadata (the colour of its Figure-3 band). The
//! concrete HERA experiments — H1, ZEUS, HERMES — are constructed in the
//! `sp-experiments` crate.

use sp_build::{DependencyGraph, PackageId};
use sp_env::CodeTrait;

use crate::suite::TestSuite;

/// A complete experiment registration.
#[derive(Debug, Clone)]
pub struct ExperimentDef {
    /// Experiment name (`h1`, `zeus`, `hermes`).
    pub name: String,
    /// Display colour of the experiment's band in the summary matrix
    /// (Figure 3: ZEUS orange, H1 blue, HERMES red).
    pub color: &'static str,
    /// The software stack.
    pub graph: DependencyGraph,
    /// The validation suite.
    pub suite: TestSuite,
    /// Packages the preservation model must keep working (entry points for
    /// the preparation-phase consolidation).
    pub entry_points: Vec<PackageId>,
}

impl ExperimentDef {
    /// The *effective* runtime traits of a package: its own plus those of
    /// every transitive dependency. A latent bug in a base library affects
    /// every executable linking it, which is exactly how the 64-bit
    /// migration bugs of §3.3 surfaced.
    pub fn effective_runtime_traits(&self, package: &PackageId) -> Vec<CodeTrait> {
        let mut traits: Vec<CodeTrait> = Vec::new();
        if let Some(pkg) = self.graph.get(package) {
            traits.extend(pkg.traits.iter().cloned());
        }
        for dep in self.graph.dependency_closure(std::slice::from_ref(package)) {
            if let Some(pkg) = self.graph.get(&dep) {
                traits.extend(pkg.traits.iter().cloned());
            }
        }
        traits
    }

    /// Number of packages in the stack.
    pub fn package_count(&self) -> usize {
        self.graph.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preservation::PreservationLevel;
    use sp_build::{Package, PackageKind};
    use sp_env::Version;

    fn experiment() -> ExperimentDef {
        let graph = DependencyGraph::from_packages([
            Package::new("base", Version::new(1, 0, 0), PackageKind::Library)
                .with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 2.0 }),
            Package::new("rec", Version::new(1, 0, 0), PackageKind::Reconstruction).dep("base"),
            Package::new("ana", Version::new(1, 0, 0), PackageKind::Analysis)
                .dep("rec")
                .with_trait(CodeTrait::ImplicitFunctionDecl),
            Package::new("standalone", Version::new(1, 0, 0), PackageKind::Tool),
        ])
        .unwrap();
        ExperimentDef {
            name: "test-exp".into(),
            color: "blue",
            graph,
            suite: TestSuite::new("test-exp", PreservationLevel::FullSoftware),
            entry_points: vec![PackageId::new("ana")],
        }
    }

    #[test]
    fn runtime_traits_include_dependencies() {
        let exp = experiment();
        let traits = exp.effective_runtime_traits(&PackageId::new("ana"));
        // ana's own ImplicitFunctionDecl plus base's PointerSizeAssumption
        // (via rec -> base).
        assert_eq!(traits.len(), 2);
        assert!(traits
            .iter()
            .any(|t| matches!(t, CodeTrait::PointerSizeAssumption { .. })));
    }

    #[test]
    fn isolated_package_has_own_traits_only() {
        let exp = experiment();
        let traits = exp.effective_runtime_traits(&PackageId::new("standalone"));
        assert!(traits.is_empty());
    }

    #[test]
    fn unknown_package_yields_nothing() {
        let exp = experiment();
        assert!(exp
            .effective_runtime_traits(&PackageId::new("ghost"))
            .is_empty());
    }
}
