//! The comparison engine.
//!
//! "This allows the validation of all versions against each other and
//! ensures reproducibility of previous results. … This file may be a simple
//! yes/no, a text file, a histogram, a root file or even a link to a
//! further page, depending on the nature of the test." (§3.3)
//!
//! [`TestOutput`] models those output flavours; [`Comparator`] decides
//! whether a new output is compatible with the reference one.

use sp_hep::hist_io;
use sp_hep::HistogramSet;

/// The output of one validation test, in one of the paper's flavours.
#[derive(Debug, Clone, PartialEq)]
pub enum TestOutput {
    /// A simple yes/no.
    YesNo(bool),
    /// An exit code.
    ExitCode(i32),
    /// A text file (log, cut-flow table).
    Text(String),
    /// A vector of named numbers (counters, means).
    Numbers(Vec<(String, f64)>),
    /// A set of histograms ("a histogram, a root file").
    Histograms(HistogramSet),
}

impl TestOutput {
    /// Serialises the output for the common storage. Deterministic, so
    /// identical outputs deduplicate to identical object ids.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            TestOutput::YesNo(b) => {
                let mut v = vec![b'Y'];
                v.push(*b as u8);
                v
            }
            TestOutput::ExitCode(c) => {
                let mut v = vec![b'E'];
                v.extend_from_slice(&c.to_le_bytes());
                v
            }
            TestOutput::Text(t) => {
                let mut v = vec![b'T'];
                v.extend_from_slice(t.as_bytes());
                v
            }
            TestOutput::Numbers(ns) => {
                let mut v = vec![b'N'];
                for (name, value) in ns {
                    v.extend_from_slice(&(name.len() as u16).to_le_bytes());
                    v.extend_from_slice(name.as_bytes());
                    v.extend_from_slice(&value.to_le_bytes());
                }
                v
            }
            TestOutput::Histograms(set) => {
                let mut v = vec![b'H'];
                v.extend_from_slice(&hist_io::encode_set(set));
                v
            }
        }
    }

    /// Deserialises an output written by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(data: &[u8]) -> Option<TestOutput> {
        let (&tag, rest) = data.split_first()?;
        match tag {
            b'Y' => Some(TestOutput::YesNo(*rest.first()? != 0)),
            b'E' => Some(TestOutput::ExitCode(i32::from_le_bytes(
                rest.try_into().ok()?,
            ))),
            b'T' => Some(TestOutput::Text(String::from_utf8(rest.to_vec()).ok()?)),
            b'N' => {
                let mut ns = Vec::new();
                let mut cur = rest;
                while !cur.is_empty() {
                    if cur.len() < 2 {
                        return None;
                    }
                    let len = u16::from_le_bytes([cur[0], cur[1]]) as usize;
                    cur = &cur[2..];
                    if cur.len() < len + 8 {
                        return None;
                    }
                    let name = String::from_utf8(cur[..len].to_vec()).ok()?;
                    let value = f64::from_le_bytes(cur[len..len + 8].try_into().ok()?);
                    ns.push((name, value));
                    cur = &cur[len + 8..];
                }
                Some(TestOutput::Numbers(ns))
            }
            b'H' => hist_io::decode_set(rest).ok().map(TestOutput::Histograms),
            _ => None,
        }
    }
}

/// How to compare a test output against its reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparator {
    /// Both must be the same yes/no or exit code (bitwise equality of the
    /// output value).
    Exact,
    /// Text comparison ignoring lines containing any of the given markers
    /// (timestamps, hostnames).
    TextDiff {
        /// Substrings marking lines to ignore.
        ignore_markers: Vec<String>,
    },
    /// Named numbers must agree within relative and absolute tolerance.
    Numeric {
        /// Relative tolerance.
        rel_tol: f64,
        /// Absolute tolerance.
        abs_tol: f64,
    },
    /// Histogram sets must be statistically compatible: worst-histogram χ²
    /// p-value at least `min_p_value`.
    HistogramChi2 {
        /// Minimum acceptable p-value.
        min_p_value: f64,
    },
}

impl Comparator {
    /// The standard comparator for a given output flavour.
    pub fn default_for(output: &TestOutput) -> Comparator {
        match output {
            TestOutput::YesNo(_) | TestOutput::ExitCode(_) => Comparator::Exact,
            TestOutput::Text(_) => Comparator::TextDiff {
                ignore_markers: vec!["timestamp".into(), "host".into(), "date".into()],
            },
            TestOutput::Numbers(_) => Comparator::Numeric {
                rel_tol: 1e-9,
                abs_tol: 1e-12,
            },
            TestOutput::Histograms(_) => Comparator::HistogramChi2 { min_p_value: 0.01 },
        }
    }

    /// Compares `new` against `reference`.
    pub fn compare(&self, new: &TestOutput, reference: &TestOutput) -> CompareOutcome {
        match (self, new, reference) {
            (Comparator::Exact, a, b) => {
                if a == b {
                    CompareOutcome::Identical
                } else {
                    CompareOutcome::Differs {
                        detail: format!("outputs differ: {a:?} vs {b:?}"),
                    }
                }
            }
            (Comparator::TextDiff { ignore_markers }, TestOutput::Text(a), TestOutput::Text(b)) => {
                compare_text(a, b, ignore_markers)
            }
            (
                Comparator::Numeric { rel_tol, abs_tol },
                TestOutput::Numbers(a),
                TestOutput::Numbers(b),
            ) => compare_numbers(a, b, *rel_tol, *abs_tol),
            (
                Comparator::HistogramChi2 { min_p_value },
                TestOutput::Histograms(a),
                TestOutput::Histograms(b),
            ) => compare_histograms(a, b, *min_p_value),
            _ => CompareOutcome::Differs {
                detail: "output type changed between runs".to_string(),
            },
        }
    }
}

/// The verdict of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareOutcome {
    /// Bit-identical.
    Identical,
    /// Not identical but within tolerance (p-value or numeric slack).
    WithinTolerance {
        /// Quantitative summary (`worst p = 0.43`).
        detail: String,
    },
    /// Incompatible.
    Differs {
        /// What differed.
        detail: String,
    },
}

impl CompareOutcome {
    /// Whether the comparison passed.
    pub fn passed(&self) -> bool {
        !matches!(self, CompareOutcome::Differs { .. })
    }
}

fn relevant_lines<'a>(text: &'a str, ignore: &[String]) -> Vec<&'a str> {
    text.lines()
        .filter(|line| {
            !ignore
                .iter()
                .any(|m| line.to_lowercase().contains(&m.to_lowercase()))
        })
        .collect()
}

fn compare_text(a: &str, b: &str, ignore: &[String]) -> CompareOutcome {
    if a == b {
        return CompareOutcome::Identical;
    }
    let la = relevant_lines(a, ignore);
    let lb = relevant_lines(b, ignore);
    if la == lb {
        return CompareOutcome::WithinTolerance {
            detail: "differs only in ignored lines".to_string(),
        };
    }
    // First differing line for the report.
    let first_diff = la
        .iter()
        .zip(lb.iter())
        .position(|(x, y)| x != y)
        .map(|i| format!("line {}: '{}' vs '{}'", i + 1, la[i], lb[i]))
        .unwrap_or_else(|| format!("line counts differ: {} vs {}", la.len(), lb.len()));
    CompareOutcome::Differs { detail: first_diff }
}

fn compare_numbers(
    a: &[(String, f64)],
    b: &[(String, f64)],
    rel_tol: f64,
    abs_tol: f64,
) -> CompareOutcome {
    if a.len() != b.len() || a.iter().zip(b).any(|((n1, _), (n2, _))| n1 != n2) {
        return CompareOutcome::Differs {
            detail: "the set of reported numbers changed".to_string(),
        };
    }
    let mut identical = true;
    for ((name, x), (_, y)) in a.iter().zip(b) {
        if x.to_bits() != y.to_bits() {
            identical = false;
        }
        let diff = (x - y).abs();
        let scale = x.abs().max(y.abs());
        if diff > abs_tol && diff > rel_tol * scale {
            return CompareOutcome::Differs {
                detail: format!("'{name}': {x} vs {y} (|Δ| = {diff:.3e})"),
            };
        }
    }
    if identical {
        CompareOutcome::Identical
    } else {
        CompareOutcome::WithinTolerance {
            detail: "numeric agreement within tolerance".to_string(),
        }
    }
}

fn compare_histograms(a: &HistogramSet, b: &HistogramSet, min_p: f64) -> CompareOutcome {
    if a == b {
        return CompareOutcome::Identical;
    }
    if a.names() != b.names() {
        return CompareOutcome::Differs {
            detail: format!(
                "histogram sets differ in content: {:?} vs {:?}",
                a.names(),
                b.names()
            ),
        };
    }
    // Report the worst histogram by p-value.
    let mut worst: Option<(String, f64)> = None;
    for hist in a.iter() {
        let reference = b.get(hist.name()).expect("same names");
        let p = hist.chi2_test(reference).map(|r| r.p_value).unwrap_or(0.0);
        if worst.as_ref().map(|(_, wp)| p < *wp).unwrap_or(true) {
            worst = Some((hist.name().to_string(), p));
        }
    }
    match worst {
        Some((name, p)) if p < min_p => CompareOutcome::Differs {
            detail: format!("histogram '{name}' incompatible: chi2 p = {p:.3e} < {min_p}"),
        },
        Some((name, p)) => CompareOutcome::WithinTolerance {
            detail: format!("worst histogram '{name}': chi2 p = {p:.3}"),
        },
        None => CompareOutcome::Identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_hep::Histogram1D;

    #[test]
    fn output_round_trips() {
        let mut hist = Histogram1D::new("h", 5, 0.0, 5.0);
        hist.fill(2.5);
        let outputs = [
            TestOutput::YesNo(true),
            TestOutput::ExitCode(-11),
            TestOutput::Text("selected 42 events\n".into()),
            TestOutput::Numbers(vec![("mean_q2".into(), 123.456), ("eff".into(), 0.31)]),
            TestOutput::Histograms([hist].into_iter().collect()),
        ];
        for out in outputs {
            let bytes = out.to_bytes();
            assert_eq!(TestOutput::from_bytes(&bytes), Some(out));
        }
    }

    #[test]
    fn exact_comparator() {
        let c = Comparator::Exact;
        assert_eq!(
            c.compare(&TestOutput::YesNo(true), &TestOutput::YesNo(true)),
            CompareOutcome::Identical
        );
        assert!(!c
            .compare(&TestOutput::ExitCode(0), &TestOutput::ExitCode(1))
            .passed());
    }

    #[test]
    fn text_diff_ignores_markers() {
        let c = Comparator::TextDiff {
            ignore_markers: vec!["timestamp".into()],
        };
        let a = TestOutput::Text("events: 42\ntimestamp: 100\n".into());
        let b = TestOutput::Text("events: 42\ntimestamp: 999\n".into());
        assert!(matches!(
            c.compare(&a, &b),
            CompareOutcome::WithinTolerance { .. }
        ));
        let c2 = TestOutput::Text("events: 43\ntimestamp: 100\n".into());
        let outcome = c.compare(&a, &c2);
        assert!(!outcome.passed());
        if let CompareOutcome::Differs { detail } = outcome {
            assert!(detail.contains("42"), "diff should show the line: {detail}");
        }
    }

    #[test]
    fn numeric_tolerances() {
        let c = Comparator::Numeric {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
        };
        let a = TestOutput::Numbers(vec![("x".into(), 1.0)]);
        let close = TestOutput::Numbers(vec![("x".into(), 1.0 + 1e-9)]);
        let far = TestOutput::Numbers(vec![("x".into(), 1.001)]);
        assert_eq!(c.compare(&a, &a), CompareOutcome::Identical);
        assert!(matches!(
            c.compare(&a, &close),
            CompareOutcome::WithinTolerance { .. }
        ));
        assert!(!c.compare(&a, &far).passed());
    }

    #[test]
    fn numeric_name_changes_are_failures() {
        let c = Comparator::Numeric {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
        };
        let a = TestOutput::Numbers(vec![("x".into(), 1.0)]);
        let renamed = TestOutput::Numbers(vec![("y".into(), 1.0)]);
        assert!(!c.compare(&a, &renamed).passed());
    }

    #[test]
    fn histogram_comparator() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let fill = |name: &str, seed: u64, mean: f64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut h = Histogram1D::new(name, 40, -10.0, 20.0);
            for _ in 0..4000 {
                h.fill(sp_hep::rng::normal(&mut rng, mean, 2.0));
            }
            h
        };
        let c = Comparator::HistogramChi2 { min_p_value: 0.01 };
        let a = TestOutput::Histograms([fill("q2", 1, 5.0)].into_iter().collect());
        let same = TestOutput::Histograms([fill("q2", 2, 5.0)].into_iter().collect());
        let shifted = TestOutput::Histograms([fill("q2", 3, 6.5)].into_iter().collect());
        assert!(c.compare(&a, &same).passed());
        assert!(!c.compare(&a, &shifted).passed());
        assert_eq!(c.compare(&a, &a), CompareOutcome::Identical);
    }

    #[test]
    fn type_change_is_failure() {
        let c = Comparator::Exact;
        assert!(!c
            .compare(&TestOutput::YesNo(true), &TestOutput::ExitCode(0))
            .passed());
        let c = Comparator::Numeric {
            rel_tol: 0.1,
            abs_tol: 0.1,
        };
        assert!(!c
            .compare(&TestOutput::Text("x".into()), &TestOutput::Numbers(vec![]))
            .passed());
    }

    #[test]
    fn default_comparators() {
        assert_eq!(
            Comparator::default_for(&TestOutput::YesNo(true)),
            Comparator::Exact
        );
        assert!(matches!(
            Comparator::default_for(&TestOutput::Histograms(HistogramSet::new())),
            Comparator::HistogramChi2 { .. }
        ));
    }
}
