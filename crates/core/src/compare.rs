//! The comparison engine.
//!
//! "This allows the validation of all versions against each other and
//! ensures reproducibility of previous results. … This file may be a simple
//! yes/no, a text file, a histogram, a root file or even a link to a
//! further page, depending on the nature of the test." (§3.3)
//!
//! [`TestOutput`] models those output flavours; [`Comparator`] decides
//! whether a new output is compatible with the reference one.

use sp_hep::hist_io;
use sp_hep::HistogramSet;
use sp_store::{FastDigest, FastHasher, HashingWriter, ObjectId};

/// The output of one validation test, in one of the paper's flavours.
#[derive(Debug, Clone, PartialEq)]
pub enum TestOutput {
    /// A simple yes/no.
    YesNo(bool),
    /// An exit code.
    ExitCode(i32),
    /// A text file (log, cut-flow table).
    Text(String),
    /// A vector of named numbers (counters, means).
    Numbers(Vec<(String, f64)>),
    /// A set of histograms ("a histogram, a root file").
    Histograms(HistogramSet),
}

impl TestOutput {
    /// Core serialiser: emits the deterministic byte encoding piecewise, so
    /// the same code path feeds a buffer ([`encode_into`](Self::encode_into)),
    /// a buffer-plus-digest tee ([`encode_and_digest`](Self::encode_and_digest))
    /// or a digest-only stream ([`digest`](Self::digest)).
    fn encode_with(&self, emit: &mut dyn FnMut(&[u8])) {
        match self {
            TestOutput::YesNo(b) => {
                emit(&[b'Y', *b as u8]);
            }
            TestOutput::ExitCode(c) => {
                emit(b"E");
                emit(&c.to_le_bytes());
            }
            TestOutput::Text(t) => {
                emit(b"T");
                emit(t.as_bytes());
            }
            TestOutput::Numbers(ns) => {
                emit(b"N");
                for (name, value) in ns {
                    let name = clamp_number_name(name);
                    emit(&(name.len() as u16).to_le_bytes());
                    emit(name.as_bytes());
                    emit(&value.to_le_bytes());
                }
            }
            TestOutput::Histograms(set) => {
                emit(b"H");
                hist_io::encode_set_with(set, emit);
            }
        }
    }

    /// Serialises the output for the common storage. Deterministic, so
    /// identical outputs deduplicate to identical object ids.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.encoded_size_hint());
        self.encode_into(&mut v);
        v
    }

    /// Appends the encoding to `out` without allocating a fresh buffer —
    /// the reusable-scratch counterpart of [`to_bytes`](Self::to_bytes).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_size_hint());
        self.encode_with(&mut |bytes| out.extend_from_slice(bytes));
    }

    /// Serialises into `out` (clearing it first) and returns the content
    /// address: one traversal of the output structure with no intermediate
    /// buffers (histograms stream field-wise straight into `out`), then a
    /// single contiguous hash pass — and callers hand the id to
    /// `put_named_prehashed`, so the store never re-hashes the bytes.
    pub fn encode_and_digest(&self, out: &mut Vec<u8>) -> ObjectId {
        out.clear();
        self.encode_into(out);
        ObjectId::for_bytes(out)
    }

    /// The content address of the encoded output, streamed straight into
    /// the hasher — no encoding buffer is materialised, for histograms
    /// included. Equal digests mean bit-identical encodings, so this is
    /// the value the digest-first comparison fast paths key on.
    pub fn digest(&self) -> ObjectId {
        let mut writer = HashingWriter::digest_only();
        self.encode_with(&mut |bytes| writer.write(bytes));
        ObjectId(writer.finish())
    }

    /// The 128-bit [`sp_store::fasthash`] digest of the encoded output,
    /// streamed with no buffer — several times cheaper than
    /// [`digest`](Self::digest). **Process-local only**: equal fast
    /// digests of outputs produced in the same process mean bit-identical
    /// encodings for the digest-first fast paths, but the value is not a
    /// content address, is never persisted, and carries no
    /// collision-resistance guarantee against adversarial inputs — the
    /// SHA-256 [`digest`](Self::digest) remains the identity anything
    /// durable keys on.
    pub fn fast_digest(&self) -> FastDigest {
        let mut hasher = FastHasher::new();
        self.encode_with(&mut |bytes| hasher.update(bytes));
        hasher.finish()
    }

    /// Rough encoded size, used to pre-reserve buffers.
    fn encoded_size_hint(&self) -> usize {
        match self {
            TestOutput::YesNo(_) => 2,
            TestOutput::ExitCode(_) => 5,
            TestOutput::Text(t) => 1 + t.len(),
            TestOutput::Numbers(ns) => {
                1 + ns.iter().map(|(name, _)| 10 + name.len()).sum::<usize>()
            }
            TestOutput::Histograms(set) => 16 + set.len() * 512,
        }
    }

    /// Deserialises an output written by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(data: &[u8]) -> Option<TestOutput> {
        let (&tag, rest) = data.split_first()?;
        match tag {
            b'Y' => Some(TestOutput::YesNo(*rest.first()? != 0)),
            b'E' => Some(TestOutput::ExitCode(i32::from_le_bytes(
                rest.try_into().ok()?,
            ))),
            // Validate UTF-8 in place; only the final String copies.
            b'T' => Some(TestOutput::Text(std::str::from_utf8(rest).ok()?.to_owned())),
            b'N' => {
                let mut ns = Vec::new();
                let mut cur = rest;
                while !cur.is_empty() {
                    if cur.len() < 2 {
                        return None;
                    }
                    let len = u16::from_le_bytes([cur[0], cur[1]]) as usize;
                    cur = &cur[2..];
                    if cur.len() < len + 8 {
                        return None;
                    }
                    let name = std::str::from_utf8(&cur[..len]).ok()?.to_owned();
                    let value = f64::from_le_bytes(cur[len..len + 8].try_into().ok()?);
                    ns.push((name, value));
                    cur = &cur[len + 8..];
                }
                Some(TestOutput::Numbers(ns))
            }
            b'H' => hist_io::decode_set(rest).ok().map(TestOutput::Histograms),
            _ => None,
        }
    }
}

/// Guards the `u16` length prefix of a `Numbers` entry name: a name longer
/// than 65535 bytes cannot be represented and previously truncated the
/// *prefix* silently, corrupting the whole record. Debug builds assert;
/// release builds saturate to the longest valid UTF-8 prefix so the record
/// stays decodable.
fn clamp_number_name(name: &str) -> &str {
    const MAX: usize = u16::MAX as usize;
    if name.len() <= MAX {
        return name;
    }
    debug_assert!(
        name.len() <= MAX,
        "Numbers entry name exceeds the u16 length prefix ({} bytes)",
        name.len()
    );
    let mut end = MAX;
    while !name.is_char_boundary(end) {
        end -= 1;
    }
    &name[..end]
}

/// How to compare a test output against its reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparator {
    /// Both must be the same yes/no or exit code (bitwise equality of the
    /// output value).
    Exact,
    /// Text comparison ignoring lines containing any of the given markers
    /// (timestamps, hostnames).
    TextDiff {
        /// Substrings marking lines to ignore.
        ignore_markers: Vec<String>,
    },
    /// Named numbers must agree within relative and absolute tolerance.
    Numeric {
        /// Relative tolerance.
        rel_tol: f64,
        /// Absolute tolerance.
        abs_tol: f64,
    },
    /// Histogram sets must be statistically compatible: worst-histogram χ²
    /// p-value at least `min_p_value`.
    HistogramChi2 {
        /// Minimum acceptable p-value.
        min_p_value: f64,
    },
}

impl Comparator {
    /// The standard comparator for a given output flavour.
    pub fn default_for(output: &TestOutput) -> Comparator {
        match output {
            TestOutput::YesNo(_) | TestOutput::ExitCode(_) => Comparator::Exact,
            TestOutput::Text(_) => Comparator::TextDiff {
                ignore_markers: vec!["timestamp".into(), "host".into(), "date".into()],
            },
            TestOutput::Numbers(_) => Comparator::Numeric {
                rel_tol: 1e-9,
                abs_tol: 1e-12,
            },
            TestOutput::Histograms(_) => Comparator::HistogramChi2 { min_p_value: 0.01 },
        }
    }

    /// Digest-first fast path: two outputs whose *content addresses* are
    /// equal are bit-identical, so every comparator — `Exact`, `TextDiff`,
    /// `Numeric`, `HistogramChi2` — would return
    /// [`CompareOutcome::Identical`] without either side being decoded
    /// (for histograms this skips the `hist_io` decode and the χ² sweep
    /// entirely). Returns `None` when the digests differ and a full
    /// [`compare`](Self::compare) over the decoded outputs is required.
    pub fn compare_by_id(&self, new: ObjectId, reference: ObjectId) -> Option<CompareOutcome> {
        (new == reference).then_some(CompareOutcome::Identical)
    }

    /// [`compare_by_id`](Self::compare_by_id) on fast digests, for call
    /// sites that have not (and need not) content-address either side:
    /// hashing both encodings with [`TestOutput::fast_digest`] costs a
    /// fraction of two SHA-256 passes. Process-local only — fast digests
    /// must never cross a process or session boundary (see
    /// [`TestOutput::fast_digest`]), so this path is for transient
    /// same-process comparisons; durable digest-first comparisons key on
    /// [`ObjectId`]s via [`compare_by_id`](Self::compare_by_id).
    pub fn compare_by_fast_digest(
        &self,
        new: FastDigest,
        reference: FastDigest,
    ) -> Option<CompareOutcome> {
        (new == reference).then_some(CompareOutcome::Identical)
    }

    /// Compares `new` against `reference`.
    pub fn compare(&self, new: &TestOutput, reference: &TestOutput) -> CompareOutcome {
        match (self, new, reference) {
            (Comparator::Exact, a, b) => {
                if a == b {
                    CompareOutcome::Identical
                } else {
                    CompareOutcome::Differs {
                        detail: format!("outputs differ: {a:?} vs {b:?}"),
                    }
                }
            }
            (Comparator::TextDiff { ignore_markers }, TestOutput::Text(a), TestOutput::Text(b)) => {
                compare_text(a, b, ignore_markers)
            }
            (
                Comparator::Numeric { rel_tol, abs_tol },
                TestOutput::Numbers(a),
                TestOutput::Numbers(b),
            ) => compare_numbers(a, b, *rel_tol, *abs_tol),
            (
                Comparator::HistogramChi2 { min_p_value },
                TestOutput::Histograms(a),
                TestOutput::Histograms(b),
            ) => compare_histograms(a, b, *min_p_value),
            _ => CompareOutcome::Differs {
                detail: "output type changed between runs".to_string(),
            },
        }
    }
}

/// The verdict of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareOutcome {
    /// Bit-identical.
    Identical,
    /// Not identical but within tolerance (p-value or numeric slack).
    WithinTolerance {
        /// Quantitative summary (`worst p = 0.43`).
        detail: String,
    },
    /// Incompatible.
    Differs {
        /// What differed.
        detail: String,
    },
}

impl CompareOutcome {
    /// Whether the comparison passed.
    pub fn passed(&self) -> bool {
        !matches!(self, CompareOutcome::Differs { .. })
    }
}

fn relevant_lines<'a>(text: &'a str, ignore: &[String]) -> Vec<&'a str> {
    text.lines()
        .filter(|line| {
            !ignore
                .iter()
                .any(|m| line.to_lowercase().contains(&m.to_lowercase()))
        })
        .collect()
}

fn compare_text(a: &str, b: &str, ignore: &[String]) -> CompareOutcome {
    if a == b {
        return CompareOutcome::Identical;
    }
    let la = relevant_lines(a, ignore);
    let lb = relevant_lines(b, ignore);
    if la == lb {
        return CompareOutcome::WithinTolerance {
            detail: "differs only in ignored lines".to_string(),
        };
    }
    // First differing line for the report.
    let first_diff = la
        .iter()
        .zip(lb.iter())
        .position(|(x, y)| x != y)
        .map(|i| format!("line {}: '{}' vs '{}'", i + 1, la[i], lb[i]))
        .unwrap_or_else(|| format!("line counts differ: {} vs {}", la.len(), lb.len()));
    CompareOutcome::Differs { detail: first_diff }
}

fn compare_numbers(
    a: &[(String, f64)],
    b: &[(String, f64)],
    rel_tol: f64,
    abs_tol: f64,
) -> CompareOutcome {
    if a.len() != b.len() || a.iter().zip(b).any(|((n1, _), (n2, _))| n1 != n2) {
        return CompareOutcome::Differs {
            detail: "the set of reported numbers changed".to_string(),
        };
    }
    let mut identical = true;
    for ((name, x), (_, y)) in a.iter().zip(b) {
        if x.to_bits() != y.to_bits() {
            identical = false;
        }
        let diff = (x - y).abs();
        let scale = x.abs().max(y.abs());
        if diff > abs_tol && diff > rel_tol * scale {
            return CompareOutcome::Differs {
                detail: format!("'{name}': {x} vs {y} (|Δ| = {diff:.3e})"),
            };
        }
    }
    if identical {
        CompareOutcome::Identical
    } else {
        CompareOutcome::WithinTolerance {
            detail: "numeric agreement within tolerance".to_string(),
        }
    }
}

fn compare_histograms(a: &HistogramSet, b: &HistogramSet, min_p: f64) -> CompareOutcome {
    if a == b {
        return CompareOutcome::Identical;
    }
    if a.names() != b.names() {
        return CompareOutcome::Differs {
            detail: format!(
                "histogram sets differ in content: {:?} vs {:?}",
                a.names(),
                b.names()
            ),
        };
    }
    // Report the worst histogram by p-value.
    let mut worst: Option<(String, f64)> = None;
    for hist in a.iter() {
        let reference = b.get(hist.name()).expect("same names");
        let p = hist.chi2_test(reference).map(|r| r.p_value).unwrap_or(0.0);
        if worst.as_ref().map(|(_, wp)| p < *wp).unwrap_or(true) {
            worst = Some((hist.name().to_string(), p));
        }
    }
    match worst {
        Some((name, p)) if p < min_p => CompareOutcome::Differs {
            detail: format!("histogram '{name}' incompatible: chi2 p = {p:.3e} < {min_p}"),
        },
        Some((name, p)) => CompareOutcome::WithinTolerance {
            detail: format!("worst histogram '{name}': chi2 p = {p:.3}"),
        },
        None => CompareOutcome::Identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_hep::Histogram1D;

    #[test]
    fn output_round_trips() {
        let mut hist = Histogram1D::new("h", 5, 0.0, 5.0);
        hist.fill(2.5);
        let outputs = [
            TestOutput::YesNo(true),
            TestOutput::ExitCode(-11),
            TestOutput::Text("selected 42 events\n".into()),
            TestOutput::Numbers(vec![("mean_q2".into(), 123.456), ("eff".into(), 0.31)]),
            TestOutput::Histograms([hist].into_iter().collect()),
        ];
        for out in outputs {
            let bytes = out.to_bytes();
            assert_eq!(TestOutput::from_bytes(&bytes), Some(out));
        }
    }

    #[test]
    fn encode_into_and_digest_match_to_bytes() {
        let mut hist = Histogram1D::new("h", 5, 0.0, 5.0);
        hist.fill(1.0);
        let outputs = [
            TestOutput::YesNo(false),
            TestOutput::ExitCode(7),
            TestOutput::Text("log line\n".into()),
            TestOutput::Numbers(vec![("x".into(), 1.5)]),
            TestOutput::Histograms([hist].into_iter().collect()),
        ];
        let mut scratch = Vec::new();
        for out in outputs {
            let bytes = out.to_bytes();
            scratch.clear();
            out.encode_into(&mut scratch);
            assert_eq!(scratch, bytes, "encode_into agrees with to_bytes");
            let id = out.encode_and_digest(&mut scratch);
            assert_eq!(
                scratch, bytes,
                "encode_and_digest materialises the encoding"
            );
            assert_eq!(
                id,
                ObjectId::for_bytes(&bytes),
                "teed digest is the content address"
            );
            assert_eq!(out.digest(), id, "streaming digest agrees");
        }
    }

    #[test]
    fn numbers_name_length_boundary_round_trips() {
        // Exactly 65535 bytes: the largest representable name.
        let name = "n".repeat(u16::MAX as usize);
        let out = TestOutput::Numbers(vec![(name.clone(), 2.75)]);
        let bytes = out.to_bytes();
        let decoded = TestOutput::from_bytes(&bytes).expect("boundary name decodes");
        assert_eq!(decoded, out);
        assert_eq!(out.digest(), ObjectId::for_bytes(&bytes));
    }

    /// The saturating guard only applies in release builds (debug builds
    /// assert instead): an over-long name is truncated to the longest
    /// valid UTF-8 prefix and the record stays decodable.
    #[cfg(not(debug_assertions))]
    #[test]
    fn numbers_name_over_limit_saturates() {
        // 65534 ASCII bytes + one 3-byte char straddling the limit: the
        // clamp must back up to the char boundary at 65534.
        let mut name = "a".repeat(u16::MAX as usize - 1);
        name.push('€');
        let out = TestOutput::Numbers(vec![(name, 1.0)]);
        let decoded = TestOutput::from_bytes(&out.to_bytes()).expect("record stays decodable");
        let TestOutput::Numbers(ns) = decoded else {
            panic!("flavour preserved");
        };
        assert_eq!(ns[0].0.len(), u16::MAX as usize - 1);
        assert_eq!(ns[0].1, 1.0);
    }

    #[test]
    fn compare_by_id_short_circuits_equal_digests() {
        let a = TestOutput::Numbers(vec![("x".into(), 1.0)]);
        let b = TestOutput::Numbers(vec![("x".into(), 2.0)]);
        for comparator in [
            Comparator::Exact,
            Comparator::Numeric {
                rel_tol: 1e-9,
                abs_tol: 1e-12,
            },
            Comparator::HistogramChi2 { min_p_value: 0.01 },
        ] {
            assert_eq!(
                comparator.compare_by_id(a.digest(), a.digest()),
                Some(CompareOutcome::Identical)
            );
            assert_eq!(comparator.compare_by_id(a.digest(), b.digest()), None);
        }
    }

    #[test]
    fn fast_digest_short_circuits_like_the_id_path() {
        let mut hist = Histogram1D::new("h", 5, 0.0, 5.0);
        hist.fill(2.5);
        let outputs = [
            TestOutput::YesNo(true),
            TestOutput::ExitCode(-11),
            TestOutput::Text("selected 42 events\n".into()),
            TestOutput::Numbers(vec![("mean_q2".into(), 123.456)]),
            TestOutput::Histograms([hist].into_iter().collect()),
        ];
        for out in &outputs {
            // The streamed fast digest is the fast hash of the encoding.
            assert_eq!(
                out.fast_digest(),
                sp_store::fasthash::hash128(&out.to_bytes())
            );
            let comparator = Comparator::default_for(out);
            assert_eq!(
                comparator.compare_by_fast_digest(out.fast_digest(), out.fast_digest()),
                Some(CompareOutcome::Identical)
            );
        }
        // Distinct outputs fall through to a full compare.
        for pair in outputs.windows(2) {
            assert_eq!(
                Comparator::default_for(&pair[0])
                    .compare_by_fast_digest(pair[0].fast_digest(), pair[1].fast_digest()),
                None
            );
        }
    }

    #[test]
    fn exact_comparator() {
        let c = Comparator::Exact;
        assert_eq!(
            c.compare(&TestOutput::YesNo(true), &TestOutput::YesNo(true)),
            CompareOutcome::Identical
        );
        assert!(!c
            .compare(&TestOutput::ExitCode(0), &TestOutput::ExitCode(1))
            .passed());
    }

    #[test]
    fn text_diff_ignores_markers() {
        let c = Comparator::TextDiff {
            ignore_markers: vec!["timestamp".into()],
        };
        let a = TestOutput::Text("events: 42\ntimestamp: 100\n".into());
        let b = TestOutput::Text("events: 42\ntimestamp: 999\n".into());
        assert!(matches!(
            c.compare(&a, &b),
            CompareOutcome::WithinTolerance { .. }
        ));
        let c2 = TestOutput::Text("events: 43\ntimestamp: 100\n".into());
        let outcome = c.compare(&a, &c2);
        assert!(!outcome.passed());
        if let CompareOutcome::Differs { detail } = outcome {
            assert!(detail.contains("42"), "diff should show the line: {detail}");
        }
    }

    #[test]
    fn numeric_tolerances() {
        let c = Comparator::Numeric {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
        };
        let a = TestOutput::Numbers(vec![("x".into(), 1.0)]);
        let close = TestOutput::Numbers(vec![("x".into(), 1.0 + 1e-9)]);
        let far = TestOutput::Numbers(vec![("x".into(), 1.001)]);
        assert_eq!(c.compare(&a, &a), CompareOutcome::Identical);
        assert!(matches!(
            c.compare(&a, &close),
            CompareOutcome::WithinTolerance { .. }
        ));
        assert!(!c.compare(&a, &far).passed());
    }

    #[test]
    fn numeric_name_changes_are_failures() {
        let c = Comparator::Numeric {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
        };
        let a = TestOutput::Numbers(vec![("x".into(), 1.0)]);
        let renamed = TestOutput::Numbers(vec![("y".into(), 1.0)]);
        assert!(!c.compare(&a, &renamed).passed());
    }

    #[test]
    fn histogram_comparator() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let fill = |name: &str, seed: u64, mean: f64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut h = Histogram1D::new(name, 40, -10.0, 20.0);
            for _ in 0..4000 {
                h.fill(sp_hep::rng::normal(&mut rng, mean, 2.0));
            }
            h
        };
        let c = Comparator::HistogramChi2 { min_p_value: 0.01 };
        let a = TestOutput::Histograms([fill("q2", 1, 5.0)].into_iter().collect());
        let same = TestOutput::Histograms([fill("q2", 2, 5.0)].into_iter().collect());
        let shifted = TestOutput::Histograms([fill("q2", 3, 6.5)].into_iter().collect());
        assert!(c.compare(&a, &same).passed());
        assert!(!c.compare(&a, &shifted).passed());
        assert_eq!(c.compare(&a, &a), CompareOutcome::Identical);
    }

    #[test]
    fn type_change_is_failure() {
        let c = Comparator::Exact;
        assert!(!c
            .compare(&TestOutput::YesNo(true), &TestOutput::ExitCode(0))
            .passed());
        let c = Comparator::Numeric {
            rel_tol: 0.1,
            abs_tol: 0.1,
        };
        assert!(!c
            .compare(&TestOutput::Text("x".into()), &TestOutput::Numbers(vec![]))
            .passed());
    }

    #[test]
    fn default_comparators() {
        assert_eq!(
            Comparator::default_for(&TestOutput::YesNo(true)),
            Comparator::Exact
        );
        assert!(matches!(
            Comparator::default_for(&TestOutput::Histograms(HistogramSet::new())),
            Comparator::HistogramChi2 { .. }
        ));
    }
}
