//! The distributed campaign fleet: many processes, one backlog.
//!
//! The paper's validation system was a *pull* deployment: a central server
//! held the backlog of validation tasks, and many client machines leased
//! work, executed it against their local software environment, and
//! reported results back through the common storage (§3.1). This module
//! is that deployment shape for campaigns:
//!
//! * [`Coordinator`] — plans and enqueues campaigns onto a durable
//!   [`sp_store::WorkQueue`], pre-carving each campaign's run-id range and
//!   recording its virtual-clock origin at submission, then collects the
//!   published [`CampaignReport`]s;
//! * [`Worker`] — the drain loop a worker process runs: lease the next
//!   submission, re-plan it against the local [`SpSystem`] (definitions
//!   are code; only state crosses processes), execute it through a
//!   [`CampaignScheduler`] under the pre-reserved ids and recorded
//!   origin — renewing the lease from the scheduler's progress hook at
//!   every dispatch, task and repetition barrier, so a lease held by a
//!   live worker never expires however long the campaign runs — publish
//!   the report under the lease's fencing token, release, repeat; with
//!   jittered backoff ([`sp_exec::PollLoop`]) while the queue is empty
//!   and patience enough to outwait a crashed sibling's lease expiry.
//!
//! ## Result semantics
//!
//! Nothing about distribution may change what a campaign reports. Three
//! mechanisms carry that guarantee across process boundaries:
//!
//! 1. **pre-carved run-id ranges** — ids are allocated once, at
//!    submission, and stored in the queue record; whichever worker drains
//!    the plan executes under exactly those ids
//!    ([`CampaignScheduler::submit_reserved`]);
//! 2. **recorded origins** — timestamps derive from the origin recorded
//!    at submission ([`CampaignScheduler::execute_from`]), not from the
//!    executing worker's clock position;
//! 3. **experiment-disjoint backlogs** — the coordinator enforces the
//!    same disjointness rule as the in-process scheduler, so campaigns
//!    cannot see each other's references no matter how they distribute.
//!
//! The equivalence property — every fleet-drained report is byte-identical
//! to its solo single-process oracle, and each executing worker's ledger
//! holds exactly the reserved ranges in order — is asserted by
//! `crates/core/tests/fleet_equivalence.rs` for racing workers and for a
//! worker that dies mid-campaign (its lease expires, the work re-leases,
//! and the fencing token keeps any stale commit out).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use sp_exec::{
    Backoff, CancellationToken, PollLoop, PollOutcome, PollStats, ProgressHook, ProgressPoint,
    RetryPolicy,
};
use sp_store::snapshot::wire::{self, Cursor};
use sp_store::{Lease, QueueStats, WorkQueue, WqError};

use crate::campaign::{
    CampaignConfig, CampaignOptions, CampaignPlan, CampaignReport, CampaignScheduler,
    CampaignSummary, CampaignTicket, CellStatus, RunRecord, ScheduleStats,
};
use crate::run::RunId;
use crate::system::{RunConfig, SpSystem, SystemError};

/// Errors from fleet operations.
#[derive(Debug)]
pub enum FleetError {
    /// Planning or execution failed at the system layer.
    System(SystemError),
    /// The queue's lease protocol rejected an operation.
    Queue(WqError),
    /// Filesystem failure talking to the queue directory.
    Io(std::io::Error),
    /// A queue payload did not decode into the expected structure (the
    /// digest validated, but the content is not a campaign record this
    /// build understands).
    Codec(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::System(e) => write!(f, "fleet system error: {e}"),
            FleetError::Queue(e) => write!(f, "fleet queue error: {e}"),
            FleetError::Io(e) => write!(f, "fleet I/O error: {e}"),
            FleetError::Codec(what) => write!(f, "fleet payload undecodable: {what}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<SystemError> for FleetError {
    fn from(e: SystemError) -> Self {
        FleetError::System(e)
    }
}

impl From<WqError> for FleetError {
    fn from(e: WqError) -> Self {
        FleetError::Queue(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

/// Handle to one campaign submitted to the fleet queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FleetTicket {
    /// Position in this coordinator's submission order.
    index: usize,
    /// Queue sequence number of the submission.
    seq: u64,
}

impl FleetTicket {
    /// Position of the campaign in submission order.
    pub fn index(self) -> usize {
        self.index
    }

    /// The underlying queue sequence number.
    pub fn seq(self) -> u64 {
        self.seq
    }
}

struct SubmittedCampaign {
    seq: u64,
    experiments: Vec<String>,
    base: RunId,
    total: u64,
}

/// The submitting side of the fleet: enqueues campaign plans onto the
/// shared queue and collects their reports.
pub struct Coordinator<'a> {
    system: &'a SpSystem,
    queue: &'a WorkQueue,
    submitted: Vec<SubmittedCampaign>,
}

impl<'a> Coordinator<'a> {
    /// Creates a coordinator over a system (for validation and run-id
    /// carving) and the shared queue.
    pub fn new(system: &'a SpSystem, queue: &'a WorkQueue) -> Self {
        Coordinator {
            system,
            queue,
            submitted: Vec::new(),
        }
    }

    /// Plans and enqueues a campaign: validates every experiment and
    /// image up front, rejects overlap with this coordinator's other
    /// submissions (the scheduler's disjointness rule, extended across
    /// processes), pre-carves the contiguous run-id range, and records
    /// the virtual-clock origin the campaign must execute at.
    pub fn submit(&mut self, config: CampaignConfig) -> Result<FleetTicket, FleetError> {
        let plan = CampaignPlan::new(self.system, config.clone())?;
        for earlier in &self.submitted {
            for name in &config.experiments {
                if earlier.experiments.contains(name) {
                    return Err(FleetError::System(SystemError::CampaignConflict(
                        name.clone(),
                    )));
                }
            }
        }
        let total = plan.total_runs() as u64;
        let base = self.system.reserve_run_ids(total);
        let origin = self.system.clock().now();
        let payload = encode_campaign_config(&config);
        let seq = self.queue.submit(&payload, base.0, total, origin)?;
        sp_obs::global().counter("fleet.submissions").incr();
        sp_obs::trace::emit_with("coordinator", "submit", || {
            format!("seq={seq} runs={total}")
        });
        let index = self.submitted.len();
        self.submitted.push(SubmittedCampaign {
            seq,
            experiments: config.experiments,
            base,
            total,
        });
        Ok(FleetTicket { index, seq })
    }

    /// The run-id range `[first, last]` pre-carved for a submission.
    pub fn reserved_run_ids(&self, ticket: FleetTicket) -> Option<(RunId, RunId)> {
        let submission = self.submitted.get(ticket.index)?;
        Some((
            submission.base,
            RunId(submission.base.0 + submission.total.saturating_sub(1)),
        ))
    }

    /// Whether every submission of this coordinator has a trusted report.
    pub fn drained(&self) -> bool {
        self.submitted
            .iter()
            .all(|s| self.queue.report(s.seq).is_some())
    }

    /// Blocks (sleeping with jittered backoff) until the backlog is
    /// drained or the poll budget runs out; returns whether it drained.
    pub fn wait_drained(&self, mut poll: PollLoop) -> bool {
        poll.run(
            || {
                if self.drained() {
                    PollOutcome::Stop
                } else {
                    PollOutcome::Idle
                }
            },
            std::thread::sleep,
        );
        self.drained()
    }

    /// Collects the published reports, in submission order. `None` slots
    /// are campaigns whose report has not (or not trustably) appeared.
    pub fn collect(&self) -> Vec<Option<CampaignReport>> {
        self.submitted
            .iter()
            .enumerate()
            .map(|(index, submission)| {
                let payload = self.queue.report(submission.seq)?;
                decode_campaign_report(&payload, CampaignTicket::from_index(index))
            })
            .collect()
    }
}

/// Counters of one worker process's drain loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Campaigns leased, executed and published by this worker.
    pub campaigns_drained: u64,
    /// Validation runs those campaigns performed **and published**: a
    /// fenced-away execution contributes nothing here — its runs were
    /// rolled back, and whoever re-leases the work (possibly this same
    /// worker) counts them on publication. Each (submission, published
    /// generation) is therefore counted at most once fleet-wide.
    pub runs_executed: u64,
    /// Leases abandoned because their payload would not decode or
    /// execute, plus executions fenced away by mid-flight lease loss.
    pub failures: u64,
    /// Mid-campaign lease renewals driven by the executor's progress
    /// hook (plus between-lease heartbeats, if the caller issues any).
    pub renewals: u64,
    /// Queue operations that hit a transient I/O fault and were retried
    /// under the worker's bounded backoff policy. A flaky disk shows up
    /// here as retries, not as fenced campaigns or poisoned work.
    pub io_retries: u64,
    /// Multi-submission batches flushed through the queue's batched
    /// publish+release path (one reports-dir and one leases-dir fsync
    /// each, however many campaigns the batch carried).
    pub publish_batches: u64,
    /// Scheduling counters accumulated across the drained campaigns.
    pub sched: ScheduleStats,
    /// Poll-loop accounting (worked/idle/slept).
    pub poll: PollStats,
}

impl WorkerStats {
    /// Accumulates another worker's counters (same no-double-counting
    /// argument as [`ScheduleStats::merge`]; sleep durations add).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.campaigns_drained = self
            .campaigns_drained
            .saturating_add(other.campaigns_drained);
        self.runs_executed = self.runs_executed.saturating_add(other.runs_executed);
        self.failures = self.failures.saturating_add(other.failures);
        self.renewals = self.renewals.saturating_add(other.renewals);
        self.io_retries = self.io_retries.saturating_add(other.io_retries);
        self.publish_batches = self.publish_batches.saturating_add(other.publish_batches);
        self.sched.merge(&other.sched);
        self.poll.worked = self.poll.worked.saturating_add(other.poll.worked);
        self.poll.idle = self.poll.idle.saturating_add(other.poll.idle);
        self.poll.slept = self.poll.slept.saturating_add(other.poll.slept);
    }
}

/// The in-flight liveness bridge between one held [`Lease`] and the
/// executor's [`ProgressHook`] ticks.
///
/// The executor raises a tick at every lane dispatch, task completion and
/// repetition barrier; the renewer turns those into lease renewals with a
/// cadence derived from the queue's `lease_secs` — it renews once the
/// remaining lifetime has fallen to half the lease duration, so ticks
/// arriving every few milliseconds cost one clock read, not one disk
/// write each. Renewal is fenced: the first renewal rejected by the
/// queue's lease protocol records the error, cancels the campaign (via
/// the token installed by [`Worker::drain_one`]) and stops renewing —
/// execution winds down promptly instead of burning a full campaign
/// whose publish is already doomed.
struct LeaseRenewer<'a> {
    queue: &'a WorkQueue,
    lease: Mutex<Lease>,
    /// Other leases this worker holds while the active one executes (the
    /// rest of a multi-lease batch: claimed-but-not-yet-executed plus
    /// executed-but-not-yet-published). They are renewed at the same
    /// half-life cadence from the same ticks, so a long campaign cannot
    /// silently expire its batch-mates; a sibling the protocol fences is
    /// dropped into `lost_siblings` (its work re-leases elsewhere)
    /// without cancelling the *active* campaign.
    siblings: Mutex<Vec<Lease>>,
    /// Siblings fenced away while idle, each with the protocol verdict
    /// its renewal hit.
    lost_siblings: Mutex<Vec<(Lease, WqError)>>,
    cancel: Mutex<Option<CancellationToken>>,
    fenced: Mutex<Option<WqError>>,
    renewals: AtomicU64,
    /// Chaos injection for the `repro-fleet` harness: sleep this long at
    /// every repetition barrier, making execution slower than
    /// `lease_secs` while the heartbeat stays live.
    slowdown: Option<Duration>,
}

impl<'a> LeaseRenewer<'a> {
    fn new(queue: &'a WorkQueue, lease: Lease, slowdown: Option<Duration>) -> Self {
        LeaseRenewer {
            queue,
            lease: Mutex::new(lease),
            siblings: Mutex::new(Vec::new()),
            lost_siblings: Mutex::new(Vec::new()),
            cancel: Mutex::new(None),
            fenced: Mutex::new(None),
            renewals: AtomicU64::new(0),
            slowdown,
        }
    }

    /// Installs the batch-mates to keep warm while the active lease's
    /// campaign executes.
    fn with_siblings(self, siblings: Vec<Lease>) -> Self {
        *self.siblings.lock() = siblings;
        self
    }

    /// Hands back the sibling leases (with whatever expiry renewals
    /// reached) and any fenced away mid-flight, each with the verdict
    /// its renewal hit.
    fn take_siblings(&self) -> (Vec<Lease>, Vec<(Lease, WqError)>) {
        (
            std::mem::take(&mut self.siblings.lock()),
            std::mem::take(&mut self.lost_siblings.lock()),
        )
    }

    /// Installs the campaign's cancellation token, tripped on the first
    /// fenced renewal.
    fn set_cancel(&self, token: CancellationToken) {
        *self.cancel.lock() = Some(token);
    }

    /// Snapshot of the held lease (with whatever expiry renewals reached).
    fn lease(&self) -> Lease {
        self.lease.lock().clone()
    }

    /// Renewals performed so far.
    fn renewals(&self) -> u64 {
        self.renewals.load(Ordering::Relaxed)
    }

    /// Takes the first fencing error a renewal hit, if any.
    fn take_fenced(&self) -> Option<WqError> {
        self.fenced.lock().take()
    }

    fn fenced_mid_flight(&self) -> bool {
        self.fenced.lock().is_some()
    }
}

impl ProgressHook for LeaseRenewer<'_> {
    fn tick(&self, point: ProgressPoint) {
        if let Some(slow) = self.slowdown {
            if point == ProgressPoint::Barrier {
                std::thread::sleep(slow);
            }
        }
        if self.fenced_mid_flight() {
            return;
        }
        let mut lease = self.lease.lock();
        // Renew at half-life: late enough to keep renewal I/O off the
        // hot path, early enough that one missed tick cannot cross the
        // expiry boundary.
        let remaining = lease.expires_at.saturating_sub(self.queue.now_secs());
        if remaining.saturating_mul(2) > self.queue.lease_secs() {
            return;
        }
        match self.queue.renew(&mut lease) {
            Ok(_) => {
                self.renewals.fetch_add(1, Ordering::Relaxed);
            }
            Err(WqError::Io(_)) => {
                // A disk hiccup is not a fence: the token is still ours,
                // and ticks arrive far more often than the half-life
                // cadence, so the next one retries with expiry still
                // comfortably distant. If the disk stays broken long
                // enough for the lease to actually lapse, the *protocol*
                // says so on a later renewal (or at publish) and the
                // fenced path below takes over. Cancelling a live
                // campaign on a transient error would turn one flaky
                // read into a wasted execution.
            }
            Err(error) => {
                // Fenced: the lease protocol itself rejected the renewal.
                // Record the error once and stop the campaign — its
                // publish can no longer land.
                *self.fenced.lock() = Some(error);
                if let Some(token) = self.cancel.lock().as_ref() {
                    token.cancel();
                }
                return;
            }
        }
        drop(lease);
        // Keep the rest of the batch warm at the same cadence. A fenced
        // *sibling* is not a fenced *campaign*: the idle lease's work
        // simply re-leases elsewhere, so we drop it from the batch and
        // keep executing.
        let mut siblings = self.siblings.lock();
        let mut idx = 0;
        while idx < siblings.len() {
            let remaining = siblings[idx]
                .expires_at
                .saturating_sub(self.queue.now_secs());
            if remaining.saturating_mul(2) > self.queue.lease_secs() {
                idx += 1;
                continue;
            }
            match self.queue.renew(&mut siblings[idx]) {
                Ok(_) => {
                    self.renewals.fetch_add(1, Ordering::Relaxed);
                    idx += 1;
                }
                Err(WqError::Io(_)) => {
                    // Same tolerance as the active lease: retry next tick.
                    idx += 1;
                }
                Err(error) => {
                    let lost = siblings.remove(idx);
                    self.lost_siblings.lock().push((lost, error));
                }
            }
        }
    }
}

/// The draining side of the fleet: one per worker process.
pub struct Worker<'a> {
    system: &'a SpSystem,
    queue: &'a WorkQueue,
    name: String,
    threads: usize,
    max_idle_polls: u32,
    /// How many submissions one poll may claim and drain as a batch
    /// (see [`with_lease_batch`](Self::with_lease_batch)).
    lease_batch: usize,
    /// Chaos injection: per-barrier sleep handed to the [`LeaseRenewer`]
    /// (see [`with_slowdown`](Self::with_slowdown)).
    slowdown: Option<Duration>,
    /// Durable run-history log (see [`with_run_log`](Self::with_run_log)):
    /// when present, every published campaign's cell outcomes are appended
    /// as `SPRL` records *before* the report publish, so a trusted report
    /// always has its history on disk.
    run_log: Option<sp_store::RunLog>,
    poisoned: std::cell::RefCell<std::collections::BTreeSet<u64>>,
    /// Submissions this worker has seen a trusted report for. A trusted
    /// report is permanent, so caching saves re-reading reports (and the
    /// submission payloads behind them) on every idle poll.
    completed: std::cell::RefCell<std::collections::BTreeSet<u64>>,
    /// Submissions whose record failed its digest. Queue records are
    /// write-once (created exclusively), so corruption is permanent too.
    invalid: std::cell::RefCell<std::collections::BTreeSet<u64>>,
    /// Bounded transient-fault retry for queue I/O: EINTR-class errors
    /// are re-attempted with jittered backoff before they surface, so a
    /// flaky disk degrades to retries instead of fenced campaigns.
    retry: std::cell::RefCell<RetryPolicy>,
}

impl<'a> Worker<'a> {
    /// Creates a worker draining `queue` into `system` with a
    /// `threads`-wide scheduler pool per campaign. The idle patience
    /// defaults to comfortably more than one lease duration, so a worker
    /// waiting on a crashed sibling's lease outlasts the expiry instead
    /// of giving up just before the work becomes reclaimable.
    pub fn new(
        system: &'a SpSystem,
        queue: &'a WorkQueue,
        name: impl Into<String>,
        threads: usize,
    ) -> Self {
        // Backoff caps at 500 ms; budget at least ~4x the lease duration
        // of consecutive idle sleeps (and never fewer than 40 polls).
        let max_idle_polls = (queue.lease_secs().saturating_mul(8)).clamp(40, 100_000) as u32;
        let name = name.into();
        let retry = RetryPolicy::for_disk(sp_store::fnv64(&name));
        Worker {
            system,
            queue,
            name,
            threads: threads.max(1),
            max_idle_polls,
            lease_batch: 4,
            slowdown: None,
            run_log: None,
            poisoned: std::cell::RefCell::new(std::collections::BTreeSet::new()),
            completed: std::cell::RefCell::new(std::collections::BTreeSet::new()),
            invalid: std::cell::RefCell::new(std::collections::BTreeSet::new()),
            retry: std::cell::RefCell::new(retry),
        }
    }

    /// Runs a queue operation under the worker's transient-retry policy.
    fn retry_io<T>(&self, op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        self.retry.borrow_mut().run(op)
    }

    /// Like [`retry_io`](Self::retry_io) for operations speaking the
    /// lease protocol: only the [`WqError::Io`] variant is retryable —
    /// a protocol rejection (stale, expired, released) is a *verdict*,
    /// not a fault, and surfaces immediately.
    fn retry_wq<T>(&self, mut op: impl FnMut() -> Result<T, WqError>) -> Result<T, WqError> {
        let mut protocol = None;
        let result = self.retry.borrow_mut().run(|| match op() {
            Ok(value) => Ok(value),
            Err(WqError::Io(error)) => Err(error),
            Err(verdict) => {
                protocol = Some(verdict);
                // Non-transient by construction, so the policy surfaces
                // it on this very attempt; the placeholder never escapes.
                Err(std::io::Error::other("lease protocol verdict"))
            }
        });
        match result {
            Ok(value) => Ok(value),
            Err(error) => Err(protocol.map_or(WqError::Io(error), |verdict| verdict)),
        }
    }

    /// Whether every submission on the queue has reached a terminal state
    /// — completed (trusted report), permanently invalid (corrupt
    /// record), or durably poisoned — the worker's exit condition,
    /// evaluated against the per-worker caches so each payload is read
    /// and digest-checked at most once per worker rather than on every
    /// idle poll.
    fn backlog_complete(&self) -> bool {
        // A failed listing is *not* an empty backlog: concluding
        // "complete" off a disk hiccup would make the worker exit with
        // work still pending. Stay incomplete and let the next poll look
        // again.
        let Ok(seqs) = self.queue.submission_seqs_checked() else {
            return false;
        };
        let mut complete = true;
        for seq in seqs {
            if self.completed.borrow().contains(&seq) || self.invalid.borrow().contains(&seq) {
                continue;
            }
            if self.queue.report(seq).is_some() {
                self.completed.borrow_mut().insert(seq);
            } else if self.queue.is_poisoned(seq) {
                self.invalid.borrow_mut().insert(seq);
            } else {
                // Only a *successful* read proving the record absent or
                // corrupt may mark it terminally invalid; a read error
                // proves nothing and must keep the backlog open.
                match self.queue.submission_checked(seq) {
                    Ok(None) => {
                        self.invalid.borrow_mut().insert(seq);
                    }
                    Ok(Some(_)) | Err(_) => complete = false,
                }
            }
        }
        complete
    }

    /// Overrides how many consecutive empty polls the drain loop tolerates
    /// before concluding the backlog is done (minimum 1).
    pub fn with_patience(mut self, max_idle_polls: u32) -> Self {
        self.max_idle_polls = max_idle_polls.max(1);
        self
    }

    /// Overrides how many submissions one poll may claim and drain as a
    /// batch (minimum 1; the default is 4). Batching amortises the
    /// queue's durable-publish cost — one parent-directory sync per
    /// flushed batch instead of one per report — at the price of holding
    /// the batch-mates' leases for the whole batch (renewed from the
    /// active campaign's progress ticks, so they cannot silently lapse).
    pub fn with_lease_batch(mut self, max: usize) -> Self {
        self.lease_batch = max.max(1);
        self
    }

    /// Chaos injection for the `repro-fleet` harness: sleep this long at
    /// every repetition barrier, so a campaign's wall time exceeds
    /// `lease_secs` while the progress-hook renewal keeps the lease
    /// alive. This is the "slow worker" scenario — distinct from a
    /// *stalled* worker, whose execution (and therefore its heartbeat)
    /// stops entirely and whose lease is rightly fenced away.
    pub fn with_slowdown(mut self, per_barrier: Duration) -> Self {
        self.slowdown = (!per_barrier.is_zero()).then_some(per_barrier);
        self
    }

    /// Attaches a durable run log: every campaign this worker publishes
    /// also appends one `SPRL` record per executed run — (campaign,
    /// experiment, image, repetition, status, virtual timing, worker,
    /// lease generation) — with the append ordered strictly *before* the
    /// report publish, so a trusted report implies a logged history.
    /// Record content derives deterministically from the submission
    /// (pre-reserved ids, recorded origin), so a fenced-away appender's
    /// records are byte-equal to the eventual winner's and read-side
    /// dedup by (campaign, run id) collapses them.
    pub fn with_run_log(mut self, log: sp_store::RunLog) -> Self {
        self.run_log = Some(log);
        self
    }

    /// The worker's holder identity on the queue.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tries to lease and fully drain one submission. Returns the drained
    /// sequence number, or `None` when nothing was claimable right now.
    ///
    /// Failure handling is tiered by what the failure proves:
    ///
    /// * **undecodable payload** — the digest validated but no build of
    ///   this code can interpret the bytes, on this machine or any other:
    ///   the submission is durably poisoned on the queue so siblings and
    ///   restarted workers never re-lease it;
    /// * **local plan/execution failure** — this worker's environment
    ///   cannot run it (missing experiment, missing image): released and
    ///   locally skipped; a sibling with a richer environment may drain;
    /// * **fenced mid-flight** — the lease expired (or was superseded)
    ///   while executing, caught either by a renewal or at publish: the
    ///   locally absorbed runs and reference promotions are **rolled
    ///   back**, nothing is counted as executed, and the work stays
    ///   pending — re-leasing it (possibly by this very worker) is
    ///   indistinguishable from leasing a stranger's;
    /// * **transient queue I/O fault** — retried under bounded backoff
    ///   before any of the above verdicts is reached; retries that
    ///   exhaust surface as [`FleetError::Io`] with the lease handed
    ///   back, leaving the work pending rather than poisoned.
    pub fn drain_one(&self, stats: &mut WorkerStats) -> Result<Option<u64>, FleetError> {
        let before = self.retry.borrow().retries();
        let result = self.drain_one_inner(stats);
        stats.io_retries = stats
            .io_retries
            .saturating_add(self.retry.borrow().retries().saturating_sub(before));
        result
    }

    fn drain_one_inner(&self, stats: &mut WorkerStats) -> Result<Option<u64>, FleetError> {
        let poisoned = self.poisoned.borrow().clone();
        // Scan sequence numbers only (a directory listing); the payload is
        // read and digest-checked once, *after* winning the lease, rather
        // than on every poll of every worker.
        for seq in self.retry_io(|| self.queue.submission_seqs_checked())? {
            if poisoned.contains(&seq)
                || self.completed.borrow().contains(&seq)
                || self.invalid.borrow().contains(&seq)
            {
                continue;
            }
            let Some(lease) = self.retry_io(|| self.queue.try_lease(seq, &self.name))? else {
                continue;
            };
            // Distinguish *can't read* from *read garbage*: a transient
            // I/O failure is retried and, if it persists, surfaces with
            // the lease released and the work still pending — it proves
            // nothing about the record. Only a digest failure on bytes we
            // actually read (`Ok(None)` below, after the queue quarantines
            // the file) or an undecodable validated payload is terminal.
            let submission = match self.retry_io(|| self.queue.submission_checked(seq)) {
                Ok(Some(submission)) => submission,
                Ok(None) => {
                    // Vanished or corrupt (already moved to quarantine by
                    // the read): permanently undrainable, but not this
                    // worker's fault and nothing to poison — the record
                    // is gone.
                    stats.failures += 1;
                    self.invalid.borrow_mut().insert(seq);
                    let _ = self.queue.release(&lease);
                    return Ok(None);
                }
                Err(error) => {
                    stats.failures += 1;
                    let _ = self.queue.release(&lease);
                    return Err(error.into());
                }
            };
            let Some(config) = decode_campaign_config(&submission.payload) else {
                // The digest validated but no build of this code can
                // interpret the bytes — undecodable anywhere, forever:
                // poison durably so no process — this one restarted, or
                // a sibling that never saw this failure — burns leases
                // on it again.
                let error = FleetError::Codec(format!("submission {seq}"));
                stats.failures += 1;
                let _ = self
                    .queue
                    .mark_poisoned(seq, &self.name, &error.to_string());
                self.invalid.borrow_mut().insert(seq);
                let _ = self.queue.release(&lease);
                sp_obs::global().counter("fleet.poison_marks").incr();
                sp_obs::trace::emit_with("worker", "poison", || format!("seq={seq}"));
                return Err(error);
            };

            // Checkpoint what a fenced-away execution must roll back: the
            // campaign's reference maps as they stand before any of its
            // lanes promote into them. (The run log needs no checkpoint —
            // the pre-reserved id range identifies exactly the entries to
            // retract.)
            let ledger = self.system.ledger();
            let checkpoint: Vec<(String, crate::ledger::ReferenceState)> = config
                .experiments
                .iter()
                .map(|name| (name.clone(), ledger.reference_state(name)))
                .collect();

            let renewer = LeaseRenewer::new(self.queue, lease, self.slowdown);
            let outcome = self.execute_leased(&submission, config, &renewer);
            stats.renewals += renewer.renewals();
            match outcome {
                Ok((report, sched)) if !renewer.fenced_mid_flight() => {
                    let lease = renewer.lease();
                    if let Some(log) = &self.run_log {
                        let cells = run_log_cells(seq, &report, &self.name, lease.token);
                        if let Err(error) = self.retry_io(|| log.append_batch(&cells)) {
                            // The history could not be committed, so the
                            // report must not publish (log-before-publish
                            // invariant): roll back, hand the lease back,
                            // surface — the work stays pending.
                            self.roll_back_fenced(&submission, checkpoint);
                            stats.failures += 1;
                            let _ = self.queue.release(&lease);
                            return Err(error.into());
                        }
                        sp_obs::global()
                            .counter("fleet.cells_logged")
                            .add(cells.len() as u64);
                    }
                    let payload = encode_campaign_report(&report);
                    match self.retry_wq(|| self.queue.publish_report(&lease, &payload)) {
                        Ok(()) => {
                            sp_obs::global().counter("fleet.publishes").incr();
                            sp_obs::trace::emit_with("worker", "publish", || {
                                format!("seq={seq} token={}", lease.token)
                            });
                        }
                        Err(
                            error @ (WqError::StaleLease { .. }
                            | WqError::Expired { .. }
                            | WqError::AlreadyReleased { .. }),
                        ) => {
                            // The lease ran out between the last renewal
                            // point and the publish, and the fencing token
                            // kept this commit from landing. Nothing was
                            // drained: roll the local absorption back and
                            // leave the work pending for the next
                            // generation.
                            self.roll_back_fenced(&submission, checkpoint);
                            stats.failures += 1;
                            return Err(error.into());
                        }
                        Err(error) => {
                            // Hard I/O failure that outlasted the retry
                            // budget: no trusted report landed, so the
                            // execution never officially happened. Roll
                            // back, hand the lease back (best effort —
                            // expiry reclaims it otherwise) and surface;
                            // the work stays pending for a healthier
                            // sibling or a later retry.
                            self.roll_back_fenced(&submission, checkpoint);
                            stats.failures += 1;
                            let _ = self.queue.release(&lease);
                            return Err(error.into());
                        }
                    }
                    stats.campaigns_drained += 1;
                    stats.runs_executed += report.summary.total_runs() as u64;
                    stats.sched.merge(&sched);
                    match self.retry_wq(|| self.queue.release(&lease)) {
                        Ok(())
                        // The report is already published and fenced; a
                        // release lost to expiry or supersession does not
                        // undo completed work.
                        | Err(WqError::StaleLease { .. })
                        | Err(WqError::Expired { .. })
                        | Err(WqError::AlreadyReleased { .. }) => {}
                        Err(error) => return Err(error.into()),
                    }
                    self.completed.borrow_mut().insert(seq);
                    return Ok(Some(seq));
                }
                Ok(_) => {
                    // A renewal hit the fencing error mid-flight and
                    // cancelled the campaign: whatever partial execution
                    // was absorbed locally never officially happened.
                    self.roll_back_fenced(&submission, checkpoint);
                    stats.failures += 1;
                    sp_obs::global().counter("fleet.fenced").incr();
                    sp_obs::trace::emit_with("worker", "fenced", || format!("seq={seq}"));
                    let error = renewer
                        .take_fenced()
                        .expect("fenced_mid_flight implies a recorded error");
                    return Err(error.into());
                }
                Err(error) => {
                    // Plan or execution failure in *this* environment:
                    // roll back any partial absorption, hand the lease
                    // back cleanly (if that fails too, it simply
                    // expires), and skip locally — a richer sibling may
                    // still drain it.
                    self.roll_back_fenced(&submission, checkpoint);
                    stats.failures += 1;
                    self.poisoned.borrow_mut().insert(seq);
                    let _ = self.queue.release(&renewer.lease());
                    return Err(error);
                }
            }
        }
        Ok(None)
    }

    /// Retracts a fenced-away (or failed) execution's local absorption:
    /// every logged run in the submission's pre-reserved id range, and
    /// the campaign's reference promotions, restored to the checkpoint
    /// captured before execution. Memoised cells and content-addressed
    /// outputs are left alone — they are deterministic byproducts, and
    /// re-executing against them reproduces byte-identical results.
    fn roll_back_fenced(
        &self,
        submission: &sp_store::QueueSubmission,
        checkpoint: Vec<(String, crate::ledger::ReferenceState)>,
    ) {
        let ledger = self.system.ledger();
        ledger.retract_range(RunId(submission.base_run_id), submission.total_runs);
        for (experiment, state) in checkpoint {
            ledger.restore_reference_state(&experiment, state);
        }
    }

    /// Executes one leased submission on the local system: re-plan from
    /// the decoded config (validating against *this* process's registered
    /// images and experiments), then run it through a single-campaign
    /// scheduler under the pre-reserved ids and the origin recorded at
    /// submission — with the lease renewer installed as the scheduler's
    /// progress hook, so the lease is renewed from inside the repetition
    /// loop however long the campaign runs.
    fn execute_leased(
        &self,
        submission: &sp_store::QueueSubmission,
        config: CampaignConfig,
        renewer: &LeaseRenewer<'_>,
    ) -> Result<(CampaignReport, ScheduleStats), FleetError> {
        let plan = CampaignPlan::new(self.system, config)?;
        if plan.total_runs() as u64 != submission.total_runs {
            return Err(FleetError::Codec(format!(
                "submission {} plans {} runs but reserved {}",
                submission.seq,
                plan.total_runs(),
                submission.total_runs
            )));
        }
        let mut scheduler =
            CampaignScheduler::new(self.system, self.threads).with_progress(renewer);
        let ticket = scheduler.submit_reserved(plan, RunId(submission.base_run_id))?;
        if let Some(token) = scheduler.cancellation_token(ticket) {
            renewer.set_cancel(token);
        }
        let mut reports = scheduler.execute_from(submission.origin)?;
        let report = reports.remove(0);
        Ok((report, scheduler.stats()))
    }

    /// Tries to lease up to the batch width of submissions in one claim
    /// and drain them together: payloads are read and decoded up front,
    /// the campaigns execute sequentially (each batch-mate's lease
    /// renewed from the active campaign's progress ticks, so idle leases
    /// cannot silently lapse under a long campaign), and every report is
    /// flushed through the queue's batched publish+release path — one
    /// parent-directory sync per batch instead of one per report.
    ///
    /// Per-item failure handling is exactly [`drain_one`](Self::drain_one)'s
    /// tiers; a failed item is dropped from the batch (poisoned, released
    /// or rolled back per its tier) without abandoning its batch-mates.
    /// Per-item reference rollback is sound because the coordinator
    /// rejects experiment overlap across submissions
    /// ([`Coordinator::submit`]), so two batched campaigns never promote
    /// into the same experiment's reference map.
    ///
    /// Returns the drained sequence numbers (empty when nothing was
    /// claimable). When nothing drained but an item failed, the first
    /// failure surfaces as the error.
    pub fn drain_batch(&self, stats: &mut WorkerStats) -> Result<Vec<u64>, FleetError> {
        let before = self.retry.borrow().retries();
        let result = self.drain_batch_inner(stats);
        stats.io_retries = stats
            .io_retries
            .saturating_add(self.retry.borrow().retries().saturating_sub(before));
        result
    }

    fn drain_batch_inner(&self, stats: &mut WorkerStats) -> Result<Vec<u64>, FleetError> {
        struct PendingPublish {
            seq: u64,
            submission: sp_store::QueueSubmission,
            checkpoint: Vec<(String, crate::ledger::ReferenceState)>,
            payload: Vec<u8>,
            total_runs: u64,
            sched: ScheduleStats,
            /// `SPRL` records to append before the batch flush (empty when
            /// the worker carries no run log).
            cells: Vec<sp_store::CellRecord>,
        }

        let mut first_error: Option<FleetError> = None;
        let record_error = |error: FleetError, first: &mut Option<FleetError>| {
            if first.is_none() {
                *first = Some(error);
            }
        };

        // Phase 1 — claim. One scan, up to `lease_batch` exclusive-create
        // lease claims, one leases-directory sync for the whole batch.
        let skip: std::collections::BTreeSet<u64> = {
            let poisoned = self.poisoned.borrow();
            let completed = self.completed.borrow();
            let invalid = self.invalid.borrow();
            poisoned
                .iter()
                .chain(completed.iter())
                .chain(invalid.iter())
                .copied()
                .collect()
        };
        let leases = self.retry_io(|| {
            self.queue
                .try_lease_batch(&self.name, self.lease_batch, |seq| !skip.contains(&seq))
        })?;
        if leases.is_empty() {
            return Ok(Vec::new());
        }
        let mut held: std::collections::BTreeMap<u64, Lease> =
            leases.into_iter().map(|lease| (lease.seq, lease)).collect();

        // Phase 2 — read and decode every claimed payload, applying the
        // same failure tiers as `drain_one`: a dropped item releases its
        // lease (or poisons durably) without abandoning its batch-mates.
        let mut decoded: Vec<(u64, sp_store::QueueSubmission, CampaignConfig)> = Vec::new();
        for seq in held.keys().copied().collect::<Vec<_>>() {
            let submission = match self.retry_io(|| self.queue.submission_checked(seq)) {
                Ok(Some(submission)) => submission,
                Ok(None) => {
                    stats.failures += 1;
                    self.invalid.borrow_mut().insert(seq);
                    if let Some(lease) = held.remove(&seq) {
                        let _ = self.queue.release(&lease);
                    }
                    continue;
                }
                Err(error) => {
                    stats.failures += 1;
                    if let Some(lease) = held.remove(&seq) {
                        let _ = self.queue.release(&lease);
                    }
                    record_error(error.into(), &mut first_error);
                    continue;
                }
            };
            let Some(config) = decode_campaign_config(&submission.payload) else {
                let error = FleetError::Codec(format!("submission {seq}"));
                stats.failures += 1;
                let _ = self
                    .queue
                    .mark_poisoned(seq, &self.name, &error.to_string());
                self.invalid.borrow_mut().insert(seq);
                if let Some(lease) = held.remove(&seq) {
                    let _ = self.queue.release(&lease);
                }
                record_error(error, &mut first_error);
                continue;
            };
            decoded.push((seq, submission, config));
        }

        // Phase 3 — execute sequentially. The active campaign's renewer
        // carries every other held lease (not-yet-executed batch-mates
        // plus executed-but-unpublished ones) as siblings, renewing them
        // at the same half-life cadence; a sibling the protocol fences is
        // dropped from the batch without cancelling the active campaign.
        let mut lost: std::collections::BTreeMap<u64, (Lease, WqError)> =
            std::collections::BTreeMap::new();
        // A lost sibling's verdict may be a *misread* of a live record on
        // a faulty disk (`NotHeld`), not only a genuine supersession:
        // hand such leases back best-effort (release is verify-guarded,
        // so a truly fenced lease shrugs it off) so the work re-leases
        // now instead of after a full expiry.
        let hand_back_lost = |lease: &Lease, error: &WqError| {
            if !matches!(
                error,
                WqError::StaleLease { .. }
                    | WqError::Expired { .. }
                    | WqError::AlreadyReleased { .. }
            ) {
                let _ = self.queue.release(lease);
            }
        };
        let mut pending: Vec<PendingPublish> = Vec::new();
        for (seq, submission, config) in decoded {
            if let Some((lease, error)) = lost.remove(&seq) {
                // Fenced away while idle: never executed here, nothing to
                // roll back — the work re-leases elsewhere.
                hand_back_lost(&lease, &error);
                stats.failures += 1;
                record_error(error.into(), &mut first_error);
                continue;
            }
            let Some(lease) = held.remove(&seq) else {
                continue;
            };
            let ledger = self.system.ledger();
            let checkpoint: Vec<(String, crate::ledger::ReferenceState)> = config
                .experiments
                .iter()
                .map(|name| (name.clone(), ledger.reference_state(name)))
                .collect();
            let siblings: Vec<Lease> = std::mem::take(&mut held).into_values().collect();
            let renewer =
                LeaseRenewer::new(self.queue, lease, self.slowdown).with_siblings(siblings);
            let outcome = self.execute_leased(&submission, config, &renewer);
            stats.renewals += renewer.renewals();
            let (returned, lost_now) = renewer.take_siblings();
            for sibling in returned {
                held.insert(sibling.seq, sibling);
            }
            lost.extend(
                lost_now
                    .into_iter()
                    .map(|(lease, error)| (lease.seq, (lease, error))),
            );
            // A pending-publish batch-mate fenced while idle can no
            // longer land its report: roll its absorption back now.
            let mut kept = Vec::with_capacity(pending.len());
            for item in pending {
                if let Some((lease, error)) = lost.remove(&item.seq) {
                    self.roll_back_fenced(&item.submission, item.checkpoint);
                    hand_back_lost(&lease, &error);
                    stats.failures += 1;
                    record_error(error.into(), &mut first_error);
                } else {
                    kept.push(item);
                }
            }
            pending = kept;
            match outcome {
                Ok((report, sched)) if !renewer.fenced_mid_flight() => {
                    let lease = renewer.lease();
                    let cells = self
                        .run_log
                        .as_ref()
                        .map(|_| run_log_cells(seq, &report, &self.name, lease.token))
                        .unwrap_or_default();
                    held.insert(seq, lease);
                    pending.push(PendingPublish {
                        seq,
                        submission,
                        checkpoint,
                        payload: encode_campaign_report(&report),
                        total_runs: report.summary.total_runs() as u64,
                        sched,
                        cells,
                    });
                }
                Ok(_) => {
                    self.roll_back_fenced(&submission, checkpoint);
                    stats.failures += 1;
                    let error = renewer
                        .take_fenced()
                        .expect("fenced_mid_flight implies a recorded error");
                    record_error(error.into(), &mut first_error);
                }
                Err(error) => {
                    self.roll_back_fenced(&submission, checkpoint);
                    stats.failures += 1;
                    self.poisoned.borrow_mut().insert(seq);
                    let _ = self.queue.release(&renewer.lease());
                    record_error(error, &mut first_error);
                }
            }
        }

        // Phase 4 — append every surviving item's run history (one
        // batched `SPRL` append, one cells-directory sync), then flush
        // the reports through the batched publish+release path: one
        // reports-directory sync commits the whole batch, then one
        // leases-directory sync releases it. The history append comes
        // strictly first so a trusted report always implies logged cells;
        // an item whose history cannot commit is dropped from the flush
        // (rolled back, lease handed back) without abandoning its mates.
        if let Some(log) = &self.run_log {
            let mut kept = Vec::with_capacity(pending.len());
            for item in pending {
                match self.retry_io(|| log.append_batch(&item.cells)) {
                    Ok(_) => {
                        sp_obs::global()
                            .counter("fleet.cells_logged")
                            .add(item.cells.len() as u64);
                        kept.push(item);
                    }
                    Err(error) => {
                        self.roll_back_fenced(&item.submission, item.checkpoint);
                        stats.failures += 1;
                        if let Some(lease) = held.remove(&item.seq) {
                            let _ = self.queue.release(&lease);
                        }
                        record_error(error.into(), &mut first_error);
                    }
                }
            }
            pending = kept;
        }
        let mut drained: Vec<u64> = Vec::new();
        if !pending.is_empty() {
            let batch_leases: Vec<Lease> = pending
                .iter()
                .map(|item| {
                    held.remove(&item.seq)
                        .expect("pending item's lease is held")
                })
                .collect();
            let items: Vec<(&Lease, &[u8])> = batch_leases
                .iter()
                .zip(pending.iter())
                .map(|(lease, item)| (lease, item.payload.as_slice()))
                .collect();
            let verdicts = self.queue.publish_and_release_batch(&items);
            stats.publish_batches += 1;
            for ((item, lease), verdict) in
                pending.into_iter().zip(batch_leases.iter()).zip(verdicts)
            {
                match verdict {
                    Ok(()) => {}
                    Err(WqError::Io(_)) => {
                        // The batched flush failed on I/O: fall back to
                        // the per-report durable publish under the
                        // bounded retry policy (byte-identical bytes, so
                        // a torn batch attempt is harmless).
                        match self.retry_wq(|| self.queue.publish_report(lease, &item.payload)) {
                            Ok(()) => match self.retry_wq(|| self.queue.release(lease)) {
                                Ok(())
                                | Err(WqError::StaleLease { .. })
                                | Err(WqError::Expired { .. })
                                | Err(WqError::AlreadyReleased { .. }) => {}
                                Err(error) => {
                                    record_error(error.into(), &mut first_error);
                                }
                            },
                            Err(
                                error @ (WqError::StaleLease { .. }
                                | WqError::Expired { .. }
                                | WqError::AlreadyReleased { .. }),
                            ) => {
                                self.roll_back_fenced(&item.submission, item.checkpoint);
                                stats.failures += 1;
                                record_error(error.into(), &mut first_error);
                                continue;
                            }
                            Err(error) => {
                                self.roll_back_fenced(&item.submission, item.checkpoint);
                                stats.failures += 1;
                                let _ = self.queue.release(lease);
                                record_error(error.into(), &mut first_error);
                                continue;
                            }
                        }
                    }
                    Err(
                        error @ (WqError::StaleLease { .. }
                        | WqError::Expired { .. }
                        | WqError::AlreadyReleased { .. }),
                    ) => {
                        // Genuine fence: the lease lapsed between the
                        // last renewal and the flush, and the fencing
                        // token kept the commit from landing.
                        self.roll_back_fenced(&item.submission, item.checkpoint);
                        stats.failures += 1;
                        record_error(error.into(), &mut first_error);
                        continue;
                    }
                    Err(error) => {
                        // `NotHeld` can be a *misread* of a live lease
                        // record on a faulty disk, not only a genuine
                        // supersession: hand the lease back best-effort
                        // (release is verify-guarded, so a truly fenced
                        // lease shrugs it off) so the work re-leases now
                        // instead of after a full expiry.
                        self.roll_back_fenced(&item.submission, item.checkpoint);
                        stats.failures += 1;
                        let _ = self.queue.release(lease);
                        record_error(error.into(), &mut first_error);
                        continue;
                    }
                }
                stats.campaigns_drained += 1;
                stats.runs_executed += item.total_runs;
                stats.sched.merge(&item.sched);
                self.completed.borrow_mut().insert(item.seq);
                sp_obs::global().counter("fleet.publishes").incr();
                sp_obs::trace::emit_with("worker", "publish", || {
                    format!("seq={} token={}", item.seq, lease.token)
                });
                drained.push(item.seq);
            }
        }

        if drained.is_empty() {
            if let Some(error) = first_error {
                return Err(error);
            }
        }
        Ok(drained)
    }

    /// The worker main loop: drain until the backlog is complete (or the
    /// idle budget runs out), then publish this worker's counters to the
    /// queue so any process can merge them into a fleet digest. Each poll
    /// claims and drains up to a [`with_lease_batch`](Self::with_lease_batch)
    /// of submissions through the batched publish+release path.
    pub fn drain(&self) -> WorkerStats {
        let mut stats = WorkerStats::default();
        let seed = sp_store::fnv64(&self.name);
        let mut poll = PollLoop::new(Backoff::for_queue(seed), self.max_idle_polls);
        let poll_stats = poll.run(
            || {
                // Try to work first; the exit check runs only on polls
                // that found nothing claimable, and against the
                // per-worker caches.
                match self.drain_batch(&mut stats) {
                    Ok(seqs) if !seqs.is_empty() => PollOutcome::Worked,
                    Ok(_) | Err(_) => {
                        if self.backlog_complete() {
                            PollOutcome::Stop
                        } else {
                            PollOutcome::Idle
                        }
                    }
                }
            },
            std::thread::sleep,
        );
        stats.poll = poll_stats;
        let payload = encode_worker_stats(&stats);
        let _ = self.retry_io(|| self.queue.publish_worker_stats(&self.name, &payload));
        // Mirror the end-of-drain aggregates into the process-wide
        // registry: counters for the drain-loop events, gauges sampling
        // the queue's health and the system's memo hit rates (the store
        // cannot push into `sp_obs` itself, so the worker — which sees
        // both — samples on its way out).
        let registry = sp_obs::global();
        registry
            .counter("fleet.campaigns_drained")
            .add(stats.campaigns_drained);
        registry
            .counter("fleet.runs_executed")
            .add(stats.runs_executed);
        registry.counter("fleet.failures").add(stats.failures);
        registry.counter("fleet.renewals").add(stats.renewals);
        registry.counter("fleet.io_retries").add(stats.io_retries);
        registry
            .counter("fleet.publish_batches")
            .add(stats.publish_batches);
        sp_obs::instrument::sample_queue_stats(registry, &self.queue.stats());
        sp_obs::instrument::sample_cache_stats(
            registry,
            "store.memo.chain",
            &self.system.chain_memo_stats(),
        );
        sp_obs::instrument::sample_cache_stats(
            registry,
            "store.memo.output",
            &self.system.output_memo_stats(),
        );
        sp_obs::instrument::sample_cache_stats(
            registry,
            "store.memo.build",
            &self.system.build_memo_stats(),
        );
        sp_obs::trace::emit_with("worker", "drained", || {
            format!(
                "worker={} campaigns={} failures={}",
                self.name, stats.campaigns_drained, stats.failures
            )
        });
        stats
    }
}

/// The merged cross-process digest of one fleet drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Queue-level accounting (submissions, completions, reclaims,
    /// corruption drops) derived from the shared directory.
    pub queue: QueueStats,
    /// Worker processes that published counters.
    pub workers: usize,
    /// Sum of every worker's counters.
    pub drained: WorkerStats,
}

/// Assembles the fleet digest from the queue directory: queue accounting
/// plus every published worker-stats blob, merged. Any process with the
/// storage mounted can compute this — no shared memory, no coordinator
/// privileges.
pub fn fleet_stats(queue: &WorkQueue) -> FleetStats {
    let mut drained = WorkerStats::default();
    let mut workers = 0;
    for (_, payload) in queue.worker_stats() {
        if let Some(stats) = decode_worker_stats(&payload) {
            drained.merge(&stats);
            workers += 1;
        }
    }
    FleetStats {
        queue: queue.stats(),
        workers,
        drained,
    }
}

/// Derives the `SPRL` cell records for one published campaign report: one
/// record per executed run, in execution order. Everything except the
/// worker attribution derives deterministically from the submission — the
/// pre-reserved run ids, the virtual timestamps replayed from the
/// recorded origin, and the per-run statuses — so an interrupted-and-
/// resumed campaign logs exactly the same cell facts as an uninterrupted
/// one. The repetition index is reconstructed as the occurrence count of
/// the (experiment, image) pair in execution order.
pub fn run_log_cells(
    seq: u64,
    report: &CampaignReport,
    worker: &str,
    lease_token: u64,
) -> Vec<sp_store::CellRecord> {
    use sp_store::CellRecord;
    let mut occurrences: BTreeMap<(&str, &str), u32> = BTreeMap::new();
    report
        .summary
        .runs
        .iter()
        .map(|run| {
            let repetition = {
                let slot = occurrences
                    .entry((run.experiment.as_str(), run.image_label.as_str()))
                    .and_modify(|r| *r += 1)
                    .or_insert(0);
                *slot
            };
            let status = if run.failed > 0 {
                CellRecord::STATUS_FAIL
            } else if run.passed == 0 {
                CellRecord::STATUS_NOT_RUN
            } else if run.skipped > 0 {
                CellRecord::STATUS_WARNINGS
            } else {
                CellRecord::STATUS_PASS
            };
            CellRecord {
                campaign: seq,
                experiment: run.experiment.clone(),
                // Run-level records aggregate the experiment's groups; the
                // group axis stays empty (group-level statuses live in the
                // campaign report's cell matrix).
                group: String::new(),
                image_label: run.image_label.clone(),
                repetition,
                run_id: run.id.0,
                status,
                passed: run.passed as u32,
                failed: run.failed as u32,
                skipped: run.skipped as u32,
                timestamp: run.timestamp,
                worker: worker.to_string(),
                lease_token,
            }
        })
        .collect()
}

// ---- campaign-config codec -------------------------------------------

/// Serialises a campaign config for the queue payload. The plan itself is
/// *not* shipped: workers re-plan against their local system, which both
/// revalidates the names and keeps the payload small and
/// environment-independent.
pub fn encode_campaign_config(config: &CampaignConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    wire::put_u32(&mut out, config.experiments.len() as u32);
    for name in &config.experiments {
        wire::put_str(&mut out, name);
    }
    wire::put_u32(&mut out, config.images.len() as u32);
    for image in &config.images {
        wire::put_u32(&mut out, image.0);
    }
    wire::put_u64(&mut out, config.repetitions as u64);
    wire::put_u64(&mut out, config.run.seed);
    wire::put_u64(&mut out, config.run.scale.to_bits());
    wire::put_u64(&mut out, config.run.threads as u64);
    wire::put_str(&mut out, &config.run.description);
    out.push(config.run.memoize as u8);
    wire::put_u64(&mut out, config.interval_secs);
    out.push(config.options.memoize as u8);
    out.push(config.options.image_parallel as u8);
    out
}

/// Parses a config serialised by [`encode_campaign_config`]. `None` on
/// any structural mismatch.
pub fn decode_campaign_config(bytes: &[u8]) -> Option<CampaignConfig> {
    let mut cursor = Cursor::new(bytes);
    let experiment_count = cursor.take_u32()?;
    let mut experiments = Vec::with_capacity(experiment_count as usize);
    for _ in 0..experiment_count {
        experiments.push(cursor.take_str()?);
    }
    let image_count = cursor.take_u32()?;
    let mut images = Vec::with_capacity(image_count as usize);
    for _ in 0..image_count {
        images.push(sp_env::VmImageId(cursor.take_u32()?));
    }
    let repetitions = cursor.take_u64()? as usize;
    let run = RunConfig {
        seed: cursor.take_u64()?,
        scale: f64::from_bits(cursor.take_u64()?),
        threads: cursor.take_u64()? as usize,
        description: cursor.take_str()?,
        memoize: cursor.take(1)?[0] != 0,
    };
    let interval_secs = cursor.take_u64()?;
    let options = CampaignOptions {
        memoize: cursor.take(1)?[0] != 0,
        image_parallel: cursor.take(1)?[0] != 0,
    };
    cursor.finished().then_some(CampaignConfig {
        experiments,
        images,
        repetitions,
        run,
        interval_secs,
        options,
    })
}

// ---- campaign-report codec -------------------------------------------

fn put_cell_status(out: &mut Vec<u8>, status: CellStatus) {
    out.push(match status {
        CellStatus::Pass => 0,
        CellStatus::Warnings => 1,
        CellStatus::Fail => 2,
        CellStatus::NotRun => 3,
    });
}

fn take_cell_status(cursor: &mut Cursor<'_>) -> Option<CellStatus> {
    Some(match cursor.take(1)?[0] {
        0 => CellStatus::Pass,
        1 => CellStatus::Warnings,
        2 => CellStatus::Fail,
        3 => CellStatus::NotRun,
        _ => return None,
    })
}

/// Serialises a campaign report for publication on the queue. The ticket
/// is intentionally left out: it is meaningful only within one
/// scheduler/coordinator instance, and the collector re-labels reports by
/// its own submission order.
pub fn encode_campaign_report(report: &CampaignReport) -> Vec<u8> {
    let summary = &report.summary;
    let mut out = Vec::with_capacity(summary.runs.len() * 96 + 64);
    wire::put_u64(&mut out, report.completed_repetitions as u64);
    out.push(report.cancelled as u8);
    wire::put_u32(&mut out, summary.runs.len() as u32);
    for run in &summary.runs {
        wire::put_u64(&mut out, run.id.0);
        wire::put_str(&mut out, &run.experiment);
        wire::put_str(&mut out, &run.image_label);
        wire::put_u64(&mut out, run.timestamp);
        wire::put_u64(&mut out, run.passed as u64);
        wire::put_u64(&mut out, run.failed as u64);
        wire::put_u64(&mut out, run.skipped as u64);
        out.push(run.successful as u8);
    }
    wire::put_u32(&mut out, summary.cells.len() as u32);
    for ((experiment, group, image), status) in &summary.cells {
        wire::put_str(&mut out, experiment);
        wire::put_str(&mut out, group);
        wire::put_str(&mut out, image);
        put_cell_status(&mut out, *status);
    }
    wire::put_u32(&mut out, summary.image_labels.len() as u32);
    for label in &summary.image_labels {
        wire::put_str(&mut out, label);
    }
    out
}

/// Parses a report serialised by [`encode_campaign_report`], labelling it
/// with the collector's ticket. `None` on any structural mismatch.
pub fn decode_campaign_report(bytes: &[u8], ticket: CampaignTicket) -> Option<CampaignReport> {
    let mut cursor = Cursor::new(bytes);
    let completed_repetitions = cursor.take_u64()? as usize;
    let cancelled = cursor.take(1)?[0] != 0;
    let run_count = cursor.take_u32()?;
    let mut runs = Vec::with_capacity(run_count as usize);
    for _ in 0..run_count {
        runs.push(RunRecord {
            id: RunId(cursor.take_u64()?),
            experiment: cursor.take_str()?,
            image_label: cursor.take_str()?,
            timestamp: cursor.take_u64()?,
            passed: cursor.take_u64()? as usize,
            failed: cursor.take_u64()? as usize,
            skipped: cursor.take_u64()? as usize,
            successful: cursor.take(1)?[0] != 0,
        });
    }
    let cell_count = cursor.take_u32()?;
    let mut cells = BTreeMap::new();
    for _ in 0..cell_count {
        let experiment = cursor.take_str()?;
        let group = cursor.take_str()?;
        let image = cursor.take_str()?;
        let status = take_cell_status(&mut cursor)?;
        cells.insert((experiment, group, image), status);
    }
    let label_count = cursor.take_u32()?;
    let mut image_labels = Vec::with_capacity(label_count as usize);
    for _ in 0..label_count {
        image_labels.push(cursor.take_str()?);
    }
    cursor.finished().then_some(CampaignReport {
        ticket,
        summary: CampaignSummary {
            runs,
            cells,
            image_labels,
        },
        completed_repetitions,
        cancelled,
    })
}

// ---- worker-stats codec ----------------------------------------------

/// Serialises worker counters for the queue's `workers/` area.
pub fn encode_worker_stats(stats: &WorkerStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    wire::put_u64(&mut out, stats.campaigns_drained);
    wire::put_u64(&mut out, stats.runs_executed);
    wire::put_u64(&mut out, stats.failures);
    wire::put_u64(&mut out, stats.renewals);
    for value in [
        stats.sched.campaigns_submitted as u64,
        stats.sched.campaigns_admitted as u64,
        stats.sched.campaigns_completed as u64,
        stats.sched.campaigns_cancelled as u64,
        stats.sched.rounds,
        stats.sched.lanes_executed,
        stats.sched.lanes_cancelled,
        stats.sched.lanes_local,
        stats.sched.lanes_stolen,
    ] {
        wire::put_u64(&mut out, value);
    }
    wire::put_u64(&mut out, stats.poll.worked);
    wire::put_u64(&mut out, stats.poll.idle);
    wire::put_u64(&mut out, stats.poll.slept.as_millis() as u64);
    wire::put_u64(&mut out, stats.io_retries);
    wire::put_u64(&mut out, stats.publish_batches);
    out
}

/// Parses counters serialised by [`encode_worker_stats`].
pub fn decode_worker_stats(bytes: &[u8]) -> Option<WorkerStats> {
    let mut cursor = Cursor::new(bytes);
    let campaigns_drained = cursor.take_u64()?;
    let runs_executed = cursor.take_u64()?;
    let failures = cursor.take_u64()?;
    let renewals = cursor.take_u64()?;
    let sched = ScheduleStats {
        campaigns_submitted: cursor.take_u64()? as usize,
        campaigns_admitted: cursor.take_u64()? as usize,
        campaigns_completed: cursor.take_u64()? as usize,
        campaigns_cancelled: cursor.take_u64()? as usize,
        rounds: cursor.take_u64()?,
        lanes_executed: cursor.take_u64()?,
        lanes_cancelled: cursor.take_u64()?,
        lanes_local: cursor.take_u64()?,
        lanes_stolen: cursor.take_u64()?,
    };
    let poll = PollStats {
        worked: cursor.take_u64()?,
        idle: cursor.take_u64()?,
        slept: Duration::from_millis(cursor.take_u64()?),
    };
    let io_retries = cursor.take_u64()?;
    let publish_batches = cursor.take_u64()?;
    cursor.finished().then_some(WorkerStats {
        campaigns_drained,
        runs_executed,
        failures,
        renewals,
        io_retries,
        publish_batches,
        sched,
        poll,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_env::VmImageId;

    fn sample_config() -> CampaignConfig {
        CampaignConfig {
            experiments: vec!["h1".into(), "zeus".into()],
            images: vec![VmImageId(1), VmImageId(3)],
            repetitions: 4,
            run: RunConfig {
                seed: 20131029,
                scale: 0.25,
                threads: 3,
                description: "fleet".into(),
                memoize: true,
            },
            interval_secs: 86_400,
            options: CampaignOptions {
                memoize: true,
                image_parallel: true,
            },
        }
    }

    #[test]
    fn campaign_config_round_trip() {
        let config = sample_config();
        let bytes = encode_campaign_config(&config);
        let decoded = decode_campaign_config(&bytes).expect("round trip");
        assert_eq!(decoded.experiments, config.experiments);
        assert_eq!(decoded.images, config.images);
        assert_eq!(decoded.repetitions, config.repetitions);
        assert_eq!(decoded.run.seed, config.run.seed);
        assert_eq!(decoded.run.scale, config.run.scale);
        assert_eq!(decoded.run.threads, config.run.threads);
        assert_eq!(decoded.run.description, config.run.description);
        assert_eq!(decoded.run.memoize, config.run.memoize);
        assert_eq!(decoded.interval_secs, config.interval_secs);
        assert_eq!(decoded.options, config.options);
        assert!(decode_campaign_config(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_campaign_config(b"junk").is_none());
    }

    #[test]
    fn campaign_report_round_trip() {
        let mut cells = BTreeMap::new();
        cells.insert(
            (
                "h1".to_string(),
                "unit checks".to_string(),
                "SL6".to_string(),
            ),
            CellStatus::Warnings,
        );
        cells.insert(
            ("h1".to_string(), "MC chain".to_string(), "SL6".to_string()),
            CellStatus::Fail,
        );
        let report = CampaignReport {
            ticket: CampaignTicket::from_index(0),
            summary: CampaignSummary {
                runs: vec![RunRecord {
                    id: RunId(42),
                    experiment: "h1".into(),
                    image_label: "SL6".into(),
                    timestamp: 1_383_004_800,
                    passed: 10,
                    failed: 1,
                    skipped: 2,
                    successful: false,
                }],
                cells,
                image_labels: vec!["SL6".into()],
            },
            completed_repetitions: 1,
            cancelled: false,
        };
        let bytes = encode_campaign_report(&report);
        let decoded =
            decode_campaign_report(&bytes, CampaignTicket::from_index(7)).expect("round trip");
        assert_eq!(decoded.ticket.index(), 7, "ticket is collector-assigned");
        assert_eq!(decoded.summary, report.summary);
        assert_eq!(decoded.completed_repetitions, 1);
        assert!(!decoded.cancelled);
        assert!(decode_campaign_report(&bytes[..bytes.len() - 1], report.ticket).is_none());
    }

    #[test]
    fn worker_stats_round_trip_and_merge() {
        let a = WorkerStats {
            campaigns_drained: 2,
            runs_executed: 10,
            failures: 1,
            renewals: 7,
            io_retries: 3,
            publish_batches: 2,
            sched: ScheduleStats {
                campaigns_submitted: 2,
                campaigns_admitted: 2,
                campaigns_completed: 2,
                campaigns_cancelled: 0,
                rounds: 6,
                lanes_executed: 12,
                lanes_cancelled: 0,
                lanes_local: 9,
                lanes_stolen: 3,
            },
            poll: PollStats {
                worked: 2,
                idle: 5,
                slept: Duration::from_millis(321),
            },
        };
        let bytes = encode_worker_stats(&a);
        assert_eq!(decode_worker_stats(&bytes), Some(a));
        assert!(decode_worker_stats(&bytes[..bytes.len() - 1]).is_none());

        let mut merged = a;
        merged.merge(&a);
        assert_eq!(merged.campaigns_drained, 4);
        assert_eq!(merged.renewals, 14);
        assert_eq!(merged.io_retries, 6);
        assert_eq!(merged.publish_batches, 4);
        assert_eq!(merged.sched.lanes_executed, 24);
        assert_eq!(merged.poll.slept, Duration::from_millis(642));
    }
}
