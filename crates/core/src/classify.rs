//! Root-cause classification of validation failures.
//!
//! "Intervention is then required either by the host of the validation
//! suite or the experiment themselves, depending on the nature of the
//! reported problem." (§3.1 iii)
//!
//! The classifier attributes each failed test to one of the three Figure-1
//! input categories by re-deriving its proximate cause from the
//! compatibility model, then aggregates the votes into a [`Diagnosis`] with
//! an intervention assignee. Latent experiment bugs *surfaced* by an
//! environment change (the "long-standing bugs" of §3.3) are attributed to
//! the experiment software: the environment was the trigger, not the cause.

use std::collections::BTreeMap;

use sp_env::{check_compile, check_runtime, EnvironmentSpec, RuntimeOutcome, Severity};

use crate::experiment::ExperimentDef;
use crate::inputs::{Assignee, InputCategory};
use crate::run::ValidationRun;
use crate::test::FailureKind;

/// The outcome of classifying a failed run.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Which input category is responsible.
    pub category: InputCategory,
    /// Specific culprit (external name, package name, OS facility).
    pub culprit: String,
    /// Who must intervene.
    pub assignee: Assignee,
    /// Fraction of classified failures explained by this category.
    pub confidence: f64,
    /// Per-failure evidence lines.
    pub evidence: Vec<String>,
}

impl Diagnosis {
    /// One-line rendering for intervention tickets.
    pub fn headline(&self) -> String {
        format!(
            "{} problem ({}), assign to {} [confidence {:.0}%]",
            self.category,
            self.culprit,
            self.assignee,
            self.confidence * 100.0
        )
    }
}

/// A single failure's attributed cause.
#[derive(Debug, Clone, PartialEq)]
struct Attribution {
    category: InputCategory,
    culprit: String,
    evidence: String,
}

/// Classifies a failed validation run against the environment it ran on.
/// Returns `None` for successful runs or when every failure is a secondary
/// (skip/dependency) effect.
pub fn classify(
    experiment: &ExperimentDef,
    run: &ValidationRun,
    env: &EnvironmentSpec,
) -> Option<Diagnosis> {
    let mut attributions: Vec<Attribution> = Vec::new();

    for result in run.failures() {
        let crate::run::TestStatus::Failed(kind) = &result.status else {
            continue;
        };
        // The packages this test exercises directly.
        let packages = experiment
            .suite
            .get(&result.test)
            .map(|t| t.kind.packages().into_iter().cloned().collect::<Vec<_>>())
            .unwrap_or_default();

        let attribution = match kind {
            FailureKind::CompileError => packages
                .first()
                .and_then(|pkg| attribute_compile_failure(experiment, pkg, env)),
            FailureKind::Crash(_) | FailureKind::BadExit(_) | FailureKind::ChainStageFailed(_) => {
                packages
                    .iter()
                    .find_map(|pkg| attribute_runtime_crash(experiment, pkg, env))
            }
            FailureKind::ComparisonFailed(_) => packages
                .iter()
                .find_map(|pkg| attribute_deviation(experiment, pkg, env)),
            // Secondary effects: skip.
            FailureKind::DependencyFailed(_) => None,
        };
        if let Some(a) = attribution {
            attributions.push(a);
        }
    }

    if attributions.is_empty() {
        return None;
    }

    // Majority vote over (category, culprit).
    let mut votes: BTreeMap<(InputCategory, String), usize> = BTreeMap::new();
    for a in &attributions {
        *votes
            .entry((a.category.clone(), a.culprit.clone()))
            .or_insert(0) += 1;
    }
    let ((category, culprit), count) = votes
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .expect("non-empty attributions");

    let confidence = count as f64 / attributions.len() as f64;
    let assignee = category.default_assignee();
    let evidence: Vec<String> = attributions.into_iter().map(|a| a.evidence).collect();

    Some(Diagnosis {
        category,
        culprit,
        assignee,
        confidence,
        evidence,
    })
}

/// Attributes a compile failure by re-deriving the diagnostics.
fn attribute_compile_failure(
    experiment: &ExperimentDef,
    package: &sp_build::PackageId,
    env: &EnvironmentSpec,
) -> Option<Attribution> {
    let pkg = experiment.graph.get(package)?;
    let outcome = check_compile(&pkg.traits, env);
    let error = outcome
        .diagnostics()
        .iter()
        .find(|d| d.severity == Severity::Error)?;
    let (category, culprit) = match error.code {
        "ext-missing" | "ext-api" => {
            // Name the external from the message ("root API level …").
            let name = error
                .message
                .split_whitespace()
                .next()
                .unwrap_or("external")
                .trim_end_matches(':')
                .to_string();
            (InputCategory::ExternalDependency, name)
        }
        // Compiler-strictness and toolchain errors belong to the OS layer.
        "implicit-decl" | "pre-std-c++" | "f77-ext" | "needs-c++11" => (
            InputCategory::OperatingSystem,
            format!("{} toolchain", env.compiler.label()),
        ),
        _ => (InputCategory::ExperimentSoftware, package.to_string()),
    };
    Some(Attribution {
        category,
        culprit,
        evidence: format!("{package}: {error}"),
    })
}

/// Attributes a runtime crash via the runtime compatibility relation.
fn attribute_runtime_crash(
    experiment: &ExperimentDef,
    package: &sp_build::PackageId,
    env: &EnvironmentSpec,
) -> Option<Attribution> {
    let traits = experiment.effective_runtime_traits(package);
    match check_runtime(&traits, env) {
        RuntimeOutcome::Crash { cause, message } => {
            let (category, culprit) = match cause {
                "legacy-syscall" => (
                    InputCategory::OperatingSystem,
                    format!("{} kernel/glibc interface", env.os.label()),
                ),
                "large-mem" => (
                    InputCategory::OperatingSystem,
                    format!("{} address space", env.arch.label()),
                ),
                _ => (InputCategory::ExperimentSoftware, package.to_string()),
            };
            Some(Attribution {
                category,
                culprit,
                evidence: format!("{package}: {message}"),
            })
        }
        _ => Some(Attribution {
            category: InputCategory::ExperimentSoftware,
            culprit: package.to_string(),
            evidence: format!("{package}: crash not explained by environment model"),
        }),
    }
}

/// Attributes a data-validation deviation: a latent experiment bug
/// triggered by the platform.
fn attribute_deviation(
    experiment: &ExperimentDef,
    package: &sp_build::PackageId,
    env: &EnvironmentSpec,
) -> Option<Attribution> {
    let traits = experiment.effective_runtime_traits(package);
    match check_runtime(&traits, env) {
        RuntimeOutcome::Deviating {
            causes,
            shift_sigma,
        } => {
            // Find which package in the closure carries the deviating trait.
            let culprit = find_trait_carrier(experiment, package, &causes)
                .unwrap_or_else(|| package.to_string());
            Some(Attribution {
                category: InputCategory::ExperimentSoftware,
                culprit: culprit.clone(),
                evidence: format!(
                    "{package}: results shifted by {shift_sigma:.1}σ on {} \
                     (latent bug in {culprit}: {})",
                    env.label(),
                    causes.join(", ")
                ),
            })
        }
        _ => None,
    }
}

/// Locates the package (the test's own or a dependency) carrying any of the
/// deviating trait codes.
fn find_trait_carrier(
    experiment: &ExperimentDef,
    package: &sp_build::PackageId,
    causes: &[&str],
) -> Option<String> {
    let mut candidates = vec![package.clone()];
    candidates.extend(
        experiment
            .graph
            .dependency_closure(std::slice::from_ref(package)),
    );
    for candidate in candidates {
        if let Some(pkg) = experiment.graph.get(&candidate) {
            if pkg.traits.iter().any(|t| causes.contains(&t.code())) {
                return Some(candidate.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preservation::PreservationLevel;
    use crate::run::{RunId, TestResult, TestStatus};
    use crate::suite::TestSuite;
    use crate::test::{TestCategory, TestId, TestKind, ValidationTest};
    use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
    use sp_env::{catalog, CodeTrait, Version, VersionReq};
    use sp_exec::JobId;

    fn experiment() -> ExperimentDef {
        let graph = DependencyGraph::from_packages([
            Package::new("lib64bug", Version::new(1, 0, 0), PackageKind::Library)
                .with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 5.0 }),
            Package::new("oldstyle", Version::new(1, 0, 0), PackageKind::Library)
                .with_trait(CodeTrait::PreStandardCxx),
            Package::new("kandr", Version::new(1, 0, 0), PackageKind::Library)
                .with_trait(CodeTrait::ImplicitFunctionDecl),
            Package::new("rootuser", Version::new(1, 0, 0), PackageKind::Analysis)
                .with_trait(CodeTrait::RequiresExternal {
                    name: "root".into(),
                    req: VersionReq::Any,
                })
                .with_trait(CodeTrait::UsesExternalApi {
                    name: "root".into(),
                    api_level: 5,
                }),
            Package::new("procreader", Version::new(1, 0, 0), PackageKind::Tool)
                .with_trait(CodeTrait::LegacySyscall { breaks_at_abi: 6 }),
            Package::new("ana", Version::new(1, 0, 0), PackageKind::Analysis).dep("lib64bug"),
        ])
        .unwrap();
        let mut suite = TestSuite::new("t", PreservationLevel::FullSoftware);
        for pkg in [
            "lib64bug",
            "oldstyle",
            "kandr",
            "rootuser",
            "procreader",
            "ana",
        ] {
            suite
                .add(ValidationTest::new(
                    format!("t/compile/{pkg}"),
                    "t",
                    "compilation",
                    TestKind::Compile {
                        package: PackageId::new(pkg),
                    },
                ))
                .unwrap();
            suite
                .add(ValidationTest::new(
                    format!("t/run/{pkg}"),
                    "t",
                    "standalone",
                    TestKind::Standalone {
                        package: PackageId::new(pkg),
                        events: 100,
                    },
                ))
                .unwrap();
        }
        ExperimentDef {
            name: "t".into(),
            color: "blue",
            graph,
            suite,
            entry_points: vec![],
        }
    }

    fn run_with_failures(failures: Vec<(&str, FailureKind)>) -> ValidationRun {
        ValidationRun {
            id: RunId(9),
            experiment: "t".into(),
            image_label: "test".into(),
            description: String::new(),
            timestamp: 0,
            results: failures
                .into_iter()
                .map(|(id, kind)| TestResult {
                    test: TestId::new(id),
                    category: TestCategory::Compilation,
                    group: "g".into(),
                    job: JobId(1),
                    status: TestStatus::Failed(kind),
                    outputs: vec![],
                    compare: None,
                })
                .collect(),
        }
    }

    #[test]
    fn strictness_failure_is_os_category() {
        let exp = experiment();
        let env = catalog::sl7_gcc48(Version::two(5, 34));
        let run = run_with_failures(vec![("t/compile/oldstyle", FailureKind::CompileError)]);
        let diagnosis = classify(&exp, &run, &env).unwrap();
        assert_eq!(diagnosis.category, InputCategory::OperatingSystem);
        assert_eq!(diagnosis.assignee, Assignee::HostIt);
        assert!(diagnosis.culprit.contains("gcc4.8"));
    }

    #[test]
    fn root6_api_break_is_external_category() {
        let exp = experiment();
        let env = catalog::sl7_gcc48(Version::two(6, 2));
        let run = run_with_failures(vec![("t/compile/rootuser", FailureKind::CompileError)]);
        let diagnosis = classify(&exp, &run, &env).unwrap();
        assert_eq!(diagnosis.category, InputCategory::ExternalDependency);
        assert_eq!(diagnosis.culprit, "root");
        assert_eq!(diagnosis.assignee, Assignee::Joint);
    }

    #[test]
    fn legacy_syscall_crash_is_os_category() {
        let exp = experiment();
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let run = run_with_failures(vec![(
            "t/run/procreader",
            FailureKind::Crash("SIGSEGV".into()),
        )]);
        let diagnosis = classify(&exp, &run, &env).unwrap();
        assert_eq!(diagnosis.category, InputCategory::OperatingSystem);
        assert!(diagnosis.culprit.contains("SL6"));
    }

    #[test]
    fn latent_bug_deviation_is_experiment_category() {
        let exp = experiment();
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        // ana links lib64bug; its histograms shifted on 64-bit.
        let run = run_with_failures(vec![(
            "t/run/ana",
            FailureKind::ComparisonFailed("chi2 p = 1e-9".into()),
        )]);
        let diagnosis = classify(&exp, &run, &env).unwrap();
        assert_eq!(diagnosis.category, InputCategory::ExperimentSoftware);
        assert_eq!(
            diagnosis.culprit, "lib64bug",
            "blames the carrier, not the test"
        );
        assert_eq!(diagnosis.assignee, Assignee::Experiment);
        assert!(diagnosis.evidence[0].contains("latent bug"));
    }

    #[test]
    fn majority_vote_and_confidence() {
        let exp = experiment();
        let env = catalog::sl7_gcc48(Version::two(6, 2));
        let run = run_with_failures(vec![
            ("t/compile/rootuser", FailureKind::CompileError),
            ("t/compile/oldstyle", FailureKind::CompileError),
            ("t/compile/kandr", FailureKind::CompileError),
        ]);
        // oldstyle -> OS, kandr -> OS, rootuser -> external.
        // Majority: OS with 2/3.
        let diagnosis = classify(&exp, &run, &env).unwrap();
        assert_eq!(diagnosis.category, InputCategory::OperatingSystem);
        assert!((diagnosis.confidence - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(diagnosis.evidence.len(), 3);
    }

    #[test]
    fn successful_run_has_no_diagnosis() {
        let exp = experiment();
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let run = run_with_failures(vec![]);
        assert!(classify(&exp, &run, &env).is_none());
    }

    #[test]
    fn dependency_failures_are_not_scored() {
        let exp = experiment();
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let run = run_with_failures(vec![(
            "t/run/ana",
            FailureKind::DependencyFailed("lib64bug".into()),
        )]);
        assert!(classify(&exp, &run, &env).is_none());
    }

    #[test]
    fn headline_reads_well() {
        let diagnosis = Diagnosis {
            category: InputCategory::ExternalDependency,
            culprit: "root".into(),
            assignee: Assignee::Joint,
            confidence: 1.0,
            evidence: vec![],
        };
        assert_eq!(
            diagnosis.headline(),
            "external software dependencies problem (root), assign to host IT + experiment [confidence 100%]"
        );
    }
}
