//! Test suites and the Figure-2 breakdown.
//!
//! "As a first step, the number and nature of the experimental tests is
//! surveyed, the level of which reflects the DPHEP preservation level aimed
//! at \[by\] the participating collaboration." (§3.2)

use std::collections::BTreeMap;

use crate::preservation::PreservationLevel;
use crate::test::{TestCategory, TestId, ValidationTest};

/// The validation-test suite of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSuite {
    /// Owning experiment.
    pub experiment: String,
    /// Targeted preservation level (drives the required categories).
    pub level: PreservationLevel,
    tests: Vec<ValidationTest>,
}

impl TestSuite {
    /// Creates an empty suite.
    pub fn new(experiment: impl Into<String>, level: PreservationLevel) -> Self {
        TestSuite {
            experiment: experiment.into(),
            level,
            tests: Vec::new(),
        }
    }

    /// Adds a test. Ids must be unique; duplicates are rejected.
    pub fn add(&mut self, test: ValidationTest) -> Result<(), DuplicateTest> {
        if self.tests.iter().any(|t| t.id == test.id) {
            return Err(DuplicateTest(test.id));
        }
        self.tests.push(test);
        Ok(())
    }

    /// All tests in insertion order.
    pub fn tests(&self) -> &[ValidationTest] {
        &self.tests
    }

    /// Number of tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Looks up a test by id.
    pub fn get(&self, id: &TestId) -> Option<&ValidationTest> {
        self.tests.iter().find(|t| &t.id == id)
    }

    /// Tests of one category.
    pub fn by_category(&self, category: TestCategory) -> impl Iterator<Item = &ValidationTest> {
        self.tests.iter().filter(move |t| t.category() == category)
    }

    /// The Figure-2 survey: test counts per category.
    pub fn breakdown(&self) -> SuiteBreakdown {
        let mut counts: BTreeMap<TestCategory, usize> = BTreeMap::new();
        for test in &self.tests {
            *counts.entry(test.category()).or_insert(0) += 1;
        }
        let mut groups: BTreeMap<String, usize> = BTreeMap::new();
        for test in &self.tests {
            *groups.entry(test.group.clone()).or_insert(0) += 1;
        }
        SuiteBreakdown {
            experiment: self.experiment.clone(),
            level: self.level,
            total: self.tests.len(),
            by_category: counts,
            by_group: groups,
        }
    }

    /// Whether the suite covers every category its preservation level
    /// requires.
    pub fn covers_level(&self) -> bool {
        self.level
            .required_test_categories()
            .iter()
            .all(|c| self.by_category(*c).next().is_some() || *c == TestCategory::DataValidation)
    }

    /// Distinct process groups, in order (the Figure-3 rows for this
    /// experiment).
    pub fn groups(&self) -> Vec<String> {
        let mut groups: Vec<String> = Vec::new();
        for test in &self.tests {
            if !groups.contains(&test.group) {
                groups.push(test.group.clone());
            }
        }
        groups
    }
}

/// Error: a test id was added twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateTest(pub TestId);

impl std::fmt::Display for DuplicateTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "duplicate test id '{}'", self.0)
    }
}

impl std::error::Error for DuplicateTest {}

/// The per-category and per-group survey of a suite (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteBreakdown {
    /// Experiment name.
    pub experiment: String,
    /// Preservation level aimed at.
    pub level: PreservationLevel,
    /// Total number of tests.
    pub total: usize,
    /// Counts per category.
    pub by_category: BTreeMap<TestCategory, usize>,
    /// Counts per process group.
    pub by_group: BTreeMap<String, usize>,
}

impl SuiteBreakdown {
    /// Count for a category (0 if absent).
    pub fn count(&self, category: TestCategory) -> usize {
        self.by_category.get(&category).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::TestKind;
    use sp_build::PackageId;

    fn compile_test(id: &str, pkg: &str) -> ValidationTest {
        ValidationTest::new(
            id,
            "h1",
            "compilation",
            TestKind::Compile {
                package: PackageId::new(pkg),
            },
        )
    }

    #[test]
    fn add_and_lookup() {
        let mut suite = TestSuite::new("h1", PreservationLevel::FullSoftware);
        suite
            .add(compile_test("h1/compile/h1rec", "h1rec"))
            .unwrap();
        assert_eq!(suite.len(), 1);
        assert!(suite.get(&TestId::new("h1/compile/h1rec")).is_some());
        assert!(suite.get(&TestId::new("nope")).is_none());
    }

    #[test]
    fn duplicates_rejected() {
        let mut suite = TestSuite::new("h1", PreservationLevel::FullSoftware);
        suite.add(compile_test("t", "a")).unwrap();
        assert!(suite.add(compile_test("t", "b")).is_err());
        assert_eq!(suite.len(), 1);
    }

    #[test]
    fn breakdown_counts() {
        let mut suite = TestSuite::new("h1", PreservationLevel::FullSoftware);
        suite.add(compile_test("c1", "a")).unwrap();
        suite.add(compile_test("c2", "b")).unwrap();
        suite
            .add(ValidationTest::new(
                "u1",
                "h1",
                "unit",
                TestKind::UnitCheck {
                    package: PackageId::new("a"),
                    check_index: 0,
                },
            ))
            .unwrap();
        let breakdown = suite.breakdown();
        assert_eq!(breakdown.total, 3);
        assert_eq!(breakdown.count(TestCategory::Compilation), 2);
        assert_eq!(breakdown.count(TestCategory::UnitCheck), 1);
        assert_eq!(breakdown.count(TestCategory::AnalysisChain), 0);
        assert_eq!(breakdown.by_group["compilation"], 2);
    }

    #[test]
    fn groups_in_insertion_order() {
        let mut suite = TestSuite::new("h1", PreservationLevel::FullSoftware);
        suite.add(compile_test("c1", "a")).unwrap();
        suite
            .add(ValidationTest::new(
                "u1",
                "h1",
                "MC chain",
                TestKind::UnitCheck {
                    package: PackageId::new("a"),
                    check_index: 0,
                },
            ))
            .unwrap();
        assert_eq!(suite.groups(), vec!["compilation", "MC chain"]);
    }
}
