//! The four-phase sp-system life cycle (§3.1 i–iv).
//!
//! 1. **Preparation**: consolidate the software, migrate the OS, remove
//!    unnecessary externals, define the tests.
//! 2. **Operation**: regular automated builds and validation; new OS and
//!    software versions integrated under expert supervision.
//! 3. **Analysis**: a failed validation is examined against the last
//!    successful test; intervention is routed to the host IT or the
//!    experiment.
//! 4. **Freeze**: "the last working virtual image is conserved and
//!    constitutes the last version of the experimental software and
//!    environment" — with the paper's warning that a frozen system "is
//!    unlikely to persist in a useful manner much beyond this point".

use sp_env::EnvironmentSpec;
use sp_store::{FrozenImage, FrozenVault, ObjectId, StoreError};

use crate::classify::Diagnosis;
use crate::run::ValidationRun;

/// The phase of an experiment's preservation programme.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// §3.1 (i): consolidation and test definition.
    Preparation,
    /// §3.1 (ii): regular builds and validation.
    Operation,
    /// §3.1 (iii): failure analysis and intervention.
    Analysis {
        /// The diagnosis awaiting intervention.
        diagnosis: Diagnosis,
    },
    /// §3.1 (iv): conserved; the programme has ended.
    Frozen {
        /// Vault label of the conserved image.
        label: String,
    },
}

impl Phase {
    /// Phase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Preparation => "preparation",
            Phase::Operation => "operation",
            Phase::Analysis { .. } => "analysis",
            Phase::Frozen { .. } => "frozen",
        }
    }
}

/// Errors from illegal phase transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// The requested transition is not legal from the current phase.
    WrongPhase {
        /// Current phase name.
        current: &'static str,
        /// Attempted action.
        action: &'static str,
    },
    /// Preparation cannot complete while consolidation problems remain.
    NotConsolidated(Vec<String>),
    /// Freezing requires at least one successful validation run.
    NothingValidated,
    /// The vault rejected the freeze.
    Vault(StoreError),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::WrongPhase { current, action } => {
                write!(f, "cannot {action} while in phase '{current}'")
            }
            WorkflowError::NotConsolidated(problems) => {
                write!(f, "stack not consolidated: {}", problems.join("; "))
            }
            WorkflowError::NothingValidated => {
                write!(f, "no successful validation run to conserve")
            }
            WorkflowError::Vault(e) => write!(f, "vault error: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// An intervention ticket opened during the analysis phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Intervention {
    /// The diagnosis that opened it.
    pub diagnosis: Diagnosis,
    /// Unix timestamp opened.
    pub opened_at: u64,
    /// Unix timestamp resolved (None while open).
    pub resolved_at: Option<u64>,
}

/// Drives one experiment's preservation programme through the four phases.
pub struct MigrationManager {
    experiment: String,
    phase: Phase,
    interventions: Vec<Intervention>,
    /// (timestamp, phase-name) history for the bookkeeping pages.
    history: Vec<(u64, &'static str)>,
    /// The last validated environment + run, eligible for conservation.
    last_good: Option<(EnvironmentSpec, ValidationRun)>,
}

impl MigrationManager {
    /// Starts a programme in the preparation phase.
    pub fn new(experiment: impl Into<String>, now: u64) -> Self {
        MigrationManager {
            experiment: experiment.into(),
            phase: Phase::Preparation,
            interventions: Vec::new(),
            history: vec![(now, "preparation")],
            last_good: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> &Phase {
        &self.phase
    }

    /// The experiment this programme belongs to.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// All interventions, open and resolved.
    pub fn interventions(&self) -> &[Intervention] {
        &self.interventions
    }

    /// Open interventions.
    pub fn open_interventions(&self) -> impl Iterator<Item = &Intervention> {
        self.interventions
            .iter()
            .filter(|i| i.resolved_at.is_none())
    }

    /// Phase history as (timestamp, phase-name) pairs.
    pub fn history(&self) -> &[(u64, &'static str)] {
        &self.history
    }

    /// Completes preparation. `problems` are the outstanding consolidation
    /// findings (from `sp_build::prune::consolidate`); preparation only
    /// completes once they are empty.
    pub fn complete_preparation(
        &mut self,
        problems: Vec<String>,
        now: u64,
    ) -> Result<(), WorkflowError> {
        if self.phase != Phase::Preparation {
            return Err(WorkflowError::WrongPhase {
                current: self.phase.name(),
                action: "complete preparation",
            });
        }
        if !problems.is_empty() {
            return Err(WorkflowError::NotConsolidated(problems));
        }
        self.enter(Phase::Operation, now);
        Ok(())
    }

    /// Feeds a completed validation run (with its environment and optional
    /// diagnosis) into the state machine.
    ///
    /// * In **operation**, a successful run is recorded as the latest good
    ///   state; a failed run moves to **analysis** with its diagnosis.
    /// * In **analysis**, a successful run resolves the open interventions
    ///   and returns to **operation**; further failures update the open
    ///   diagnosis.
    pub fn on_run(
        &mut self,
        env: &EnvironmentSpec,
        run: &ValidationRun,
        diagnosis: Option<Diagnosis>,
        now: u64,
    ) -> Result<(), WorkflowError> {
        match (&self.phase, run.is_successful()) {
            (Phase::Operation, true) => {
                self.last_good = Some((env.clone(), run.clone()));
                Ok(())
            }
            (Phase::Operation, false) => {
                let diagnosis = diagnosis.unwrap_or_else(|| Diagnosis {
                    category: crate::inputs::InputCategory::ExperimentSoftware,
                    culprit: "unclassified".into(),
                    assignee: crate::inputs::Assignee::Experiment,
                    confidence: 0.0,
                    evidence: vec!["no attribution possible".into()],
                });
                self.interventions.push(Intervention {
                    diagnosis: diagnosis.clone(),
                    opened_at: now,
                    resolved_at: None,
                });
                self.enter(Phase::Analysis { diagnosis }, now);
                Ok(())
            }
            (Phase::Analysis { .. }, true) => {
                for intervention in &mut self.interventions {
                    if intervention.resolved_at.is_none() {
                        intervention.resolved_at = Some(now);
                    }
                }
                self.last_good = Some((env.clone(), run.clone()));
                self.enter(Phase::Operation, now);
                Ok(())
            }
            (Phase::Analysis { .. }, false) => {
                if let Some(diagnosis) = diagnosis {
                    self.enter(Phase::Analysis { diagnosis }, now);
                }
                Ok(())
            }
            (phase, _) => Err(WorkflowError::WrongPhase {
                current: phase.name(),
                action: "process a validation run",
            }),
        }
    }

    /// §3.1 (iv): conserves the last working image into the vault and ends
    /// the programme. Returns the vault label.
    pub fn freeze(
        &mut self,
        vault: &FrozenVault,
        reason: &str,
        artifacts: Vec<ObjectId>,
        now: u64,
    ) -> Result<String, WorkflowError> {
        if !matches!(self.phase, Phase::Operation | Phase::Analysis { .. }) {
            return Err(WorkflowError::WrongPhase {
                current: self.phase.name(),
                action: "freeze",
            });
        }
        let Some((env, run)) = &self.last_good else {
            return Err(WorkflowError::NothingValidated);
        };
        let label = format!(
            "{}-{}-final",
            self.experiment,
            env.label().replace([' ', '/'], "-")
        );
        let recipe_id = ObjectId::for_bytes(env.recipe().as_bytes());
        vault
            .freeze(FrozenImage {
                label: label.clone(),
                recipe: recipe_id,
                artifacts,
                frozen_at: now,
                description: format!(
                    "{reason}; last validated run {} ({} tests passed)",
                    run.id,
                    run.passed()
                ),
            })
            .map_err(WorkflowError::Vault)?;
        self.enter(
            Phase::Frozen {
                label: label.clone(),
            },
            now,
        );
        Ok(label)
    }

    fn enter(&mut self, phase: Phase, now: u64) {
        self.history.push((now, phase.name()));
        self.phase = phase;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::{Assignee, InputCategory};
    use crate::run::{RunId, TestResult, TestStatus};
    use crate::test::{FailureKind, TestCategory, TestId};
    use sp_env::{catalog, Version};
    use sp_exec::JobId;

    fn run(ok: bool) -> ValidationRun {
        ValidationRun {
            id: RunId(1),
            experiment: "h1".into(),
            image_label: "SL6/64bit gcc4.4".into(),
            description: String::new(),
            timestamp: 0,
            results: vec![TestResult {
                test: TestId::new("t"),
                category: TestCategory::Compilation,
                group: "g".into(),
                job: JobId(1),
                status: if ok {
                    TestStatus::Passed
                } else {
                    TestStatus::Failed(FailureKind::CompileError)
                },
                outputs: vec![],
                compare: None,
            }],
        }
    }

    fn diagnosis() -> Diagnosis {
        Diagnosis {
            category: InputCategory::OperatingSystem,
            culprit: "gcc4.8 toolchain".into(),
            assignee: Assignee::HostIt,
            confidence: 1.0,
            evidence: vec![],
        }
    }

    #[test]
    fn full_lifecycle() {
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let vault = FrozenVault::new();
        let mut mgr = MigrationManager::new("h1", 100);
        assert_eq!(mgr.phase().name(), "preparation");

        // Cannot leave preparation with open problems.
        assert!(matches!(
            mgr.complete_preparation(vec!["unused external: mysql".into()], 110),
            Err(WorkflowError::NotConsolidated(_))
        ));
        mgr.complete_preparation(vec![], 120).unwrap();
        assert_eq!(mgr.phase().name(), "operation");

        // Successful run in operation stays in operation.
        mgr.on_run(&env, &run(true), None, 130).unwrap();
        assert_eq!(mgr.phase().name(), "operation");

        // Failed run -> analysis with an intervention.
        mgr.on_run(&env, &run(false), Some(diagnosis()), 140)
            .unwrap();
        assert_eq!(mgr.phase().name(), "analysis");
        assert_eq!(mgr.open_interventions().count(), 1);

        // Recovery resolves the intervention.
        mgr.on_run(&env, &run(true), None, 150).unwrap();
        assert_eq!(mgr.phase().name(), "operation");
        assert_eq!(mgr.open_interventions().count(), 0);
        assert_eq!(mgr.interventions().len(), 1);

        // Freeze conserves into the vault.
        let label = mgr
            .freeze(&vault, "person-power ended", vec![], 200)
            .unwrap();
        assert_eq!(label, "h1-SL6-64bit-gcc4.4-final");
        assert_eq!(mgr.phase().name(), "frozen");
        let frozen = vault.get(&label).unwrap();
        assert!(frozen.description.contains("person-power ended"));

        // Nothing works after freezing.
        assert!(mgr.on_run(&env, &run(true), None, 210).is_err());
        assert!(mgr.freeze(&vault, "again", vec![], 220).is_err());
    }

    #[test]
    fn freeze_requires_a_good_run() {
        let vault = FrozenVault::new();
        let mut mgr = MigrationManager::new("zeus", 0);
        mgr.complete_preparation(vec![], 1).unwrap();
        assert!(matches!(
            mgr.freeze(&vault, "early freeze", vec![], 2),
            Err(WorkflowError::NothingValidated)
        ));
    }

    #[test]
    fn cannot_run_during_preparation() {
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let mut mgr = MigrationManager::new("hermes", 0);
        assert!(mgr.on_run(&env, &run(true), None, 1).is_err());
    }

    #[test]
    fn history_records_transitions() {
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let mut mgr = MigrationManager::new("h1", 0);
        mgr.complete_preparation(vec![], 1).unwrap();
        mgr.on_run(&env, &run(false), Some(diagnosis()), 2).unwrap();
        mgr.on_run(&env, &run(true), None, 3).unwrap();
        let names: Vec<&str> = mgr.history().iter().map(|(_, n)| *n).collect();
        assert_eq!(
            names,
            vec!["preparation", "operation", "analysis", "operation"]
        );
    }

    #[test]
    fn failure_without_diagnosis_still_opens_intervention() {
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let mut mgr = MigrationManager::new("h1", 0);
        mgr.complete_preparation(vec![], 1).unwrap();
        mgr.on_run(&env, &run(false), None, 2).unwrap();
        assert_eq!(mgr.open_interventions().count(), 1);
        let intervention = mgr.open_interventions().next().unwrap();
        assert_eq!(intervention.diagnosis.culprit, "unclassified");
    }
}
