//! The DPHEP data-preservation levels (Table 1 of the paper).
//!
//! "The levels are organised in order of increasing benefit, which comes
//! with increasing complexity and cost. Each level is associated with use
//! cases, and the preservation model adopted by an experiment should
//! reflect the level of analysis expected to be available in the future."

/// A DPHEP preservation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PreservationLevel {
    /// Level 1: provide additional documentation.
    Documentation,
    /// Level 2: preserve the data in a simplified format.
    SimplifiedFormat,
    /// Level 3: preserve the analysis level software and data format.
    AnalysisSoftware,
    /// Level 4: preserve the simulation and reconstruction software as
    /// well as basic level data.
    FullSoftware,
}

impl PreservationLevel {
    /// All levels in Table-1 order.
    pub fn all() -> [PreservationLevel; 4] {
        [
            PreservationLevel::Documentation,
            PreservationLevel::SimplifiedFormat,
            PreservationLevel::AnalysisSoftware,
            PreservationLevel::FullSoftware,
        ]
    }

    /// The numeric level (1–4).
    pub fn number(self) -> u8 {
        match self {
            PreservationLevel::Documentation => 1,
            PreservationLevel::SimplifiedFormat => 2,
            PreservationLevel::AnalysisSoftware => 3,
            PreservationLevel::FullSoftware => 4,
        }
    }

    /// The preservation model, verbatim from Table 1.
    pub fn model(self) -> &'static str {
        match self {
            PreservationLevel::Documentation => "Provide additional documentation",
            PreservationLevel::SimplifiedFormat => "Preserve the data in a simplified format",
            PreservationLevel::AnalysisSoftware => {
                "Preserve the analysis level software and data format"
            }
            PreservationLevel::FullSoftware => {
                "Preserve the simulation and reconstruction software as well as basic level data"
            }
        }
    }

    /// The use case, verbatim from Table 1.
    pub fn use_case(self) -> &'static str {
        match self {
            PreservationLevel::Documentation => "Publication related info search",
            PreservationLevel::SimplifiedFormat => "Outreach, simple training analyses",
            PreservationLevel::AnalysisSoftware => {
                "Full scientific analyses based on the existing reconstruction"
            }
            PreservationLevel::FullSoftware => "Retain the full potential of the experimental data",
        }
    }

    /// The complementary initiative area each level belongs to (§2): levels
    /// 1, 2 and 3–4 "represent three different areas".
    pub fn area(self) -> &'static str {
        match self {
            PreservationLevel::Documentation => "documentation",
            PreservationLevel::SimplifiedFormat => "outreach and simplified formats",
            PreservationLevel::AnalysisSoftware | PreservationLevel::FullSoftware => {
                "technical preservation projects"
            }
        }
    }

    /// Which validation-test categories a preservation programme at this
    /// level requires the sp-system to run.
    pub fn required_test_categories(self) -> &'static [crate::test::TestCategory] {
        use crate::test::TestCategory as C;
        match self {
            PreservationLevel::Documentation => &[],
            PreservationLevel::SimplifiedFormat => &[C::DataValidation],
            PreservationLevel::AnalysisSoftware => &[
                C::Compilation,
                C::UnitCheck,
                C::StandaloneExecutable,
                C::DataValidation,
            ],
            PreservationLevel::FullSoftware => &[
                C::Compilation,
                C::UnitCheck,
                C::StandaloneExecutable,
                C::AnalysisChain,
                C::DataValidation,
            ],
        }
    }
}

impl std::fmt::Display for PreservationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Level {}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_levels_in_order() {
        let all = PreservationLevel::all();
        assert_eq!(all.len(), 4);
        for (i, level) in all.iter().enumerate() {
            assert_eq!(level.number() as usize, i + 1);
        }
        // "organised in order of increasing benefit"
        assert!(PreservationLevel::Documentation < PreservationLevel::FullSoftware);
    }

    #[test]
    fn table1_contents() {
        assert_eq!(
            PreservationLevel::Documentation.model(),
            "Provide additional documentation"
        );
        assert_eq!(
            PreservationLevel::SimplifiedFormat.use_case(),
            "Outreach, simple training analyses"
        );
        assert_eq!(
            PreservationLevel::FullSoftware.use_case(),
            "Retain the full potential of the experimental data"
        );
    }

    #[test]
    fn three_areas() {
        let mut areas: Vec<&str> = PreservationLevel::all().iter().map(|l| l.area()).collect();
        areas.dedup();
        assert_eq!(areas.len(), 3, "levels span three complementary areas");
    }

    #[test]
    fn level4_requires_the_full_chain() {
        use crate::test::TestCategory;
        let cats = PreservationLevel::FullSoftware.required_test_categories();
        assert!(cats.contains(&TestCategory::AnalysisChain));
        let l3 = PreservationLevel::AnalysisSoftware.required_test_categories();
        assert!(!l3.contains(&TestCategory::AnalysisChain));
        assert!(l3.contains(&TestCategory::Compilation));
    }

    #[test]
    fn display() {
        assert_eq!(PreservationLevel::FullSoftware.to_string(), "Level 4");
    }
}
