//! The sp-system itself.
//!
//! [`SpSystem`] ties the substrates together: virtual-machine images
//! ([`sp_env`]), the automated build system ([`sp_build`]), job execution
//! ([`sp_exec`]), the toy physics chain ([`sp_hep`]) and the common storage
//! ([`sp_store`]). One call to [`SpSystem::run_validation`] performs what
//! §3.1 (ii) describes: a regular build of the experimental software
//! according to the current prescription of the working environment,
//! followed by the validation tests, with every output kept in the common
//! storage and compared against the last successful run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sp_build::{BuildEngine, BuildReport, BuildStatus, GraphError, ParallelBuilder};
use sp_env::{check_runtime, EnvironmentSpec, ImageError, RuntimeOutcome, VmImage, VmImageId};
use sp_exec::{
    Client, ClientError, ClientKind, CronSchedule, JobId, JobIdGenerator, JobPool, JobResult,
    JobSpec, JobStatus, StageStatus, VirtualClock,
};
use sp_hep::{
    hist_io, reconstruct, Analysis, DetectorSim, Event, EventGenerator, GeneratorConfig,
    MicroEvent, SelectionCuts, SmearingConstants,
};
use sp_store::{fnv64, FrozenVault, ObjectId, SharedStorage, StorageArea};

use crate::compare::{Comparator, CompareOutcome, TestOutput};
use crate::experiment::ExperimentDef;
use crate::ledger::RunLedger;
use crate::run::{RunId, TestResult, TestStatus, ValidationRun};
use crate::test::{FailureKind, TestCategory, TestKind, ValidationTest};

/// Errors from system-level operations.
#[derive(Debug)]
pub enum SystemError {
    /// No experiment registered under this name.
    UnknownExperiment(String),
    /// No image with this id.
    UnknownImage(VmImageId),
    /// The image spec failed coherence validation.
    Image(Vec<ImageError>),
    /// A client failed the joining requirements.
    Client(ClientError),
    /// The experiment's dependency graph is invalid.
    Graph(GraphError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::UnknownExperiment(name) => write!(f, "unknown experiment '{name}'"),
            SystemError::UnknownImage(id) => write!(f, "unknown image {id}"),
            SystemError::Image(errors) => {
                write!(f, "invalid image spec: ")?;
                for e in errors {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            SystemError::Client(e) => write!(f, "client rejected: {e}"),
            SystemError::Graph(e) => write!(f, "invalid package graph: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

/// Per-run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Campaign base seed. Test seeds derive from this and the test id, so
    /// they are stable across runs of the same campaign — which is what
    /// makes run-to-run output comparison meaningful.
    pub seed: u64,
    /// Workload scale factor (1.0 = nominal event counts).
    pub scale: f64,
    /// Worker threads for builds and parallel tests.
    pub threads: usize,
    /// Run description ("indicating which software versions were used").
    pub description: String,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 20131029, // the paper's arXiv date
            scale: 1.0,
            threads: 4,
            description: String::new(),
        }
    }
}

/// The sp-system: storage, images, clients, experiments, bookkeeping.
///
/// Every piece of mutable state lives behind interior mutability (atomics
/// for the id counters, `parking_lot` locks for the registries), so a
/// shared `&SpSystem` is all a worker thread needs: the campaign engine
/// dispatches [`run_validation`](Self::run_validation) calls from many
/// workers concurrently, and registration remains possible between
/// campaigns without exclusive ownership.
pub struct SpSystem {
    storage: SharedStorage,
    vault: FrozenVault,
    clock: VirtualClock,
    job_ids: JobIdGenerator,
    run_ids: AtomicU64,
    images: RwLock<Vec<Arc<VmImage>>>,
    clients: RwLock<Vec<Client>>,
    experiments: RwLock<BTreeMap<String, Arc<ExperimentDef>>>,
    ledger: RunLedger,
}

impl Default for SpSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl SpSystem {
    /// Creates an empty system with a fresh clock.
    pub fn new() -> Self {
        Self::with_clock(VirtualClock::starting_at(sp_exec::clock::ERA_2013))
    }

    /// Creates a system on an existing (possibly shared) clock.
    pub fn with_clock(clock: VirtualClock) -> Self {
        SpSystem {
            storage: SharedStorage::new(),
            vault: FrozenVault::new(),
            clock,
            job_ids: JobIdGenerator::new(),
            run_ids: AtomicU64::new(1),
            images: RwLock::new(Vec::new()),
            clients: RwLock::new(Vec::new()),
            experiments: RwLock::new(BTreeMap::new()),
            ledger: RunLedger::new(),
        }
    }

    /// The common storage.
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// The frozen-image vault.
    pub fn vault(&self) -> &FrozenVault {
        &self.vault
    }

    /// The system clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The run ledger.
    pub fn ledger(&self) -> &RunLedger {
        &self.ledger
    }

    /// Registered images (snapshot in registration order).
    pub fn images(&self) -> Vec<Arc<VmImage>> {
        self.images.read().clone()
    }

    /// Registered clients (snapshot in registration order).
    pub fn clients(&self) -> Vec<Client> {
        self.clients.read().clone()
    }

    /// Registered experiments (snapshot in name order).
    pub fn experiments(&self) -> impl Iterator<Item = Arc<ExperimentDef>> {
        self.experiments
            .read()
            .values()
            .cloned()
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Looks up an experiment by name.
    pub fn experiment(&self, name: &str) -> Option<Arc<ExperimentDef>> {
        self.experiments.read().get(name).cloned()
    }

    /// Builds and registers a VM image from a spec, conserving its recipe
    /// in the common storage. Returns the image id.
    pub fn register_image(&self, spec: EnvironmentSpec) -> Result<VmImageId, SystemError> {
        let mut images = self.images.write();
        let id = VmImageId(images.len() as u32 + 1);
        let image = VmImage::build(id, spec, self.clock.now()).map_err(SystemError::Image)?;
        self.storage.put_named(
            StorageArea::Images,
            &id.to_string(),
            image.spec.recipe().into_bytes(),
        );
        images.push(Arc::new(image));
        Ok(id)
    }

    /// Looks up an image.
    pub fn image(&self, id: VmImageId) -> Option<Arc<VmImage>> {
        self.images.read().iter().find(|i| i.id == id).cloned()
    }

    /// Registers a client machine, enforcing the §3.1 requirements (common
    /// storage access + cron capability).
    pub fn register_client(
        &self,
        name: &str,
        kind: ClientKind,
        schedule: CronSchedule,
        has_storage_access: bool,
        can_run_cron: bool,
    ) -> Result<(), SystemError> {
        let client = Client::register(name, kind, schedule, has_storage_access, can_run_cron)
            .map_err(SystemError::Client)?;
        self.clients.write().push(client);
        Ok(())
    }

    /// Registers an experiment: validates its graph and conserves the test
    /// definitions (thin script layers) in the common storage.
    pub fn register_experiment(&self, def: ExperimentDef) -> Result<(), SystemError> {
        def.graph.validate().map_err(SystemError::Graph)?;
        for test in def.suite.tests() {
            let env = self.storage.shell_env(
                &format!("{}/input", test.id),
                &format!("{}/output", test.id),
                "externals",
            );
            let script = format!(
                "#!/bin/sh\n# sp-system test {} ({})\n{}exec run-test\n",
                test.id,
                test.category().label(),
                env.render()
            );
            self.storage
                .put_named(StorageArea::Tests, test.id.as_str(), script.into_bytes());
        }
        self.experiments
            .write()
            .insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    /// Reserves `count` consecutive run ids, returning the first. The
    /// campaign engine pre-assigns ids to planned tasks so that parallel
    /// execution hands out exactly the ids sequential execution would.
    pub fn reserve_run_ids(&self, count: u64) -> RunId {
        RunId(self.run_ids.fetch_add(count, Ordering::SeqCst))
    }

    /// Runs the full validation of one experiment on one image: the §3.1
    /// (ii) regular build plus all validation tests, with bookkeeping.
    pub fn run_validation(
        &self,
        experiment_name: &str,
        image_id: VmImageId,
        config: &RunConfig,
    ) -> Result<ValidationRun, SystemError> {
        let run_id = self.reserve_run_ids(1);
        let run = self.execute_run_with_id(experiment_name, image_id, config, run_id)?;
        self.ledger.record(run.clone());
        Ok(run)
    }

    /// The execution core of [`run_validation`](Self::run_validation) with
    /// a caller-assigned run id and **no ledger commit**: the run summary
    /// is conserved in the common storage, but recording (and reference
    /// promotion) is left to the caller. The campaign engine uses this to
    /// batch a whole repetition's runs into one
    /// [`RunLedger::commit_batch`] while controlling reference-promotion
    /// order explicitly.
    pub fn execute_run_with_id(
        &self,
        experiment_name: &str,
        image_id: VmImageId,
        config: &RunConfig,
        run_id: RunId,
    ) -> Result<ValidationRun, SystemError> {
        let experiment = self
            .experiment(experiment_name)
            .ok_or_else(|| SystemError::UnknownExperiment(experiment_name.to_string()))?;
        let experiment = &*experiment;
        let image = self
            .image(image_id)
            .ok_or(SystemError::UnknownImage(image_id))?;
        let env = &image.spec;

        let timestamp = self.clock.now();

        // §3.1 (ii): the regular, automated build.
        let builder = ParallelBuilder::new(BuildEngine::new(self.storage.clone()), config.threads);
        let build = builder
            .build_stack(&experiment.graph, env)
            .map_err(SystemError::Graph)?;

        // Execute the suite: compile results come from the build report;
        // unit checks and standalone executables run in parallel through
        // the job pool; chains run sequentially.
        let mut results: Vec<TestResult> = Vec::new();
        let mut parallel_tests: Vec<(JobSpec, &ValidationTest)> = Vec::new();

        for test in experiment.suite.tests() {
            match &test.kind {
                TestKind::Compile { package } => {
                    results.push(self.compile_result(test, package, &build, run_id));
                }
                TestKind::UnitCheck { .. } | TestKind::Standalone { .. } => {
                    let job = JobSpec {
                        id: self.job_ids.allocate(),
                        name: test.id.as_str().to_string(),
                        tag: config.description.clone(),
                        image_label: env.label(),
                        submitted_at: timestamp,
                        inputs: Vec::new(),
                    };
                    parallel_tests.push((job, test));
                }
                TestKind::Chain { .. } => {
                    // Chains execute after the parallel batch (sequential
                    // by §3.2); placeholder handled below.
                }
            }
        }

        // Parallel batch via the job pool.
        let rich: Mutex<BTreeMap<JobId, TestResult>> = Mutex::new(BTreeMap::new());
        let by_id: BTreeMap<JobId, &ValidationTest> = parallel_tests
            .iter()
            .map(|(job, test)| (job.id, *test))
            .collect();
        let pool = JobPool::new(config.threads);
        let specs: Vec<JobSpec> = parallel_tests.iter().map(|(j, _)| j.clone()).collect();
        pool.run_batch(specs, |spec| {
            let test = by_id[&spec.id];
            let result =
                self.run_parallel_test(experiment, test, env, &build, spec, config, run_id);
            let job_status = match &result.status {
                TestStatus::Passed | TestStatus::PassedWithWarnings(_) => JobStatus::Succeeded,
                TestStatus::Failed(FailureKind::Crash(m)) => JobStatus::Crashed(m.clone()),
                TestStatus::Failed(_) => JobStatus::Failed(1),
                TestStatus::Skipped(_) => JobStatus::Failed(0),
            };
            let job_result = JobResult {
                id: spec.id,
                status: job_status,
                log: String::new(),
                outputs: result.outputs.clone(),
                started_at: spec.submitted_at,
                finished_at: spec.submitted_at,
            };
            rich.lock().insert(spec.id, result);
            job_result
        });
        results.extend(rich.into_inner().into_values());

        // Sequential chains.
        for test in experiment.suite.tests() {
            if let TestKind::Chain {
                chain,
                stage_packages,
                events,
            } = &test.kind
            {
                results.extend(self.run_chain_test(
                    experiment,
                    test,
                    chain,
                    stage_packages,
                    *events,
                    env,
                    &build,
                    config,
                    run_id,
                ));
            }
        }

        results.sort_by(|a, b| a.test.cmp(&b.test));
        let run = ValidationRun {
            id: run_id,
            experiment: experiment_name.to_string(),
            image_label: env.label(),
            description: if config.description.is_empty() {
                format!("{} @ {}", experiment_name, env.full_label())
            } else {
                config.description.clone()
            },
            timestamp,
            results,
        };

        // Bookkeeping: run summary into the common storage. The ledger
        // commit (which promotes successful runs to reference status) is
        // the caller's responsibility.
        let summary = format!(
            "run {} experiment {} image {} time {}\npassed {} failed {} skipped {}\ndigest {}\n",
            run.id,
            run.experiment,
            run.image_label,
            run.timestamp,
            run.passed(),
            run.failed(),
            run.skipped(),
            run.digest().to_hex(),
        );
        self.storage.put_named(
            StorageArea::Results,
            &format!("{run_id}/SUMMARY"),
            summary.into_bytes(),
        );
        Ok(run)
    }

    /// Builds the result of a compilation test from the build report.
    fn compile_result(
        &self,
        test: &ValidationTest,
        package: &sp_build::PackageId,
        build: &BuildReport,
        run_id: RunId,
    ) -> TestResult {
        let record = build.records.get(package);
        let (status, log) = match record {
            None => (
                TestStatus::Failed(FailureKind::CompileError),
                format!("package '{package}' is not part of the stack\n"),
            ),
            Some(r) => {
                let status = match &r.status {
                    BuildStatus::Built => TestStatus::Passed,
                    BuildStatus::BuiltWithWarnings(n) => TestStatus::PassedWithWarnings(*n),
                    BuildStatus::Failed => TestStatus::Failed(FailureKind::CompileError),
                    BuildStatus::SkippedDepFailed(dep) => {
                        TestStatus::Skipped(format!("dependency '{dep}' failed"))
                    }
                };
                (status, r.log.clone())
            }
        };
        let log_id = self.store_output(run_id, test, "build.log", log.into_bytes());
        let mut outputs = vec![("build.log".to_string(), log_id)];
        if let Some(artifact) = record.and_then(|r| r.artifact) {
            outputs.push(("tarball".to_string(), artifact));
        }
        TestResult {
            test: test.id.clone(),
            category: TestCategory::Compilation,
            group: test.group.clone(),
            job: self.job_ids.allocate(),
            status,
            outputs,
            compare: None,
        }
    }

    /// Runs one unit-check or standalone test (called from the job pool).
    #[allow(clippy::too_many_arguments)]
    fn run_parallel_test(
        &self,
        experiment: &ExperimentDef,
        test: &ValidationTest,
        env: &EnvironmentSpec,
        build: &BuildReport,
        spec: &JobSpec,
        config: &RunConfig,
        run_id: RunId,
    ) -> TestResult {
        let package = match &test.kind {
            TestKind::UnitCheck { package, .. } | TestKind::Standalone { package, .. } => package,
            _ => unreachable!("parallel tests are unit checks or standalone"),
        };
        let make = |status: TestStatus,
                    outputs: Vec<(String, ObjectId)>,
                    compare: Option<CompareOutcome>| TestResult {
            test: test.id.clone(),
            category: test.category(),
            group: test.group.clone(),
            job: spec.id,
            status,
            outputs,
            compare,
        };

        // The executable must exist.
        let built = build
            .records
            .get(package)
            .map(|r| r.status.has_artifact())
            .unwrap_or(false);
        if !built {
            return make(
                TestStatus::Skipped(format!("artifact for '{package}' missing")),
                Vec::new(),
                None,
            );
        }

        // Runtime behaviour of the package (with its dependencies).
        let traits = experiment.effective_runtime_traits(package);
        let deviation = match check_runtime(&traits, env) {
            RuntimeOutcome::Crash { message, .. } => {
                return make(
                    TestStatus::Failed(FailureKind::Crash(message)),
                    Vec::new(),
                    None,
                );
            }
            RuntimeOutcome::Deviating { shift_sigma, .. } => shift_sigma,
            RuntimeOutcome::Nominal => 0.0,
        };

        let output = match &test.kind {
            TestKind::UnitCheck {
                package,
                check_index,
            } => unit_check_output(package, *check_index, deviation),
            TestKind::Standalone { events, .. } => {
                let events = scaled_events(*events, config.scale);
                let seed = fnv64(test.id.as_str()) ^ config.seed;
                let analysis =
                    sp_hep::run_chain(&GeneratorConfig::hera_nc(), events, seed, deviation);
                TestOutput::Numbers(vec![
                    ("total".into(), analysis.total as f64),
                    ("selected".into(), analysis.selected as f64),
                    (
                        "mean_log10_q2".into(),
                        analysis
                            .histograms
                            .get("q2")
                            .map(|h| h.mean())
                            .unwrap_or(0.0),
                    ),
                    (
                        "mean_e_prime".into(),
                        analysis
                            .histograms
                            .get("e_prime")
                            .map(|h| h.mean())
                            .unwrap_or(0.0),
                    ),
                ])
            }
            _ => unreachable!(),
        };

        let oid = self.store_output(run_id, test, "result", output.to_bytes());
        let outputs = vec![("result".to_string(), oid)];
        let (status, compare) =
            self.compare_to_reference(&experiment.name, test.id.as_str(), "result", &output);
        make(status, outputs, compare)
    }

    /// Runs a full analysis chain, producing one result per stage.
    #[allow(clippy::too_many_arguments)]
    fn run_chain_test(
        &self,
        experiment: &ExperimentDef,
        test: &ValidationTest,
        chain: &sp_exec::ChainDef,
        stage_packages: &BTreeMap<String, sp_build::PackageId>,
        events: usize,
        env: &EnvironmentSpec,
        build: &BuildReport,
        config: &RunConfig,
        run_id: RunId,
    ) -> Vec<TestResult> {
        let events = scaled_events(events, config.scale);
        let seed = fnv64(test.id.as_str()) ^ config.seed;
        // All chains run the NC workload regardless of their physics name:
        // validation power comes from populated control distributions, and
        // the NC selection keeps every histogram filled. (A CC-configured
        // generator would leave the NC-oriented selection empty and make
        // the comparison vacuous.)
        let generator_config = GeneratorConfig::hera_nc();

        // Total numeric deviation across every stage package: a latent bug
        // anywhere in the chain shifts the final distributions.
        let mut total_deviation = 0.0;
        let mut crash: BTreeMap<&str, String> = BTreeMap::new();
        for (stage, package) in stage_packages {
            let traits = experiment.effective_runtime_traits(package);
            match check_runtime(&traits, env) {
                RuntimeOutcome::Crash { message, .. } => {
                    crash.insert(stage.as_str(), message);
                }
                RuntimeOutcome::Deviating { shift_sigma, .. } => total_deviation += shift_sigma,
                RuntimeOutcome::Nominal => {}
            }
        }

        /// Data flowing between chain stages.
        #[derive(Clone)]
        enum StageData {
            Events(Vec<Event>),
            Reco(Vec<sp_hep::RecoEvent>),
            Done,
        }

        let mut stage_outputs: BTreeMap<String, Vec<(String, ObjectId)>> = BTreeMap::new();
        let mut validation_compare: Option<CompareOutcome> = None;

        let report = chain.execute(|stage, inputs| {
            // Stage prerequisites: the implementing package must be built
            // and must not crash at run time.
            if let Some(package) = stage_packages.get(&stage.name) {
                let built = build
                    .records
                    .get(package)
                    .map(|r| r.status.has_artifact())
                    .unwrap_or(false);
                if !built {
                    return Err(format!("dep:{package}"));
                }
            }
            if let Some(message) = crash.get(stage.name.as_str()) {
                return Err(format!("crash:{message}"));
            }

            let mut outputs: Vec<(String, ObjectId)> = Vec::new();
            let data = match stage.name.as_str() {
                "mcgen" => {
                    let generated: Vec<Event> = EventGenerator::new(generator_config.clone(), seed)
                        .take(events)
                        .collect();
                    let bytes = sp_hep::write_dst(&generated);
                    outputs.push((
                        "gen.dst".to_string(),
                        self.store_stage_output(
                            run_id,
                            test,
                            &stage.name,
                            "gen.dst",
                            bytes.to_vec(),
                        ),
                    ));
                    StageData::Events(generated)
                }
                "sim" => {
                    let StageData::Events(generated) = &inputs["mcgen"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let sim =
                        DetectorSim::new(SmearingConstants::V2_SL5).with_deviation(total_deviation);
                    let simulated: Vec<Event> = generated
                        .iter()
                        .map(|ev| sim.simulate(ev, seed ^ ev.id))
                        .collect();
                    StageData::Events(simulated)
                }
                "dst" => {
                    let StageData::Events(simulated) = &inputs["sim"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let bytes = sp_hep::write_dst(simulated);
                    outputs.push((
                        "events.dst".to_string(),
                        self.store_stage_output(
                            run_id,
                            test,
                            &stage.name,
                            "events.dst",
                            bytes.to_vec(),
                        ),
                    ));
                    StageData::Events(simulated.clone())
                }
                "microdst" => {
                    let StageData::Events(simulated) = &inputs["dst"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let reco: Vec<sp_hep::RecoEvent> = simulated
                        .iter()
                        .map(|ev| reconstruct(ev, &generator_config))
                        .collect();
                    let micro: Vec<MicroEvent> = reco
                        .iter()
                        .filter_map(|r| {
                            let k = r.kinematics?;
                            Some(MicroEvent {
                                id: r.id,
                                process: r.process,
                                q2: k.q2,
                                x: k.x,
                                y: k.y,
                                e_prime: r.electron.map(|e| e.e).unwrap_or(0.0),
                            })
                        })
                        .collect();
                    let bytes = sp_hep::write_micro_dst(&micro);
                    outputs.push((
                        "events.microdst".to_string(),
                        self.store_stage_output(
                            run_id,
                            test,
                            &stage.name,
                            "events.microdst",
                            bytes.to_vec(),
                        ),
                    ));
                    StageData::Reco(reco)
                }
                "analysis" => {
                    let StageData::Reco(reco) = &inputs["microdst"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let mut analysis = Analysis::new(SelectionCuts::default());
                    for event in reco {
                        analysis.process(event);
                    }
                    let result = analysis.finish();
                    let bytes = hist_io::encode_set(&result.histograms);
                    let mut payload = vec![b'H'];
                    payload.extend_from_slice(&bytes);
                    outputs.push((
                        "histograms".to_string(),
                        self.store_stage_output(run_id, test, &stage.name, "histograms", payload),
                    ));
                    StageData::Done
                }
                "validation" => {
                    // Compare the analysis histograms to the reference.
                    let analysis_test_id = format!("{}/analysis", test.id);
                    let stored = stage_outputs
                        .get("analysis")
                        .and_then(|outs| outs.iter().find(|(n, _)| n == "histograms"))
                        .map(|(_, id)| *id);
                    let Some(hist_id) = stored else {
                        return Err("dep:analysis-output-missing".to_string());
                    };
                    let current = self
                        .storage
                        .content()
                        .get(hist_id)
                        .ok()
                        .and_then(|b| TestOutput::from_bytes(&b));
                    let Some(current) = current else {
                        return Err("cmp:analysis output unreadable".to_string());
                    };
                    match self.load_reference(&experiment.name, &analysis_test_id, "histograms") {
                        None => {
                            validation_compare = None; // first run: becomes reference
                            StageData::Done
                        }
                        Some(reference) => {
                            let comparator = Comparator::default_for(&current);
                            let outcome = comparator.compare(&current, &reference);
                            let passed = outcome.passed();
                            let detail = match &outcome {
                                CompareOutcome::Differs { detail } => detail.clone(),
                                _ => String::new(),
                            };
                            validation_compare = Some(outcome);
                            if !passed {
                                return Err(format!("cmp:{detail}"));
                            }
                            StageData::Done
                        }
                    }
                }
                other => return Err(format!("unknown stage '{other}'")),
            };
            stage_outputs.insert(stage.name.clone(), outputs);
            Ok(data)
        });

        // Convert per-stage statuses into test results.
        report
            .stages
            .iter()
            .map(|(stage_name, status)| {
                let test_id = crate::test::TestId::new(format!("{}/{stage_name}", test.id));
                let category = if stage_name == "validation" {
                    TestCategory::DataValidation
                } else {
                    TestCategory::AnalysisChain
                };
                let status = match status {
                    StageStatus::Succeeded => TestStatus::Passed,
                    StageStatus::Failed(message) => {
                        TestStatus::Failed(parse_stage_error(message, stage_name))
                    }
                    StageStatus::Skipped { missing, .. } => {
                        TestStatus::Skipped(format!("upstream stage '{missing}' unavailable"))
                    }
                };
                let compare = if stage_name == "validation" {
                    validation_compare.clone()
                } else {
                    None
                };
                TestResult {
                    test: test_id,
                    category,
                    group: test.group.clone(),
                    job: self.job_ids.allocate(),
                    status,
                    outputs: stage_outputs.get(stage_name).cloned().unwrap_or_default(),
                    compare,
                }
            })
            .collect()
    }

    /// Compares a fresh output against the experiment's reference, deciding
    /// the test status.
    fn compare_to_reference(
        &self,
        experiment: &str,
        test_id: &str,
        output_name: &str,
        output: &TestOutput,
    ) -> (TestStatus, Option<CompareOutcome>) {
        match self.load_reference(experiment, test_id, output_name) {
            None => (TestStatus::Passed, None),
            Some(reference) => {
                let comparator = Comparator::default_for(output);
                let outcome = comparator.compare(output, &reference);
                let status = if outcome.passed() {
                    TestStatus::Passed
                } else {
                    let detail = match &outcome {
                        CompareOutcome::Differs { detail } => detail.clone(),
                        _ => String::new(),
                    };
                    TestStatus::Failed(FailureKind::ComparisonFailed(detail))
                };
                (status, Some(outcome))
            }
        }
    }

    /// Loads the named reference output of a test, if any.
    fn load_reference(
        &self,
        experiment: &str,
        test_id: &str,
        output_name: &str,
    ) -> Option<TestOutput> {
        let outputs = self.ledger.reference_outputs(experiment, test_id)?;
        let (_, oid) = outputs.iter().find(|(n, _)| n == output_name)?;
        let bytes = self.storage.content().get(*oid).ok()?;
        TestOutput::from_bytes(&bytes)
    }

    fn store_output(
        &self,
        run_id: RunId,
        test: &ValidationTest,
        name: &str,
        bytes: Vec<u8>,
    ) -> ObjectId {
        self.storage.put_named(
            StorageArea::Results,
            &format!("{run_id}/{}/{name}", test.id),
            bytes,
        )
    }

    fn store_stage_output(
        &self,
        run_id: RunId,
        test: &ValidationTest,
        stage: &str,
        name: &str,
        bytes: Vec<u8>,
    ) -> ObjectId {
        self.storage.put_named(
            StorageArea::Results,
            &format!("{run_id}/{}/{stage}/{name}", test.id),
            bytes,
        )
    }

    /// Exports the "successfully validated recipe of the latest
    /// configuration" (§3.1): the environment recipe of the image the last
    /// successful run executed on, plus the content addresses of every
    /// artifact tar-ball it produced. "If a production system is required,
    /// then this recipe should be deployed on a suitable resource at the
    /// time: an institute cluster, grid, cloud, sky, quantum computer, and
    /// so on."
    pub fn export_production_recipe(&self, experiment_name: &str) -> Option<ProductionRecipe> {
        let run = self.ledger.latest_successful(experiment_name)?;
        let image = self
            .images
            .read()
            .iter()
            .find(|i| i.label() == run.image_label)
            .cloned()?;
        let mut artifacts: Vec<(String, ObjectId)> = Vec::new();
        for result in &run.results {
            for (name, oid) in &result.outputs {
                if name == "tarball" {
                    artifacts.push((result.test.as_str().to_string(), *oid));
                }
            }
        }
        Some(ProductionRecipe {
            experiment: experiment_name.to_string(),
            validated_by: run.id,
            environment: image.spec.recipe(),
            artifacts,
        })
    }
}

/// A deployable description of the last validated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionRecipe {
    /// Experiment this recipe preserves.
    pub experiment: String,
    /// The validation run that certified it.
    pub validated_by: RunId,
    /// The environment recipe (OS, arch, compiler, externals).
    pub environment: String,
    /// `(compile-test id, tar-ball content address)` for every package.
    pub artifacts: Vec<(String, ObjectId)>,
}

impl ProductionRecipe {
    /// Renders the recipe as the text file a deployment script would
    /// consume.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# sp-system production recipe for {}\n# certified by validation run {}\n{}",
            self.experiment, self.validated_by, self.environment
        );
        for (test, oid) in &self.artifacts {
            out.push_str(&format!("artifact = {} {}\n", test, oid.to_hex()));
        }
        out
    }
}

/// Deterministic unit-check numbers: a pure function of (package, check,
/// deviation). A deviating platform shifts every reported number by a
/// relative `1e-3 · σ`, far outside the comparator's `1e-9` tolerance.
fn unit_check_output(
    package: &sp_build::PackageId,
    check_index: u32,
    deviation: f64,
) -> TestOutput {
    let h = fnv64(&format!("{package}/{check_index}"));
    let base1 = (h % 100_000) as f64 / 100.0;
    let base2 = ((h >> 20) % 100_000) as f64 / 1000.0;
    let factor = 1.0 + deviation * 1e-3;
    TestOutput::Numbers(vec![
        ("checksum".into(), base1 * factor),
        ("mean".into(), base2 * factor),
        ("entries".into(), ((h >> 40) % 10_000) as f64),
    ])
}

/// Scales an event count, keeping a sane minimum.
fn scaled_events(events: usize, scale: f64) -> usize {
    ((events as f64 * scale).round() as usize).max(10)
}

/// Parses the prefixed stage-error convention into a failure kind.
fn parse_stage_error(message: &str, stage_name: &str) -> FailureKind {
    if let Some(pkg) = message.strip_prefix("dep:") {
        FailureKind::DependencyFailed(pkg.to_string())
    } else if let Some(msg) = message.strip_prefix("crash:") {
        FailureKind::Crash(msg.to_string())
    } else if let Some(detail) = message.strip_prefix("cmp:") {
        FailureKind::ComparisonFailed(detail.to_string())
    } else {
        FailureKind::ChainStageFailed(stage_name.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preservation::PreservationLevel;
    use crate::suite::TestSuite;
    use crate::test::ValidationTest;
    use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
    use sp_env::{catalog, Arch, CodeTrait, Version};
    use sp_exec::{ChainDef, CronSchedule};

    /// A small but complete experiment: a clean library, a 64-bit-latent
    /// buggy library, an analysis linking the buggy library, and a chain.
    fn tiny_experiment() -> ExperimentDef {
        let graph = DependencyGraph::from_packages([
            Package::new("util", Version::new(1, 0, 0), PackageKind::Library),
            Package::new("legacy", Version::new(1, 0, 0), PackageKind::Library)
                .with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 6.0 }),
            Package::new("mcgen-pkg", Version::new(2, 0, 0), PackageKind::Generator).dep("util"),
            Package::new("sim-pkg", Version::new(2, 0, 0), PackageKind::Simulation).dep("util"),
            Package::new(
                "reco-pkg",
                Version::new(2, 0, 0),
                PackageKind::Reconstruction,
            )
            .dep("legacy"),
            Package::new("ana-pkg", Version::new(2, 0, 0), PackageKind::Analysis).dep("util"),
        ])
        .unwrap();
        let mut suite = TestSuite::new("tiny", PreservationLevel::FullSoftware);
        for pkg in [
            "util",
            "legacy",
            "mcgen-pkg",
            "sim-pkg",
            "reco-pkg",
            "ana-pkg",
        ] {
            suite
                .add(ValidationTest::new(
                    format!("tiny/compile/{pkg}"),
                    "tiny",
                    "compilation",
                    TestKind::Compile {
                        package: PackageId::new(pkg),
                    },
                ))
                .unwrap();
        }
        suite
            .add(ValidationTest::new(
                "tiny/unit/util-0",
                "tiny",
                "unit checks",
                TestKind::UnitCheck {
                    package: PackageId::new("util"),
                    check_index: 0,
                },
            ))
            .unwrap();
        suite
            .add(ValidationTest::new(
                "tiny/unit/legacy-0",
                "tiny",
                "unit checks",
                TestKind::UnitCheck {
                    package: PackageId::new("legacy"),
                    check_index: 0,
                },
            ))
            .unwrap();
        suite
            .add(ValidationTest::new(
                "tiny/standalone/ana",
                "tiny",
                "analysis",
                TestKind::Standalone {
                    package: PackageId::new("ana-pkg"),
                    events: 150,
                },
            ))
            .unwrap();
        let mut stage_packages = BTreeMap::new();
        for (stage, pkg) in [
            ("mcgen", "mcgen-pkg"),
            ("sim", "sim-pkg"),
            ("dst", "reco-pkg"),
            ("microdst", "reco-pkg"),
            ("analysis", "ana-pkg"),
            ("validation", "ana-pkg"),
        ] {
            stage_packages.insert(stage.to_string(), PackageId::new(pkg));
        }
        suite
            .add(ValidationTest::new(
                "tiny/chain/nc",
                "tiny",
                "MC chain",
                TestKind::Chain {
                    chain: ChainDef::full_analysis_chain("nc"),
                    stage_packages,
                    events: 2500,
                },
            ))
            .unwrap();
        ExperimentDef {
            name: "tiny".into(),
            color: "blue",
            graph,
            suite,
            entry_points: vec![PackageId::new("ana-pkg")],
        }
    }

    fn config() -> RunConfig {
        RunConfig {
            scale: 1.0,
            threads: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn first_run_on_reference_platform_is_green() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let run = system.run_validation("tiny", image, &config()).unwrap();
        assert!(
            run.is_successful(),
            "failures: {:?}",
            run.failures().collect::<Vec<_>>()
        );
        // 6 compiles + 2 unit + 1 standalone + 6 chain stages.
        assert_eq!(run.results.len(), 15);
        assert!(system.ledger().has_reference("tiny"));
    }

    #[test]
    fn second_identical_run_is_bit_identical() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let first = system.run_validation("tiny", image, &config()).unwrap();
        let second = system.run_validation("tiny", image, &config()).unwrap();
        assert!(second.is_successful());
        assert_eq!(first.digest(), second.digest(), "reproducibility");
        // The second run compared against the first and found identity.
        let compared: Vec<_> = second
            .results
            .iter()
            .filter(|r| matches!(r.compare, Some(CompareOutcome::Identical)))
            .collect();
        assert!(!compared.is_empty());
    }

    #[test]
    fn migration_to_64bit_finds_the_latent_bug() {
        let system = SpSystem::new();
        let sl5_32 = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        let sl6_64 = system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();

        // Establish the 32-bit reference.
        let reference = system.run_validation("tiny", sl5_32, &config()).unwrap();
        assert!(reference.is_successful());

        // Migrate: the legacy library's pointer bug must surface.
        let migrated = system.run_validation("tiny", sl6_64, &config()).unwrap();
        assert!(!migrated.is_successful());
        let failed: Vec<String> = migrated
            .failures()
            .map(|r| r.test.as_str().to_string())
            .collect();
        // The unit check on the buggy library fails...
        assert!(
            failed.iter().any(|t| t.contains("legacy")),
            "legacy unit check should fail: {failed:?}"
        );
        // ...and the chain validation stage sees shifted histograms
        // (reco-pkg links legacy, deviating the whole chain).
        assert!(
            failed.iter().any(|t| t.contains("chain/nc")),
            "chain should fail validation: {failed:?}"
        );
        // Compile tests still pass (with warnings) on SL6.
        let compile_ok = migrated
            .by_category(TestCategory::Compilation)
            .all(|r| r.status.is_pass());
        assert!(compile_ok, "the bug is invisible to compilation");
    }

    #[test]
    fn diagnosis_blames_the_experiment_package() {
        let system = SpSystem::new();
        let sl5_32 = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        let sl6_64 = system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        system.run_validation("tiny", sl5_32, &config()).unwrap();
        let migrated = system.run_validation("tiny", sl6_64, &config()).unwrap();

        let experiment = system.experiment("tiny").unwrap();
        let env = system.image(sl6_64).unwrap().spec.clone();
        let diagnosis = crate::classify(&experiment, &migrated, &env).unwrap();
        assert_eq!(
            diagnosis.category,
            crate::inputs::InputCategory::ExperimentSoftware
        );
        assert_eq!(diagnosis.culprit, "legacy");
    }

    #[test]
    fn unknown_experiment_and_image_error() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap();
        assert!(matches!(
            system.run_validation("ghost", image, &config()),
            Err(SystemError::UnknownExperiment(_))
        ));
        system.register_experiment(tiny_experiment()).unwrap();
        assert!(matches!(
            system.run_validation("tiny", VmImageId(99), &config()),
            Err(SystemError::UnknownImage(_))
        ));
    }

    #[test]
    fn incoherent_image_rejected() {
        let system = SpSystem::new();
        let bad = sp_env::EnvironmentSpec::new(
            sp_env::OsRelease::SL6,
            Arch::I686,
            sp_env::Compiler::GCC44,
        );
        assert!(matches!(
            system.register_image(bad),
            Err(SystemError::Image(_))
        ));
    }

    #[test]
    fn client_requirements_enforced() {
        let system = SpSystem::new();
        assert!(system
            .register_client(
                "vm-sl6",
                ClientKind::VirtualMachine {
                    image_label: "SL6/64bit gcc4.4".into()
                },
                CronSchedule::nightly(),
                true,
                true,
            )
            .is_ok());
        assert!(matches!(
            system.register_client(
                "island",
                ClientKind::BatchNode,
                CronSchedule::nightly(),
                false,
                true,
            ),
            Err(SystemError::Client(_))
        ));
        assert_eq!(system.clients().len(), 1);
    }

    #[test]
    fn production_recipe_export() {
        let system = SpSystem::new();
        // No experiment, no recipe.
        assert!(system.export_production_recipe("tiny").is_none());

        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        // No successful run yet, still no recipe.
        assert!(system.export_production_recipe("tiny").is_none());

        let run = system.run_validation("tiny", image, &config()).unwrap();
        assert!(run.is_successful());
        let recipe = system.export_production_recipe("tiny").unwrap();
        assert_eq!(recipe.validated_by, run.id);
        assert!(recipe.environment.contains("os = SL5"));
        assert!(recipe.environment.contains("compiler = gcc4.1"));
        // One artifact per package in the tiny stack.
        assert_eq!(recipe.artifacts.len(), 6);
        // Every artifact resolves in the common storage.
        for (_, oid) in &recipe.artifacts {
            assert!(system.storage().content().contains(*oid));
        }
        let rendered = recipe.render();
        assert!(rendered.contains("# sp-system production recipe for tiny"));
    }

    #[test]
    fn outputs_are_kept_in_common_storage() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let run = system.run_validation("tiny", image, &config()).unwrap();
        // Every declared output object exists in storage.
        for result in &run.results {
            for (name, oid) in &result.outputs {
                assert!(
                    system.storage().content().contains(*oid),
                    "output {name} of {} missing",
                    result.test
                );
            }
        }
        // The run summary is stored too.
        assert!(system
            .storage()
            .lookup(StorageArea::Results, &format!("{}/SUMMARY", run.id))
            .is_some());
    }
}
