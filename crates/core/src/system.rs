//! The sp-system itself.
//!
//! [`SpSystem`] ties the substrates together: virtual-machine images
//! ([`sp_env`]), the automated build system ([`sp_build`]), job execution
//! ([`sp_exec`]), the toy physics chain ([`sp_hep`]) and the common storage
//! ([`sp_store`]). One call to [`SpSystem::run_validation`] performs what
//! §3.1 (ii) describes: a regular build of the experimental software
//! according to the current prescription of the working environment,
//! followed by the validation tests, with every output kept in the common
//! storage and compared against the last successful run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sp_build::{BuildEngine, BuildReport, BuildStatus, GraphError, ParallelBuilder};
use sp_env::{check_runtime, EnvironmentSpec, ImageError, RuntimeOutcome, VmImage, VmImageId};
use sp_exec::{
    Client, ClientError, ClientKind, CronSchedule, JobId, JobIdGenerator, JobPool, JobResult,
    JobSpec, JobStatus, StageStatus, VirtualClock, WorkStealingPool,
};
use sp_hep::{
    hist_io, reconstruct, Analysis, DetectorSim, Event, EventGenerator, GeneratorConfig,
    MicroEvent, SelectionCuts, SmearingConstants,
};
use sp_store::snapshot::{decode_run_key, encode_run_key};
use sp_store::{
    fnv64, DigestCacheStats, FrozenVault, ObjectId, RetentionPolicy, RunKey, RunMemo,
    SharedStorage, Snapshot, SnapshotError, SnapshotSection, StorageArea,
};

use crate::warm;

use crate::compare::{Comparator, CompareOutcome, TestOutput};
use crate::experiment::ExperimentDef;
use crate::ledger::RunLedger;
use crate::run::{RunId, TestResult, TestStatus, ValidationRun};
use crate::test::{FailureKind, TestCategory, TestKind, ValidationTest};

/// Errors from system-level operations.
#[derive(Debug)]
pub enum SystemError {
    /// No experiment registered under this name.
    UnknownExperiment(String),
    /// No image with this id.
    UnknownImage(VmImageId),
    /// The image spec failed coherence validation.
    Image(Vec<ImageError>),
    /// A client failed the joining requirements.
    Client(ClientError),
    /// The experiment's dependency graph is invalid.
    Graph(GraphError),
    /// A submitted campaign names an experiment another submitted campaign
    /// already covers. Concurrent campaigns must be experiment-disjoint —
    /// references, memo cells and ledger lanes are all per-experiment, and
    /// disjointness is what makes each campaign's summary byte-identical
    /// to running it alone.
    CampaignConflict(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::UnknownExperiment(name) => write!(f, "unknown experiment '{name}'"),
            SystemError::UnknownImage(id) => write!(f, "unknown image {id}"),
            SystemError::Image(errors) => {
                write!(f, "invalid image spec: ")?;
                for e in errors {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            SystemError::Client(e) => write!(f, "client rejected: {e}"),
            SystemError::Graph(e) => write!(f, "invalid package graph: {e}"),
            SystemError::CampaignConflict(experiment) => write!(
                f,
                "experiment '{experiment}' is already covered by a submitted campaign"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

/// Per-run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Campaign base seed. Test seeds derive from this and the test id, so
    /// they are stable across runs of the same campaign — which is what
    /// makes run-to-run output comparison meaningful.
    pub seed: u64,
    /// Workload scale factor (1.0 = nominal event counts).
    pub scale: f64,
    /// Worker threads for builds and parallel tests.
    pub threads: usize,
    /// Run description ("indicating which software versions were used").
    pub description: String,
    /// Serve unchanged cells from the system's run memo: a test whose
    /// determinants — id, campaign seed, environment revision (full image
    /// label including externals) and scale — match an earlier execution
    /// replays that execution's conserved outputs instead of re-running
    /// the MC chain. Comparisons against the reference are always
    /// recomputed (references evolve between runs), so memoized results
    /// are byte-identical to uncached ones.
    pub memoize: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 20131029, // the paper's arXiv date
            scale: 1.0,
            threads: 4,
            description: String::new(),
            memoize: false,
        }
    }
}

/// The sp-system: storage, images, clients, experiments, bookkeeping.
///
/// Every piece of mutable state lives behind interior mutability (atomics
/// for the id counters, `parking_lot` locks for the registries), so a
/// shared `&SpSystem` is all a worker thread needs: the campaign engine
/// dispatches [`run_validation`](Self::run_validation) calls from many
/// workers concurrently, and registration remains possible between
/// campaigns without exclusive ownership.
pub struct SpSystem {
    storage: SharedStorage,
    vault: FrozenVault,
    clock: VirtualClock,
    job_ids: JobIdGenerator,
    run_ids: AtomicU64,
    images: RwLock<Vec<Arc<VmImage>>>,
    clients: RwLock<Vec<Client>>,
    experiments: RwLock<BTreeMap<String, Arc<ExperimentDef>>>,
    ledger: RunLedger,
    /// Memoised chain-test productions, keyed by (test, seed, env, scale).
    chain_memo: RunMemo<MemoizedChain>,
    /// Memoised unit-check / standalone outputs (content address of the
    /// encoded [`TestOutput`]), same key space.
    output_memo: RunMemo<ObjectId>,
    /// Memoised §3.1 (ii) build reports: the regular build is a pure
    /// function of (experiment stack, environment), so repeated cells
    /// reuse the report instead of re-simulating the whole stack build.
    build_memo: RunMemo<Arc<BuildReport>>,
}

impl Default for SpSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl SpSystem {
    /// Creates an empty system with a fresh clock.
    pub fn new() -> Self {
        Self::with_clock(VirtualClock::starting_at(sp_exec::clock::ERA_2013))
    }

    /// Creates a system on an existing (possibly shared) clock.
    pub fn with_clock(clock: VirtualClock) -> Self {
        SpSystem {
            storage: SharedStorage::new(),
            vault: FrozenVault::new(),
            clock,
            job_ids: JobIdGenerator::new(),
            run_ids: AtomicU64::new(1),
            images: RwLock::new(Vec::new()),
            clients: RwLock::new(Vec::new()),
            experiments: RwLock::new(BTreeMap::new()),
            ledger: RunLedger::new(),
            chain_memo: RunMemo::new(),
            output_memo: RunMemo::new(),
            build_memo: RunMemo::new(),
        }
    }

    /// Effectiveness counters of the chain-run memo (each hit is one full
    /// MC chain whose re-execution was skipped).
    pub fn chain_memo_stats(&self) -> DigestCacheStats {
        self.chain_memo.stats()
    }

    /// Effectiveness counters of the unit-check / standalone output memo.
    pub fn output_memo_stats(&self) -> DigestCacheStats {
        self.output_memo.stats()
    }

    /// Effectiveness counters of the build-report memo.
    pub fn build_memo_stats(&self) -> DigestCacheStats {
        self.build_memo.stats()
    }

    /// The common storage.
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// The frozen-image vault.
    pub fn vault(&self) -> &FrozenVault {
        &self.vault
    }

    /// The system clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The run ledger.
    pub fn ledger(&self) -> &RunLedger {
        &self.ledger
    }

    /// Registered images (snapshot in registration order).
    pub fn images(&self) -> Vec<Arc<VmImage>> {
        self.images.read().clone()
    }

    /// Registered clients (snapshot in registration order).
    pub fn clients(&self) -> Vec<Client> {
        self.clients.read().clone()
    }

    /// Registered experiments (snapshot in name order).
    pub fn experiments(&self) -> impl Iterator<Item = Arc<ExperimentDef>> {
        self.experiments
            .read()
            .values()
            .cloned()
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Looks up an experiment by name.
    pub fn experiment(&self, name: &str) -> Option<Arc<ExperimentDef>> {
        self.experiments.read().get(name).cloned()
    }

    /// Builds and registers a VM image from a spec, conserving its recipe
    /// in the common storage. Returns the image id.
    pub fn register_image(&self, spec: EnvironmentSpec) -> Result<VmImageId, SystemError> {
        let mut images = self.images.write();
        let id = VmImageId(images.len() as u32 + 1);
        let image = VmImage::build(id, spec, self.clock.now()).map_err(SystemError::Image)?;
        self.storage.put_named(
            StorageArea::Images,
            &id.to_string(),
            image.spec.recipe().into_bytes(),
        );
        images.push(Arc::new(image));
        Ok(id)
    }

    /// Looks up an image.
    pub fn image(&self, id: VmImageId) -> Option<Arc<VmImage>> {
        self.images.read().iter().find(|i| i.id == id).cloned()
    }

    /// Registers a client machine, enforcing the §3.1 requirements (common
    /// storage access + cron capability).
    pub fn register_client(
        &self,
        name: &str,
        kind: ClientKind,
        schedule: CronSchedule,
        has_storage_access: bool,
        can_run_cron: bool,
    ) -> Result<(), SystemError> {
        let client = Client::register(name, kind, schedule, has_storage_access, can_run_cron)
            .map_err(SystemError::Client)?;
        self.clients.write().push(client);
        Ok(())
    }

    /// Registers an experiment: validates its graph and conserves the test
    /// definitions (thin script layers) in the common storage. Re-registering
    /// a name replaces the definition and invalidates every memoised cell of
    /// that experiment — the memo keys capture environment and workload but
    /// not the definition itself, so stale entries must not survive it.
    pub fn register_experiment(&self, def: ExperimentDef) -> Result<(), SystemError> {
        def.graph.validate().map_err(SystemError::Graph)?;
        if self.experiments.read().contains_key(&def.name) {
            let cell_prefix = format!("{}::", def.name);
            let build_key = format!("build/{}", def.name);
            self.chain_memo
                .invalidate_matching(|k| k.test.starts_with(&cell_prefix));
            self.output_memo
                .invalidate_matching(|k| k.test.starts_with(&cell_prefix));
            self.build_memo.invalidate_matching(|k| k.test == build_key);
        }
        for test in def.suite.tests() {
            let env = self.storage.shell_env(
                &format!("{}/input", test.id),
                &format!("{}/output", test.id),
                "externals",
            );
            let script = format!(
                "#!/bin/sh\n# sp-system test {} ({})\n{}exec run-test\n",
                test.id,
                test.category().label(),
                env.render()
            );
            self.storage
                .put_named(StorageArea::Tests, test.id.as_str(), script.into_bytes());
        }
        self.experiments
            .write()
            .insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    /// Reserves `count` consecutive run ids, returning the first. The
    /// campaign engine pre-assigns ids to planned tasks so that parallel
    /// execution hands out exactly the ids sequential execution would.
    pub fn reserve_run_ids(&self, count: u64) -> RunId {
        RunId(self.run_ids.fetch_add(count, Ordering::SeqCst))
    }

    /// Moves the run-id cursor forward so the next reservation starts at
    /// `next` or later (never backwards). The fleet worker calls this
    /// when executing a plan whose id range was pre-carved on the
    /// coordinator, so local reservations cannot collide with handed-off
    /// ranges.
    pub fn advance_run_ids_past(&self, next: u64) {
        self.run_ids.fetch_max(next, Ordering::SeqCst);
    }

    /// Runs the full validation of one experiment on one image: the §3.1
    /// (ii) regular build plus all validation tests, with bookkeeping.
    pub fn run_validation(
        &self,
        experiment_name: &str,
        image_id: VmImageId,
        config: &RunConfig,
    ) -> Result<ValidationRun, SystemError> {
        let run_id = self.reserve_run_ids(1);
        let run = self.execute_run_with_id(experiment_name, image_id, config, run_id)?;
        self.ledger.record(run.clone());
        Ok(run)
    }

    /// The execution core of [`run_validation`](Self::run_validation) with
    /// a caller-assigned run id and **no ledger commit**: the run summary
    /// is conserved in the common storage, but recording (and reference
    /// promotion) is left to the caller. The campaign engine uses this to
    /// batch a whole repetition's runs into one
    /// [`RunLedger::commit_batch`] while controlling reference-promotion
    /// order explicitly. The run is stamped with the current clock time.
    pub fn execute_run_with_id(
        &self,
        experiment_name: &str,
        image_id: VmImageId,
        config: &RunConfig,
        run_id: RunId,
    ) -> Result<ValidationRun, SystemError> {
        self.execute_run_at(experiment_name, image_id, config, run_id, self.clock.now())
    }

    /// [`execute_run_with_id`](Self::execute_run_with_id) with an explicit
    /// timestamp. The campaign scheduler runs N campaigns concurrently,
    /// each on its own virtual timeline (`origin + repetition × interval`);
    /// stamping runs from that timeline instead of the live shared clock is
    /// what keeps every campaign's summary byte-identical to executing it
    /// alone.
    pub fn execute_run_at(
        &self,
        experiment_name: &str,
        image_id: VmImageId,
        config: &RunConfig,
        run_id: RunId,
        timestamp: u64,
    ) -> Result<ValidationRun, SystemError> {
        let experiment = self
            .experiment(experiment_name)
            .ok_or_else(|| SystemError::UnknownExperiment(experiment_name.to_string()))?;
        let experiment = &*experiment;
        let image = self
            .image(image_id)
            .ok_or(SystemError::UnknownImage(image_id))?;
        let env = &image.spec;

        // §3.1 (ii): the regular, automated build — a pure function of
        // (experiment stack, environment), so memoized cells reuse the
        // report as long as every conserved artifact is still present.
        let build = self.build_stack(experiment, env, config)?;
        let build = &*build;

        // Execute the suite: compile results come from the build report;
        // unit checks and standalone executables run in parallel through
        // the job pool; chains run sequentially.
        let mut results: Vec<TestResult> = Vec::new();
        let mut parallel_tests: Vec<(JobSpec, &ValidationTest)> = Vec::new();

        for test in experiment.suite.tests() {
            match &test.kind {
                TestKind::Compile { package } => {
                    results.push(self.compile_result(test, package, build, run_id));
                }
                TestKind::UnitCheck { .. } | TestKind::Standalone { .. } => {
                    let job = JobSpec {
                        id: self.job_ids.allocate(),
                        name: test.id.as_str().to_string(),
                        tag: config.description.clone(),
                        image_label: env.label(),
                        submitted_at: timestamp,
                        inputs: Vec::new(),
                    };
                    parallel_tests.push((job, test));
                }
                TestKind::Chain { .. } => {
                    // Chains execute after the parallel batch (sequential
                    // by §3.2); placeholder handled below.
                }
            }
        }

        // Parallel batch via the job pool.
        let rich: Mutex<BTreeMap<JobId, TestResult>> = Mutex::new(BTreeMap::new());
        let by_id: BTreeMap<JobId, &ValidationTest> = parallel_tests
            .iter()
            .map(|(job, test)| (job.id, *test))
            .collect();
        let pool = JobPool::new(config.threads);
        let specs: Vec<JobSpec> = parallel_tests.iter().map(|(j, _)| j.clone()).collect();
        pool.run_batch(specs, |spec| {
            let test = by_id[&spec.id];
            let result = self.run_parallel_test(experiment, test, env, build, spec, config, run_id);
            let job_status = match &result.status {
                TestStatus::Passed | TestStatus::PassedWithWarnings(_) => JobStatus::Succeeded,
                TestStatus::Failed(FailureKind::Crash(m)) => JobStatus::Crashed(m.clone()),
                TestStatus::Failed(_) => JobStatus::Failed(1),
                TestStatus::Skipped(_) => JobStatus::Failed(0),
            };
            let job_result = JobResult {
                id: spec.id,
                status: job_status,
                log: String::new(),
                outputs: result.outputs.clone(),
                started_at: spec.submitted_at,
                finished_at: spec.submitted_at,
            };
            rich.lock().insert(spec.id, result);
            job_result
        });
        results.extend(rich.into_inner().into_values());

        // Sequential chains.
        for test in experiment.suite.tests() {
            if let TestKind::Chain {
                chain,
                stage_packages,
                events,
            } = &test.kind
            {
                results.extend(self.run_chain_test(
                    experiment,
                    test,
                    chain,
                    stage_packages,
                    *events,
                    env,
                    build,
                    config,
                    run_id,
                ));
            }
        }

        results.sort_by(|a, b| a.test.cmp(&b.test));
        let run = ValidationRun {
            id: run_id,
            experiment: experiment_name.to_string(),
            image_label: env.label(),
            description: if config.description.is_empty() {
                format!("{} @ {}", experiment_name, env.full_label())
            } else {
                config.description.clone()
            },
            timestamp,
            results,
        };

        // Bookkeeping: run summary into the common storage. The ledger
        // commit (which promotes successful runs to reference status) is
        // the caller's responsibility.
        let summary = format!(
            "run {} experiment {} image {} time {}\npassed {} failed {} skipped {}\ndigest {}\n",
            run.id,
            run.experiment,
            run.image_label,
            run.timestamp,
            run.passed(),
            run.failed(),
            run.skipped(),
            run.digest().to_hex(),
        );
        self.storage.put_named(
            StorageArea::Results,
            &format!("{run_id}/SUMMARY"),
            summary.into_bytes(),
        );
        Ok(run)
    }

    /// Runs (or, for memoized configs, replays) the §3.1 (ii) stack build.
    fn build_stack(
        &self,
        experiment: &ExperimentDef,
        env: &EnvironmentSpec,
        config: &RunConfig,
    ) -> Result<Arc<BuildReport>, SystemError> {
        let memo_key = config.memoize.then(|| {
            // The report does not depend on seed or scale; key the cell by
            // stack identity and environment revision only.
            RunKey::new(
                format!("build/{}", experiment.name),
                0,
                env.full_label(),
                1.0,
            )
        });
        if let Some(key) = &memo_key {
            match self.build_memo.entry(key) {
                Some((report, _)) if self.build_artifacts_present(&report) => {
                    self.build_memo.note_hit();
                    return Ok(report);
                }
                Some((_, generation)) => {
                    // A conserved tar-ball was pruned: rebuild (which
                    // re-conserves it) and refresh the entry. Generation-
                    // guarded, so a fresh entry a concurrent campaign
                    // inserted in the meantime survives this eviction.
                    self.build_memo.invalidate_generation(key, generation);
                    self.build_memo.note_miss();
                }
                None => self.build_memo.note_miss(),
            }
        }
        let builder = ParallelBuilder::new(BuildEngine::new(self.storage.clone()), config.threads);
        let report = Arc::new(
            builder
                .build_stack(&experiment.graph, env)
                .map_err(SystemError::Graph)?,
        );
        if let Some(key) = memo_key {
            self.build_memo.insert(key, Arc::clone(&report));
        }
        Ok(report)
    }

    /// Whether every artifact a memoised build report points at is still
    /// conserved in the content store.
    fn build_artifacts_present(&self, report: &BuildReport) -> bool {
        report
            .records
            .values()
            .filter_map(|record| record.artifact)
            .all(|oid| self.storage.content().contains(oid))
    }

    /// Builds the result of a compilation test from the build report.
    fn compile_result(
        &self,
        test: &ValidationTest,
        package: &sp_build::PackageId,
        build: &BuildReport,
        run_id: RunId,
    ) -> TestResult {
        let record = build.records.get(package);
        let (status, log) = match record {
            None => (
                TestStatus::Failed(FailureKind::CompileError),
                format!("package '{package}' is not part of the stack\n"),
            ),
            Some(r) => {
                let status = match &r.status {
                    BuildStatus::Built => TestStatus::Passed,
                    BuildStatus::BuiltWithWarnings(n) => TestStatus::PassedWithWarnings(*n),
                    BuildStatus::Failed => TestStatus::Failed(FailureKind::CompileError),
                    BuildStatus::SkippedDepFailed(dep) => {
                        TestStatus::Skipped(format!("dependency '{dep}' failed"))
                    }
                };
                (status, r.log.clone())
            }
        };
        let log_id = self.store_output(run_id, test, "build.log", log.into_bytes());
        let mut outputs = vec![("build.log".to_string(), log_id)];
        if let Some(artifact) = record.and_then(|r| r.artifact) {
            outputs.push(("tarball".to_string(), artifact));
        }
        TestResult {
            test: test.id.clone(),
            category: TestCategory::Compilation,
            group: test.group.clone(),
            job: self.job_ids.allocate(),
            status,
            outputs,
            compare: None,
        }
    }

    /// Runs one unit-check or standalone test (called from the job pool).
    #[allow(clippy::too_many_arguments)]
    fn run_parallel_test(
        &self,
        experiment: &ExperimentDef,
        test: &ValidationTest,
        env: &EnvironmentSpec,
        build: &BuildReport,
        spec: &JobSpec,
        config: &RunConfig,
        run_id: RunId,
    ) -> TestResult {
        let package = match &test.kind {
            TestKind::UnitCheck { package, .. } | TestKind::Standalone { package, .. } => package,
            _ => unreachable!("parallel tests are unit checks or standalone"),
        };
        let make = |status: TestStatus,
                    outputs: Vec<(String, ObjectId)>,
                    compare: Option<CompareOutcome>| TestResult {
            test: test.id.clone(),
            category: test.category(),
            group: test.group.clone(),
            job: spec.id,
            status,
            outputs,
            compare,
        };

        // The executable must exist.
        let built = build
            .records
            .get(package)
            .map(|r| r.status.has_artifact())
            .unwrap_or(false);
        if !built {
            return make(
                TestStatus::Skipped(format!("artifact for '{package}' missing")),
                Vec::new(),
                None,
            );
        }

        // Runtime behaviour of the package (with its dependencies).
        let traits = experiment.effective_runtime_traits(package);
        let deviation = match check_runtime(&traits, env) {
            RuntimeOutcome::Crash { message, .. } => {
                return make(
                    TestStatus::Failed(FailureKind::Crash(message)),
                    Vec::new(),
                    None,
                );
            }
            RuntimeOutcome::Deviating { shift_sigma, .. } => shift_sigma,
            RuntimeOutcome::Nominal => 0.0,
        };

        // Digest-first memo: an unchanged (test, seed, env, scale) cell has
        // a bit-identical output, so serve its conserved object and skip
        // production, serialisation and hashing — the comparison against
        // the (possibly evolved) reference is recomputed below either way.
        let memo_key = config
            .memoize
            .then(|| cell_key(experiment, test, config, env));
        if let Some(key) = &memo_key {
            match self.output_memo.entry(key) {
                Some((oid, _)) if self.storage.content().contains(oid) => {
                    self.output_memo.note_hit();
                    self.storage.register_named(
                        StorageArea::Results,
                        &format!("{run_id}/{}/result", test.id),
                        oid,
                    );
                    let (status, compare) = self.compare_stored_output(
                        &experiment.name,
                        test.id.as_str(),
                        "result",
                        oid,
                    );
                    return make(status, vec![("result".to_string(), oid)], compare);
                }
                Some((_, generation)) => {
                    // The object was pruned from the content store: the
                    // entry can no longer be served, fall through to a run.
                    // Generation-guarded, so the eviction cannot drop a
                    // fresh entry a concurrent campaign re-inserted.
                    self.output_memo.invalidate_generation(key, generation);
                    self.output_memo.note_miss();
                }
                None => self.output_memo.note_miss(),
            }
        }

        let output = match &test.kind {
            TestKind::UnitCheck {
                package,
                check_index,
            } => unit_check_output(package, *check_index, deviation),
            TestKind::Standalone { events, .. } => {
                let events = scaled_events(*events, config.scale);
                let seed = fnv64(test.id.as_str()) ^ config.seed;
                let analysis =
                    sp_hep::run_chain(&GeneratorConfig::hera_nc(), events, seed, deviation);
                TestOutput::Numbers(vec![
                    ("total".into(), analysis.total as f64),
                    ("selected".into(), analysis.selected as f64),
                    (
                        "mean_log10_q2".into(),
                        analysis
                            .histograms
                            .get("q2")
                            .map(|h| h.mean())
                            .unwrap_or(0.0),
                    ),
                    (
                        "mean_e_prime".into(),
                        analysis
                            .histograms
                            .get("e_prime")
                            .map(|h| h.mean())
                            .unwrap_or(0.0),
                    ),
                ])
            }
            _ => unreachable!(),
        };

        // Serialise and content-address in one pass (no second hash in the
        // store), then remember the cell for future campaigns.
        let mut encoded = Vec::new();
        let digest = output.encode_and_digest(&mut encoded);
        let oid = self.storage.put_named_prehashed(
            StorageArea::Results,
            &format!("{run_id}/{}/result", test.id),
            digest,
            encoded,
        );
        if let Some(key) = memo_key {
            self.output_memo.insert(key, oid);
        }
        let outputs = vec![("result".to_string(), oid)];
        let (status, compare) =
            self.compare_to_reference(&experiment.name, test.id.as_str(), "result", oid, &output);
        make(status, outputs, compare)
    }

    /// Serves a chain test from the memo, re-registering its conserved
    /// outputs under the new run id and recomputing the validation-stage
    /// comparison against the *current* reference (references evolve
    /// between runs, so the verdict is never memoised). Returns `None`
    /// when any memoised object has been pruned from the content store —
    /// the entry can no longer be replayed and must be invalidated.
    fn replay_chain_test(
        &self,
        experiment: &ExperimentDef,
        test: &ValidationTest,
        memo: &MemoizedChain,
        run_id: RunId,
    ) -> Option<Vec<TestResult>> {
        let content = self.storage.content();
        for stage in &memo.stages {
            for (_, oid) in &stage.outputs {
                if !content.contains(*oid) {
                    return None;
                }
            }
        }
        let hist_id = memo
            .stages
            .iter()
            .find(|s| s.stage == "analysis")
            .and_then(|s| s.outputs.iter().find(|(name, _)| name == "histograms"))
            .map(|(_, id)| *id);
        let results = memo
            .stages
            .iter()
            .map(|stage| {
                for (name, oid) in &stage.outputs {
                    self.storage.register_named(
                        StorageArea::Results,
                        &format!("{run_id}/{}/{}/{name}", test.id, stage.stage),
                        *oid,
                    );
                }
                let (status, compare) = if stage.stage == "validation"
                    && !matches!(stage.status, TestStatus::Skipped(_))
                {
                    self.validation_stage_outcome(experiment, test, hist_id)
                } else {
                    (stage.status.clone(), None)
                };
                TestResult {
                    test: stage.test.clone(),
                    category: stage.category,
                    group: test.group.clone(),
                    job: self.job_ids.allocate(),
                    status,
                    outputs: stage.outputs.clone(),
                    compare,
                }
            })
            .collect();
        Some(results)
    }

    /// Resolves the validation stage of a chain test: digest-first
    /// comparison of the analysis histograms against the current
    /// reference. Shared by live execution and memoised replay so both
    /// produce identical statuses and verdicts.
    fn validation_stage_outcome(
        &self,
        experiment: &ExperimentDef,
        test: &ValidationTest,
        hist_id: Option<ObjectId>,
    ) -> (TestStatus, Option<CompareOutcome>) {
        let Some(hist_id) = hist_id else {
            return (
                TestStatus::Failed(FailureKind::DependencyFailed(
                    "analysis-output-missing".to_string(),
                )),
                None,
            );
        };
        let analysis_test_id = format!("{}/analysis", test.id);
        self.compare_stored_output(&experiment.name, &analysis_test_id, "histograms", hist_id)
    }

    /// Runs a full analysis chain, producing one result per stage.
    #[allow(clippy::too_many_arguments)]
    fn run_chain_test(
        &self,
        experiment: &ExperimentDef,
        test: &ValidationTest,
        chain: &sp_exec::ChainDef,
        stage_packages: &BTreeMap<String, sp_build::PackageId>,
        events: usize,
        env: &EnvironmentSpec,
        build: &BuildReport,
        config: &RunConfig,
        run_id: RunId,
    ) -> Vec<TestResult> {
        // Digest-first memo: an unchanged (test, seed, env, scale) cell
        // produced bit-identical stage outputs, so replay them instead of
        // re-running the whole generation → simulation → analysis chain.
        let memo_key = config
            .memoize
            .then(|| cell_key(experiment, test, config, env));
        if let Some(key) = &memo_key {
            match self.chain_memo.entry(key) {
                Some((memo, generation)) => {
                    if let Some(results) = self.replay_chain_test(experiment, test, &memo, run_id) {
                        self.chain_memo.note_hit();
                        return results;
                    }
                    // Some conserved object was pruned: drop the entry and
                    // re-execute. Generation-guarded, so this campaign's
                    // eviction cannot drop an entry another in-flight
                    // campaign just refreshed.
                    self.chain_memo.invalidate_generation(key, generation);
                    self.chain_memo.note_miss();
                }
                None => self.chain_memo.note_miss(),
            }
        }

        let events = scaled_events(events, config.scale);
        let seed = fnv64(test.id.as_str()) ^ config.seed;
        // All chains run the NC workload regardless of their physics name:
        // validation power comes from populated control distributions, and
        // the NC selection keeps every histogram filled. (A CC-configured
        // generator would leave the NC-oriented selection empty and make
        // the comparison vacuous.)
        let generator_config = GeneratorConfig::hera_nc();

        // Total numeric deviation across every stage package: a latent bug
        // anywhere in the chain shifts the final distributions.
        let mut total_deviation = 0.0;
        let mut crash: BTreeMap<&str, String> = BTreeMap::new();
        for (stage, package) in stage_packages {
            let traits = experiment.effective_runtime_traits(package);
            match check_runtime(&traits, env) {
                RuntimeOutcome::Crash { message, .. } => {
                    crash.insert(stage.as_str(), message);
                }
                RuntimeOutcome::Deviating { shift_sigma, .. } => total_deviation += shift_sigma,
                RuntimeOutcome::Nominal => {}
            }
        }

        /// Data flowing between chain stages.
        #[derive(Clone)]
        enum StageData {
            Events(Vec<Event>),
            Reco(Vec<sp_hep::RecoEvent>),
            Done,
        }

        let mut stage_outputs: BTreeMap<String, Vec<(String, ObjectId)>> = BTreeMap::new();
        let mut validation_compare: Option<CompareOutcome> = None;

        let report = chain.execute(|stage, inputs| {
            // Stage prerequisites: the implementing package must be built
            // and must not crash at run time.
            if let Some(package) = stage_packages.get(&stage.name) {
                let built = build
                    .records
                    .get(package)
                    .map(|r| r.status.has_artifact())
                    .unwrap_or(false);
                if !built {
                    return Err(format!("dep:{package}"));
                }
            }
            if let Some(message) = crash.get(stage.name.as_str()) {
                return Err(format!("crash:{message}"));
            }

            let mut outputs: Vec<(String, ObjectId)> = Vec::new();
            let data = match stage.name.as_str() {
                "mcgen" => {
                    let generated: Vec<Event> = EventGenerator::new(generator_config.clone(), seed)
                        .take(events)
                        .collect();
                    let bytes = sp_hep::write_dst(&generated);
                    outputs.push((
                        "gen.dst".to_string(),
                        self.store_stage_output(run_id, test, &stage.name, "gen.dst", bytes),
                    ));
                    StageData::Events(generated)
                }
                "sim" => {
                    let StageData::Events(generated) = &inputs["mcgen"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let sim =
                        DetectorSim::new(SmearingConstants::V2_SL5).with_deviation(total_deviation);
                    let simulated: Vec<Event> = generated
                        .iter()
                        .map(|ev| sim.simulate(ev, seed ^ ev.id))
                        .collect();
                    StageData::Events(simulated)
                }
                "dst" => {
                    let StageData::Events(simulated) = &inputs["sim"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let bytes = sp_hep::write_dst(simulated);
                    outputs.push((
                        "events.dst".to_string(),
                        self.store_stage_output(run_id, test, &stage.name, "events.dst", bytes),
                    ));
                    StageData::Events(simulated.clone())
                }
                "microdst" => {
                    let StageData::Events(simulated) = &inputs["dst"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let reco: Vec<sp_hep::RecoEvent> = simulated
                        .iter()
                        .map(|ev| reconstruct(ev, &generator_config))
                        .collect();
                    let micro: Vec<MicroEvent> = reco
                        .iter()
                        .filter_map(|r| {
                            let k = r.kinematics?;
                            Some(MicroEvent {
                                id: r.id,
                                process: r.process,
                                q2: k.q2,
                                x: k.x,
                                y: k.y,
                                e_prime: r.electron.map(|e| e.e).unwrap_or(0.0),
                            })
                        })
                        .collect();
                    let bytes = sp_hep::write_micro_dst(&micro);
                    outputs.push((
                        "events.microdst".to_string(),
                        self.store_stage_output(
                            run_id,
                            test,
                            &stage.name,
                            "events.microdst",
                            bytes,
                        ),
                    ));
                    StageData::Reco(reco)
                }
                "analysis" => {
                    let StageData::Reco(reco) = &inputs["microdst"] else {
                        return Err("bad upstream data".to_string());
                    };
                    let mut analysis = Analysis::new(SelectionCuts::default());
                    for event in reco {
                        analysis.process(event);
                    }
                    let result = analysis.finish();
                    // Serialise the histogram payload field-wise while
                    // hashing it, so the store performs no second pass.
                    let mut payload = Vec::new();
                    let mut writer = sp_store::HashingWriter::tee(&mut payload);
                    writer.write(b"H");
                    hist_io::encode_set_with(&result.histograms, &mut |b| writer.write(b));
                    let digest = ObjectId(writer.finish());
                    let oid = self.storage.put_named_prehashed(
                        StorageArea::Results,
                        &format!("{run_id}/{}/{}/histograms", test.id, stage.name),
                        digest,
                        payload,
                    );
                    outputs.push(("histograms".to_string(), oid));
                    StageData::Done
                }
                "validation" => {
                    // Compare the analysis histograms to the reference,
                    // digest-first: equal content addresses prove
                    // bit-identity without decoding either histogram set.
                    let analysis_test_id = format!("{}/analysis", test.id);
                    let stored = stage_outputs
                        .get("analysis")
                        .and_then(|outs| outs.iter().find(|(n, _)| n == "histograms"))
                        .map(|(_, id)| *id);
                    let Some(hist_id) = stored else {
                        return Err("dep:analysis-output-missing".to_string());
                    };
                    match self.compare_stored_to_reference(
                        &experiment.name,
                        &analysis_test_id,
                        "histograms",
                        hist_id,
                    ) {
                        Ok(None) => {
                            validation_compare = None; // first run: becomes reference
                            StageData::Done
                        }
                        Ok(Some(outcome)) => {
                            let passed = outcome.passed();
                            let detail = match &outcome {
                                CompareOutcome::Differs { detail } => detail.clone(),
                                _ => String::new(),
                            };
                            validation_compare = Some(outcome);
                            if !passed {
                                return Err(format!("cmp:{detail}"));
                            }
                            StageData::Done
                        }
                        Err(detail) => return Err(format!("cmp:{detail}")),
                    }
                }
                other => return Err(format!("unknown stage '{other}'")),
            };
            stage_outputs.insert(stage.name.clone(), outputs);
            Ok(data)
        });

        // Convert per-stage statuses into test results.
        let results: Vec<TestResult> = report
            .stages
            .iter()
            .map(|(stage_name, status)| {
                let test_id = crate::test::TestId::new(format!("{}/{stage_name}", test.id));
                let category = if stage_name == "validation" {
                    TestCategory::DataValidation
                } else {
                    TestCategory::AnalysisChain
                };
                let status = match status {
                    StageStatus::Succeeded => TestStatus::Passed,
                    StageStatus::Failed(message) => {
                        TestStatus::Failed(parse_stage_error(message, stage_name))
                    }
                    StageStatus::Skipped { missing, .. } => {
                        TestStatus::Skipped(format!("upstream stage '{missing}' unavailable"))
                    }
                };
                let compare = if stage_name == "validation" {
                    validation_compare.clone()
                } else {
                    None
                };
                TestResult {
                    test: test_id,
                    category,
                    group: test.group.clone(),
                    job: self.job_ids.allocate(),
                    status,
                    outputs: stage_outputs.get(stage_name).cloned().unwrap_or_default(),
                    compare,
                }
            })
            .collect();
        if let Some(key) = memo_key {
            self.chain_memo
                .insert(key, MemoizedChain::from_results(&results, &test.id));
        }
        results
    }

    /// Compares a fresh output against the experiment's reference, deciding
    /// the test status. Digest-first: when the fresh output's content
    /// address equals the reference's, the outputs are bit-identical and
    /// neither the reference bytes nor the comparator run is needed.
    fn compare_to_reference(
        &self,
        experiment: &str,
        test_id: &str,
        output_name: &str,
        output_id: ObjectId,
        output: &TestOutput,
    ) -> (TestStatus, Option<CompareOutcome>) {
        let Some(reference_id) = self
            .ledger
            .reference_output_id(experiment, test_id, output_name)
        else {
            return (TestStatus::Passed, None);
        };
        let comparator = Comparator::default_for(output);
        if let Some(outcome) = comparator.compare_by_id(output_id, reference_id) {
            return (TestStatus::Passed, Some(outcome));
        }
        let Some(reference) = self.decode_stored_output(reference_id) else {
            // The reference object is gone or unreadable: treat like the
            // first run (the fresh output becomes the new reference).
            return (TestStatus::Passed, None);
        };
        let outcome = comparator.compare(output, &reference);
        (status_from_outcome(&outcome), Some(outcome))
    }

    /// Digest-first comparison of a *stored* output (identified by content
    /// address) against the reference. `Ok(None)` means no reference exists
    /// yet; `Err` carries a detail message when the stored output cannot be
    /// decoded for a deep comparison.
    fn compare_stored_to_reference(
        &self,
        experiment: &str,
        test_id: &str,
        output_name: &str,
        output_id: ObjectId,
    ) -> Result<Option<CompareOutcome>, String> {
        let Some(reference_id) = self
            .ledger
            .reference_output_id(experiment, test_id, output_name)
        else {
            return Ok(None);
        };
        if output_id == reference_id {
            // Bit-identical by content address: the paper's "compared
            // bit-for-bit against any earlier run" collapses to an id
            // check — nothing is decoded, no histogram χ² runs.
            return Ok(Some(CompareOutcome::Identical));
        }
        let current = self
            .decode_stored_output(output_id)
            .ok_or_else(|| format!("{output_name} output unreadable"))?;
        let Some(reference) = self.decode_stored_output(reference_id) else {
            return Ok(None);
        };
        Ok(Some(
            Comparator::default_for(&current).compare(&current, &reference),
        ))
    }

    /// [`compare_stored_to_reference`](Self::compare_stored_to_reference)
    /// folded into a test status + comparison verdict.
    fn compare_stored_output(
        &self,
        experiment: &str,
        test_id: &str,
        output_name: &str,
        output_id: ObjectId,
    ) -> (TestStatus, Option<CompareOutcome>) {
        match self.compare_stored_to_reference(experiment, test_id, output_name, output_id) {
            Ok(None) => (TestStatus::Passed, None),
            Ok(Some(outcome)) => (status_from_outcome(&outcome), Some(outcome)),
            Err(detail) => (
                TestStatus::Failed(FailureKind::ComparisonFailed(detail)),
                None,
            ),
        }
    }

    /// Fetches and decodes a stored [`TestOutput`] by content address.
    fn decode_stored_output(&self, id: ObjectId) -> Option<TestOutput> {
        let bytes = self.storage.content().get(id).ok()?;
        TestOutput::from_bytes(&bytes)
    }

    fn store_output(
        &self,
        run_id: RunId,
        test: &ValidationTest,
        name: &str,
        bytes: Vec<u8>,
    ) -> ObjectId {
        self.storage.put_named(
            StorageArea::Results,
            &format!("{run_id}/{}/{name}", test.id),
            bytes,
        )
    }

    fn store_stage_output(
        &self,
        run_id: RunId,
        test: &ValidationTest,
        stage: &str,
        name: &str,
        bytes: impl Into<bytes::Bytes>,
    ) -> ObjectId {
        self.storage.put_named(
            StorageArea::Results,
            &format!("{run_id}/{}/{stage}/{name}", test.id),
            bytes,
        )
    }

    /// Prunes the run history under `policy`, deciding ages against the
    /// system's **virtual clock** — the clock the runs were stamped by —
    /// rather than a caller-supplied constant that can silently drift
    /// from simulated time. See [`RunLedger::prune`] for the guarantees
    /// (references always survive; shared objects are never removed).
    pub fn prune_runs(&self, policy: &RetentionPolicy) -> crate::ledger::PruneReport {
        self.ledger
            .prune_at(policy, &self.clock, self.storage.content())
    }

    /// Serialises the warm state — the three run memos, the digest cache
    /// and the system counters (run-id cursor, clock) — into the versioned
    /// `SPWS` snapshot format, to be conserved alongside the exported
    /// storage. A restarted system that imports this replays memoized
    /// cells instead of re-earning its caches over weeks of nightlies.
    pub fn export_warm_state(&self) -> Vec<u8> {
        let mut snapshot = Snapshot::new();

        let mut system = SnapshotSection::new(warm::SECTION_SYSTEM);
        system.push(
            b"run-ids".to_vec(),
            warm::encode_u64_value(self.run_ids.load(Ordering::SeqCst)),
        );
        system.push(b"clock".to_vec(), warm::encode_u64_value(self.clock.now()));
        snapshot.sections.push(system);

        let mut digests = SnapshotSection::new(warm::SECTION_DIGEST_CACHE);
        let mut digest_entries = self.storage.digest_cache().export_entries();
        digest_entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (revision, id) in digest_entries {
            digests.push(revision.into_bytes(), warm::encode_object_id(id));
        }
        snapshot.sections.push(digests);

        let mut outputs = SnapshotSection::new(warm::SECTION_OUTPUT_MEMO);
        for (key, id) in sorted_entries(self.output_memo.export_entries()) {
            outputs.push(encode_run_key(&key), warm::encode_object_id(id));
        }
        snapshot.sections.push(outputs);

        let mut chains = SnapshotSection::new(warm::SECTION_CHAIN_MEMO);
        for (key, chain) in sorted_entries(self.chain_memo.export_entries()) {
            chains.push(encode_run_key(&key), warm::encode_chain(&chain));
        }
        snapshot.sections.push(chains);

        let mut builds = SnapshotSection::new(warm::SECTION_BUILD_MEMO);
        for (key, report) in sorted_entries(self.build_memo.export_entries()) {
            builds.push(encode_run_key(&key), warm::encode_build_report(&report));
        }
        snapshot.sections.push(builds);

        let mut references = SnapshotSection::new(warm::SECTION_LEDGER_REFS);
        for (experiment, tests) in self.ledger.export_references() {
            references.push(
                experiment.into_bytes(),
                warm::encode_reference_tests(&tests),
            );
        }
        snapshot.sections.push(references);

        // The per-entry guard digests are independent SHA-256 passes —
        // batch them across a transient pool so a big warm state (weeks of
        // memoized cells) exports at multi-core speed.
        snapshot.encode_with(&digest_pool())
    }

    /// Restores warm state exported by [`export_warm_state`]
    /// (Self::export_warm_state). The objects the memo entries point at
    /// must already be in the content store (import the storage first);
    /// trust is earned in layers and anything that fails a layer is
    /// dropped, never served:
    ///
    /// 1. the snapshot container validates its versioned header and every
    ///    entry's digest (bit-rot drops the entry);
    /// 2. every key and value must decode structurally;
    /// 3. every content address a memo entry references must resolve in
    ///    the content store.
    ///
    /// The run-id cursor and the clock only ever move forward (a snapshot
    /// can never make a live system reuse ids or travel back in time).
    pub fn import_warm_state(&self, bytes: &[u8]) -> Result<WarmRestoreReport, SnapshotError> {
        let (snapshot, load) = Snapshot::decode_with(bytes, &digest_pool())?;
        let mut report = WarmRestoreReport {
            snapshot: load,
            ..WarmRestoreReport::default()
        };
        let content = self.storage.content();

        if let Some(section) = snapshot.section(warm::SECTION_SYSTEM) {
            for (key, value) in &section.entries {
                let Some(value) = warm::decode_u64_value(value) else {
                    report.entries_rejected += 1;
                    continue;
                };
                match key.as_slice() {
                    b"run-ids" => {
                        self.run_ids.fetch_max(value, Ordering::SeqCst);
                    }
                    b"clock" => {
                        self.clock.advance_to(value);
                        report.clock_restored = true;
                    }
                    _ => report.entries_rejected += 1,
                }
            }
        }

        if let Some(section) = snapshot.section(warm::SECTION_DIGEST_CACHE) {
            for (key, value) in &section.entries {
                let revision = String::from_utf8(key.clone()).ok();
                let id = warm::decode_object_id(value);
                match (revision, id) {
                    (Some(revision), Some(id)) if content.contains(id) => {
                        self.storage.digest_cache().insert(&revision, id);
                        report.digest_cache_entries += 1;
                    }
                    _ => report.entries_rejected += 1,
                }
            }
        }

        if let Some(section) = snapshot.section(warm::SECTION_OUTPUT_MEMO) {
            for (key, value) in &section.entries {
                match (decode_run_key(key), warm::decode_object_id(value)) {
                    (Some(key), Some(id)) if content.contains(id) => {
                        self.output_memo.insert(key, id);
                        report.output_memo_entries += 1;
                    }
                    _ => report.entries_rejected += 1,
                }
            }
        }

        if let Some(section) = snapshot.section(warm::SECTION_CHAIN_MEMO) {
            for (key, value) in &section.entries {
                match (decode_run_key(key), warm::decode_chain(value)) {
                    (Some(key), Some(chain))
                        if chain
                            .stages
                            .iter()
                            .flat_map(|s| &s.outputs)
                            .all(|(_, oid)| content.contains(*oid)) =>
                    {
                        self.chain_memo.insert(key, chain);
                        report.chain_memo_entries += 1;
                    }
                    _ => report.entries_rejected += 1,
                }
            }
        }

        if let Some(section) = snapshot.section(warm::SECTION_BUILD_MEMO) {
            for (key, value) in &section.entries {
                match (decode_run_key(key), warm::decode_build_report(value)) {
                    (Some(key), Some(build)) if self.build_artifacts_present(&build) => {
                        self.build_memo.insert(key, build);
                        report.build_memo_entries += 1;
                    }
                    _ => report.entries_rejected += 1,
                }
            }
        }

        if let Some(section) = snapshot.section(warm::SECTION_LEDGER_REFS) {
            for (key, value) in &section.entries {
                let experiment = String::from_utf8(key.clone()).ok();
                let tests = warm::decode_reference_tests(value);
                let (Some(experiment), Some(mut tests)) = (experiment, tests) else {
                    report.entries_rejected += 1;
                    continue;
                };
                // Per-test trust: a reference whose conserved outputs were
                // pruned (or rotted) from the content store cannot be
                // compared against — drop exactly those tests, keep the
                // rest. Absorption never overwrites a reference a live
                // run already promoted.
                let before = tests.len();
                tests.retain(|_, outputs| outputs.iter().all(|(_, oid)| content.contains(*oid)));
                report.entries_rejected += before - tests.len();
                report.ledger_reference_entries +=
                    self.ledger.absorb_references(vec![(experiment, tests)]);
            }
        }

        Ok(report)
    }

    /// Exports the whole preservable state to a directory: the common
    /// storage (objects + area indexes, via
    /// [`SharedStorage::export_to_dir`]) plus the warm state as
    /// `warm_state.spws` next to it.
    pub fn export_to_dir(&self, dir: &std::path::Path) -> std::io::Result<SystemExportSummary> {
        self.export_to_dir_fs(dir, &sp_store::vfs::OsFs)
    }

    /// [`export_to_dir`](Self::export_to_dir) over an injectable
    /// filesystem. The warm-state snapshot is written with the full
    /// stage → `fsync` → rename → directory-sync discipline
    /// ([`sp_store::vfs::write_durable_atomic`]), so a crash mid-export
    /// leaves either the previous snapshot or the new one — never a torn
    /// file that would silently cold-start the next restart.
    pub fn export_to_dir_fs(
        &self,
        dir: &std::path::Path,
        fs: &dyn sp_store::vfs::StoreFs,
    ) -> std::io::Result<SystemExportSummary> {
        let storage = self.storage.export_to_dir_fs(dir, fs)?;
        let warm_state = self.export_warm_state();
        let warm_state_bytes = warm_state.len();
        let target = dir.join(WARM_STATE_FILE);
        let mut stage = target.as_os_str().to_os_string();
        stage.push(".stage");
        sp_store::vfs::write_durable_atomic(
            fs,
            std::path::Path::new(&stage),
            &target,
            &warm_state,
        )?;
        Ok(SystemExportSummary {
            storage,
            warm_state_bytes,
        })
    }

    /// Imports a directory written by [`export_to_dir`](Self::export_to_dir):
    /// content objects first (re-hashed, bit-rot rejected), then the warm
    /// state on top of them. A missing or structurally corrupt
    /// `warm_state.spws` degrades to a cold restart — the storage import
    /// still stands, and the reason is reported, not swallowed.
    pub fn import_from_dir(&self, dir: &std::path::Path) -> std::io::Result<SystemImportSummary> {
        self.import_from_dir_fs(dir, &sp_store::vfs::OsFs)
    }

    /// [`import_from_dir`](Self::import_from_dir) over an injectable
    /// filesystem, so restart/restore paths run under the same fault layer
    /// as the export paths in chaos tests.
    pub fn import_from_dir_fs(
        &self,
        dir: &std::path::Path,
        fs: &dyn sp_store::vfs::StoreFs,
    ) -> std::io::Result<SystemImportSummary> {
        let storage = self.storage.import_from_dir_fs(dir, &digest_pool(), fs)?;
        let (warm, warm_state_error) = match fs.read(&dir.join(WARM_STATE_FILE)) {
            Ok(bytes) => match self.import_warm_state(&bytes) {
                Ok(report) => (report, None),
                Err(error) => (WarmRestoreReport::default(), Some(error.to_string())),
            },
            Err(_) => (
                WarmRestoreReport::default(),
                Some("warm state file missing".into()),
            ),
        };
        Ok(SystemImportSummary {
            storage,
            warm,
            warm_state_error,
        })
    }

    /// The "fsck" pass over the common storage: re-hashes every conserved
    /// object and unpack-verifies every artifact tar-ball, fanning both
    /// digest sweeps over the machine-sized worker pool the export/import
    /// paths already use. Returns what failed — content addresses that no
    /// longer re-hash, and artifact keys whose archives no longer decode —
    /// so the host IT department's nightly integrity job has one call to
    /// make.
    pub fn verify_storage(&self) -> StorageVerification {
        let pool = digest_pool();
        StorageVerification {
            corrupt_objects: self.storage.content().verify_all_with(&pool),
            bad_archives: self
                .storage
                .verify_archives_with(StorageArea::Artifacts, "", &pool),
        }
    }

    /// Exports the "successfully validated recipe of the latest
    /// configuration" (§3.1): the environment recipe of the image the last
    /// successful run executed on, plus the content addresses of every
    /// artifact tar-ball it produced. "If a production system is required,
    /// then this recipe should be deployed on a suitable resource at the
    /// time: an institute cluster, grid, cloud, sky, quantum computer, and
    /// so on."
    pub fn export_production_recipe(&self, experiment_name: &str) -> Option<ProductionRecipe> {
        let run = self.ledger.latest_successful(experiment_name)?;
        let image = self
            .images
            .read()
            .iter()
            .find(|i| i.label() == run.image_label)
            .cloned()?;
        let mut artifacts: Vec<(String, ObjectId)> = Vec::new();
        for result in &run.results {
            for (name, oid) in &result.outputs {
                if name == "tarball" {
                    artifacts.push((result.test.as_str().to_string(), *oid));
                }
            }
        }
        Some(ProductionRecipe {
            experiment: experiment_name.to_string(),
            validated_by: run.id,
            environment: image.spec.recipe(),
            artifacts,
        })
    }
}

/// What [`SpSystem::verify_storage`] found wrong with the common storage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageVerification {
    /// Content addresses whose stored bytes no longer re-hash to them.
    pub corrupt_objects: Vec<ObjectId>,
    /// Artifact keys whose registered archives fail to unpack-verify.
    pub bad_archives: Vec<String>,
}

impl StorageVerification {
    /// Whether the storage verified clean.
    pub fn is_clean(&self) -> bool {
        self.corrupt_objects.is_empty() && self.bad_archives.is_empty()
    }
}

/// File name of the warm-state snapshot inside an exported directory.
pub const WARM_STATE_FILE: &str = "warm_state.spws";

/// A transient pool sized to the machine for batch-hashing independent
/// objects during export/import. Construction is free (the pool spawns
/// scoped threads per batch, none up front), so call sites just make one.
fn digest_pool() -> WorkStealingPool {
    WorkStealingPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Sorts exported memo entries by key for a deterministic snapshot
/// encoding (the memos iterate a hash map).
fn sorted_entries<V>(mut entries: Vec<(RunKey, V)>) -> Vec<(RunKey, V)> {
    entries.sort_by(|a, b| {
        (
            &a.0.test,
            a.0.seed,
            &a.0.env_revision,
            a.0.scale().to_bits(),
        )
            .cmp(&(
                &b.0.test,
                b.0.seed,
                &b.0.env_revision,
                b.0.scale().to_bits(),
            ))
    });
    entries
}

/// What a warm-state restore accepted, per layer of trust.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmRestoreReport {
    /// Container-level accounting (digest-validated vs dropped entries).
    pub snapshot: sp_store::SnapshotLoadReport,
    /// Digest-cache entries restored (object present).
    pub digest_cache_entries: usize,
    /// Output-memo entries restored (object present).
    pub output_memo_entries: usize,
    /// Chain-memo entries restored (every stage output present).
    pub chain_memo_entries: usize,
    /// Build-memo entries restored (every artifact present).
    pub build_memo_entries: usize,
    /// Ledger reference tests restored (every output present), so the
    /// first post-restore run compares instead of bootstrapping.
    pub ledger_reference_entries: usize,
    /// Entries that passed the container digest but failed decoding or
    /// referenced absent objects — dropped, never trusted.
    pub entries_rejected: usize,
    /// Whether the clock was moved forward to the snapshot's time.
    pub clock_restored: bool,
}

impl WarmRestoreReport {
    /// Total memo/cache entries restored across all sections.
    pub fn entries_restored(&self) -> usize {
        self.digest_cache_entries
            + self.output_memo_entries
            + self.chain_memo_entries
            + self.build_memo_entries
            + self.ledger_reference_entries
    }
}

/// Result of [`SpSystem::export_to_dir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemExportSummary {
    /// The storage export (objects written, areas indexed).
    pub storage: sp_store::ExportSummary,
    /// Size of the serialised warm-state snapshot in bytes.
    pub warm_state_bytes: usize,
}

/// Result of [`SpSystem::import_from_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemImportSummary {
    /// The storage import (objects admitted/rejected, names restored).
    pub storage: sp_store::ImportSummary,
    /// The warm-state restore report.
    pub warm: WarmRestoreReport,
    /// Why the warm state (if any) could not be restored; `None` on
    /// success. The import degrades to a cold restart in that case.
    pub warm_state_error: Option<String>,
}

/// One memoised chain-stage production: everything deterministic given
/// the cell key (test, seed, environment revision, scale). The job id and
/// the validation-stage comparison are recomputed at replay time — the
/// former is per-run, the latter depends on the evolving reference state.
#[derive(Clone)]
pub(crate) struct MemoizedStage {
    /// Chain stage name (`mcgen`, `sim`, …, `validation`).
    pub(crate) stage: String,
    /// Stage-qualified test id (`<chain test>/<stage>`).
    pub(crate) test: crate::test::TestId,
    pub(crate) category: TestCategory,
    pub(crate) status: TestStatus,
    /// Conserved outputs: name → content address in the common storage.
    pub(crate) outputs: Vec<(String, ObjectId)>,
}

/// The memoised production of one whole chain test, in stage-report order.
#[derive(Clone)]
pub(crate) struct MemoizedChain {
    pub(crate) stages: Vec<MemoizedStage>,
}

impl MemoizedChain {
    fn from_results(results: &[TestResult], chain_test: &crate::test::TestId) -> Self {
        let prefix = format!("{chain_test}/");
        MemoizedChain {
            stages: results
                .iter()
                .map(|r| MemoizedStage {
                    stage: r
                        .test
                        .as_str()
                        .strip_prefix(&prefix)
                        .unwrap_or(r.test.as_str())
                        .to_string(),
                    test: r.test.clone(),
                    category: r.category,
                    status: r.status.clone(),
                    outputs: r.outputs.clone(),
                })
                .collect(),
        }
    }
}

/// A deployable description of the last validated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionRecipe {
    /// Experiment this recipe preserves.
    pub experiment: String,
    /// The validation run that certified it.
    pub validated_by: RunId,
    /// The environment recipe (OS, arch, compiler, externals).
    pub environment: String,
    /// `(compile-test id, tar-ball content address)` for every package.
    pub artifacts: Vec<(String, ObjectId)>,
}

impl ProductionRecipe {
    /// Renders the recipe as the text file a deployment script would
    /// consume.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# sp-system production recipe for {}\n# certified by validation run {}\n{}",
            self.experiment, self.validated_by, self.environment
        );
        for (test, oid) in &self.artifacts {
            out.push_str(&format!("artifact = {} {}\n", test, oid.to_hex()));
        }
        out
    }
}

/// Deterministic unit-check numbers: a pure function of (package, check,
/// deviation). A deviating platform shifts every reported number by a
/// relative `1e-3 · σ`, far outside the comparator's `1e-9` tolerance.
fn unit_check_output(
    package: &sp_build::PackageId,
    check_index: u32,
    deviation: f64,
) -> TestOutput {
    let h = fnv64(&format!("{package}/{check_index}"));
    let base1 = (h % 100_000) as f64 / 100.0;
    let base2 = ((h >> 20) % 100_000) as f64 / 1000.0;
    let factor = 1.0 + deviation * 1e-3;
    TestOutput::Numbers(vec![
        ("checksum".into(), base1 * factor),
        ("mean".into(), base2 * factor),
        ("entries".into(), ((h >> 40) % 10_000) as f64),
    ])
}

/// The memo key of one (experiment, test) cell. Test ids are
/// conventionally experiment-prefixed, but nothing enforces that, and the
/// produced outputs depend on experiment-specific runtime traits — so the
/// key carries the experiment name explicitly rather than trusting the
/// convention.
fn cell_key(
    experiment: &ExperimentDef,
    test: &ValidationTest,
    config: &RunConfig,
    env: &EnvironmentSpec,
) -> RunKey {
    RunKey::new(
        format!("{}::{}", experiment.name, test.id),
        config.seed,
        env.full_label(),
        config.scale,
    )
}

/// Folds a comparison outcome into the resulting test status.
fn status_from_outcome(outcome: &CompareOutcome) -> TestStatus {
    if outcome.passed() {
        TestStatus::Passed
    } else {
        let detail = match outcome {
            CompareOutcome::Differs { detail } => detail.clone(),
            _ => String::new(),
        };
        TestStatus::Failed(FailureKind::ComparisonFailed(detail))
    }
}

/// Scales an event count, keeping a sane minimum.
fn scaled_events(events: usize, scale: f64) -> usize {
    ((events as f64 * scale).round() as usize).max(10)
}

/// Parses the prefixed stage-error convention into a failure kind.
fn parse_stage_error(message: &str, stage_name: &str) -> FailureKind {
    if let Some(pkg) = message.strip_prefix("dep:") {
        FailureKind::DependencyFailed(pkg.to_string())
    } else if let Some(msg) = message.strip_prefix("crash:") {
        FailureKind::Crash(msg.to_string())
    } else if let Some(detail) = message.strip_prefix("cmp:") {
        FailureKind::ComparisonFailed(detail.to_string())
    } else {
        FailureKind::ChainStageFailed(stage_name.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preservation::PreservationLevel;
    use crate::suite::TestSuite;
    use crate::test::ValidationTest;
    use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
    use sp_env::{catalog, Arch, CodeTrait, Version};
    use sp_exec::{ChainDef, CronSchedule};

    /// A small but complete experiment: a clean library, a 64-bit-latent
    /// buggy library, an analysis linking the buggy library, and a chain.
    fn tiny_experiment() -> ExperimentDef {
        let graph = DependencyGraph::from_packages([
            Package::new("util", Version::new(1, 0, 0), PackageKind::Library),
            Package::new("legacy", Version::new(1, 0, 0), PackageKind::Library)
                .with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 6.0 }),
            Package::new("mcgen-pkg", Version::new(2, 0, 0), PackageKind::Generator).dep("util"),
            Package::new("sim-pkg", Version::new(2, 0, 0), PackageKind::Simulation).dep("util"),
            Package::new(
                "reco-pkg",
                Version::new(2, 0, 0),
                PackageKind::Reconstruction,
            )
            .dep("legacy"),
            Package::new("ana-pkg", Version::new(2, 0, 0), PackageKind::Analysis).dep("util"),
        ])
        .unwrap();
        let mut suite = TestSuite::new("tiny", PreservationLevel::FullSoftware);
        for pkg in [
            "util",
            "legacy",
            "mcgen-pkg",
            "sim-pkg",
            "reco-pkg",
            "ana-pkg",
        ] {
            suite
                .add(ValidationTest::new(
                    format!("tiny/compile/{pkg}"),
                    "tiny",
                    "compilation",
                    TestKind::Compile {
                        package: PackageId::new(pkg),
                    },
                ))
                .unwrap();
        }
        suite
            .add(ValidationTest::new(
                "tiny/unit/util-0",
                "tiny",
                "unit checks",
                TestKind::UnitCheck {
                    package: PackageId::new("util"),
                    check_index: 0,
                },
            ))
            .unwrap();
        suite
            .add(ValidationTest::new(
                "tiny/unit/legacy-0",
                "tiny",
                "unit checks",
                TestKind::UnitCheck {
                    package: PackageId::new("legacy"),
                    check_index: 0,
                },
            ))
            .unwrap();
        suite
            .add(ValidationTest::new(
                "tiny/standalone/ana",
                "tiny",
                "analysis",
                TestKind::Standalone {
                    package: PackageId::new("ana-pkg"),
                    events: 150,
                },
            ))
            .unwrap();
        let mut stage_packages = BTreeMap::new();
        for (stage, pkg) in [
            ("mcgen", "mcgen-pkg"),
            ("sim", "sim-pkg"),
            ("dst", "reco-pkg"),
            ("microdst", "reco-pkg"),
            ("analysis", "ana-pkg"),
            ("validation", "ana-pkg"),
        ] {
            stage_packages.insert(stage.to_string(), PackageId::new(pkg));
        }
        suite
            .add(ValidationTest::new(
                "tiny/chain/nc",
                "tiny",
                "MC chain",
                TestKind::Chain {
                    chain: ChainDef::full_analysis_chain("nc"),
                    stage_packages,
                    events: 2500,
                },
            ))
            .unwrap();
        ExperimentDef {
            name: "tiny".into(),
            color: "blue",
            graph,
            suite,
            entry_points: vec![PackageId::new("ana-pkg")],
        }
    }

    fn config() -> RunConfig {
        RunConfig {
            scale: 1.0,
            threads: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn first_run_on_reference_platform_is_green() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let run = system.run_validation("tiny", image, &config()).unwrap();
        assert!(
            run.is_successful(),
            "failures: {:?}",
            run.failures().collect::<Vec<_>>()
        );
        // 6 compiles + 2 unit + 1 standalone + 6 chain stages.
        assert_eq!(run.results.len(), 15);
        assert!(system.ledger().has_reference("tiny"));
    }

    #[test]
    fn second_identical_run_is_bit_identical() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let first = system.run_validation("tiny", image, &config()).unwrap();
        let second = system.run_validation("tiny", image, &config()).unwrap();
        assert!(second.is_successful());
        assert_eq!(first.digest(), second.digest(), "reproducibility");
        // The second run compared against the first and found identity.
        let compared: Vec<_> = second
            .results
            .iter()
            .filter(|r| matches!(r.compare, Some(CompareOutcome::Identical)))
            .collect();
        assert!(!compared.is_empty());
    }

    #[test]
    fn memoized_runs_are_digest_identical_to_uncached() {
        let build = || {
            let system = SpSystem::new();
            let image = system
                .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
                .unwrap();
            system.register_experiment(tiny_experiment()).unwrap();
            (system, image)
        };
        let memo_config = RunConfig {
            memoize: true,
            ..config()
        };

        let (memo_system, image) = build();
        let first = memo_system
            .run_validation("tiny", image, &memo_config)
            .unwrap();
        let second = memo_system
            .run_validation("tiny", image, &memo_config)
            .unwrap();
        assert_eq!(first.digest(), second.digest());
        // The second run compared digest-first and found identity.
        assert!(second
            .results
            .iter()
            .any(|r| matches!(r.compare, Some(CompareOutcome::Identical))));
        let chain_stats = memo_system.chain_memo_stats();
        assert_eq!((chain_stats.hits, chain_stats.misses), (1, 1));
        assert!(memo_system.output_memo_stats().hits > 0);

        // Byte-identical to an uncached twin, run for run.
        let (plain_system, plain_image) = build();
        for reference in [
            plain_system
                .run_validation("tiny", plain_image, &config())
                .unwrap(),
            plain_system
                .run_validation("tiny", plain_image, &config())
                .unwrap(),
        ]
        .iter()
        .zip([&first, &second])
        {
            assert_eq!(reference.0.digest(), reference.1.digest());
        }
    }

    #[test]
    fn reregistering_an_experiment_invalidates_its_memo() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let memo_config = RunConfig {
            memoize: true,
            ..config()
        };
        system.run_validation("tiny", image, &memo_config).unwrap();
        assert!(system.chain_memo_stats().entries > 0);
        assert!(system.output_memo_stats().entries > 0);
        assert!(system.build_memo_stats().entries > 0);

        // Replacing the definition must drop every memoised cell of the
        // experiment: the next run re-executes under the new definition.
        system.register_experiment(tiny_experiment()).unwrap();
        assert_eq!(system.chain_memo_stats().entries, 0);
        assert_eq!(system.output_memo_stats().entries, 0);
        assert_eq!(system.build_memo_stats().entries, 0);
        let hits_before = system.chain_memo_stats().hits;
        system.run_validation("tiny", image, &memo_config).unwrap();
        assert_eq!(
            system.chain_memo_stats().hits,
            hits_before,
            "post-replacement run must not be served from the memo"
        );
    }

    #[test]
    fn memo_recovers_from_pruned_objects() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let memo_config = RunConfig {
            memoize: true,
            ..config()
        };
        let first = system.run_validation("tiny", image, &memo_config).unwrap();
        // Evict one conserved chain output (as a retention policy would).
        let (_, victim) = first
            .results
            .iter()
            .find(|r| r.test.as_str().ends_with("chain/nc/mcgen"))
            .and_then(|r| r.outputs.first())
            .expect("chain stage output conserved");
        assert!(system.storage().content().remove(*victim));

        let second = system.run_validation("tiny", image, &memo_config).unwrap();
        assert_eq!(first.digest(), second.digest(), "re-execution reproduces");
        assert!(
            system.storage().content().contains(*victim),
            "the pruned object was re-conserved"
        );
        let stats = system.chain_memo_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 2),
            "a stale entry must not count as a hit"
        );
    }

    #[test]
    fn verify_storage_flags_rot_in_objects_and_tarballs() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        system.run_validation("tiny", image, &config()).unwrap();
        assert!(
            system.verify_storage().is_clean(),
            "a fresh validation run conserves clean storage"
        );

        // Rot one conserved artifact tar-ball: the object sweep and the
        // archive sweep must both name it.
        let (key, oid) = system
            .storage()
            .list(StorageArea::Artifacts, "")
            .into_iter()
            .next()
            .expect("a validation run conserves artifacts");
        assert!(system.storage().content().corrupt_for_test(oid));
        let verification = system.verify_storage();
        assert!(verification.corrupt_objects.contains(&oid));
        assert!(verification.bad_archives.contains(&key));
        assert!(!verification.is_clean());
    }

    #[test]
    fn warm_state_restart_replays_memoized_cells() {
        let memo_config = RunConfig {
            memoize: true,
            ..config()
        };

        // A long-lived system earns its warm state...
        let original = SpSystem::new();
        let image = original
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        original.register_experiment(tiny_experiment()).unwrap();
        let first = original
            .run_validation("tiny", image, &memo_config)
            .unwrap();
        let dir = std::env::temp_dir().join(format!("sp-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let exported = original.export_to_dir(&dir).unwrap();
        assert!(exported.warm_state_bytes > 0);

        // ...and a restarted system (fresh process: definitions re-created
        // from code, state imported from the preservation medium) replays
        // the memoized cells instead of re-running the chains.
        let restarted = SpSystem::new();
        let summary = restarted.import_from_dir(&dir).unwrap();
        assert!(summary.warm_state_error.is_none(), "{summary:?}");
        assert!(summary.warm.entries_restored() > 0);
        assert!(summary.warm.clock_restored);
        assert_eq!(summary.warm.entries_rejected, 0);
        assert_eq!(restarted.clock().now(), original.clock().now());
        let image = restarted
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        restarted.register_experiment(tiny_experiment()).unwrap();

        let replayed = restarted
            .run_validation("tiny", image, &memo_config)
            .unwrap();
        assert!(
            restarted.chain_memo_stats().hits > 0,
            "chain cells must replay from the restored memo"
        );
        assert!(restarted.output_memo_stats().hits > 0);
        assert!(restarted.build_memo_stats().hits > 0);
        assert_eq!(
            replayed.digest(),
            first.digest(),
            "the replayed run is byte-identical to the original"
        );
        assert!(
            replayed.id > first.id,
            "the restored run-id cursor never reuses ids"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_codec_generation_warm_entries_are_dropped_cleanly() {
        // A snapshot written by the previous codec generation: the
        // container is valid (header + per-entry digests check out), but
        // the section values lack the [VALUE_TAG, VALUE_VERSION] header —
        // raw 32-byte object ids, raw little-endian counters. Import must
        // reject every such entry (never misread one) and leave the
        // restored system cold but consistent.
        let oid = ObjectId::for_bytes(b"old-generation-output");
        let key = RunKey::new("tiny::tiny/unit/util-0", 7, "SL5", 1.0);

        let mut snapshot = sp_store::Snapshot::new();
        let mut system = SnapshotSection::new("system");
        system.push(b"run-ids".to_vec(), 500u64.to_le_bytes().to_vec());
        snapshot.sections.push(system);
        let mut outputs = SnapshotSection::new("output-memo");
        outputs.push(encode_run_key(&key), oid.0.to_vec());
        snapshot.sections.push(outputs);
        let mut digests = SnapshotSection::new("digest-cache");
        digests.push(b"pkg@1.0@SL5".to_vec(), oid.0.to_vec());
        snapshot.sections.push(digests);
        let bytes = snapshot.encode();

        let restarted = SpSystem::new();
        // The referenced object exists, so presence checks cannot be what
        // rejects the entries — the codec version is.
        restarted
            .storage()
            .content()
            .put(&b"old-generation-output"[..]);
        let before = restarted.run_ids.load(Ordering::SeqCst);
        let report = restarted.import_warm_state(&bytes).unwrap();
        assert_eq!(report.snapshot.entries_dropped, 0, "container is intact");
        assert_eq!(report.entries_rejected, 3, "all v1 values rejected");
        assert_eq!(report.output_memo_entries, 0);
        assert_eq!(report.digest_cache_entries, 0);
        assert_eq!(
            restarted.run_ids.load(Ordering::SeqCst),
            before,
            "an unversioned counter must not move the run-id cursor"
        );
        assert_eq!(restarted.output_memo_stats().entries, 0);
        assert_eq!(restarted.storage().digest_cache().peek("pkg@1.0@SL5"), None);
    }

    #[test]
    fn restored_ledger_references_make_the_first_run_compare() {
        // A system earns a reference, checkpoints, and restarts. The
        // restored ledger must carry the reference map: the first
        // post-restore run of the experiment reports comparisons against
        // the pre-restart reference instead of bootstrapping a new one.
        let original = SpSystem::new();
        let image = original
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        original.register_experiment(tiny_experiment()).unwrap();
        let first = original.run_validation("tiny", image, &config()).unwrap();
        assert!(first.is_successful());
        let dir = std::env::temp_dir().join(format!("sp-ledger-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        original.export_to_dir(&dir).unwrap();

        let restarted = SpSystem::new();
        let summary = restarted.import_from_dir(&dir).unwrap();
        assert!(summary.warm_state_error.is_none(), "{summary:?}");
        assert!(
            summary.warm.ledger_reference_entries > 0,
            "the reference map must restore: {summary:?}"
        );
        assert!(
            restarted.ledger().has_reference("tiny"),
            "references exist before any post-restore run"
        );
        let image = restarted
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        restarted.register_experiment(tiny_experiment()).unwrap();

        let replayed = restarted.run_validation("tiny", image, &config()).unwrap();
        let compared = replayed
            .results
            .iter()
            .filter(|r| r.compare.is_some())
            .count();
        assert!(
            compared > 0,
            "the first post-restore run must compare, not bootstrap"
        );
        assert!(
            replayed
                .results
                .iter()
                .any(|r| matches!(r.compare, Some(CompareOutcome::Identical))),
            "an unchanged platform reproduces the pre-restart reference bit-for-bit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_warm_state_entries_are_dropped_not_trusted() {
        let memo_config = RunConfig {
            memoize: true,
            ..config()
        };
        let original = SpSystem::new();
        let image = original
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        original.register_experiment(tiny_experiment()).unwrap();
        original
            .run_validation("tiny", image, &memo_config)
            .unwrap();

        let mut bytes = original.export_warm_state();
        // Flip one byte deep inside the payload (past the header): either
        // an entry digest stops matching or a decode fails — in both
        // cases the affected entry is dropped, the rest load.
        let victim = bytes.len() / 2;
        bytes[victim] ^= 0xff;

        let restarted = SpSystem::new();
        // Objects first (the memo importers validate against them).
        for (_, oid) in original.storage().list(sp_store::StorageArea::Results, "") {
            if let Ok(data) = original.storage().content().get(oid) {
                restarted.storage().content().put(data);
            }
        }
        for (_, oid) in original
            .storage()
            .list(sp_store::StorageArea::Artifacts, "")
        {
            if let Ok(data) = original.storage().content().get(oid) {
                restarted.storage().content().put(data);
            }
        }
        match restarted.import_warm_state(&bytes) {
            Ok(report) => {
                let clean = original.export_warm_state();
                let (clean_snapshot, _) = sp_store::Snapshot::decode(&clean).unwrap();
                let total = clean_snapshot.entry_count();
                assert!(
                    report.snapshot.entries_dropped + report.entries_rejected > 0,
                    "the corrupted entry must be rejected somewhere: {report:?}"
                );
                assert!(
                    report.snapshot.entries_loaded <= total,
                    "nothing can be fabricated"
                );
            }
            Err(_) => {
                // Structural corruption (a length field): the whole load
                // aborts and the system stays cold — also never trusting
                // the corrupted bytes.
                assert_eq!(restarted.chain_memo_stats().entries, 0);
            }
        }
    }

    #[test]
    fn prune_runs_uses_the_virtual_clock() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        for _ in 0..3 {
            system.clock().advance(86_400);
            system.run_validation("tiny", image, &config()).unwrap();
        }
        // An aggressive age-based policy decided against the *virtual*
        // clock: after advancing simulated time far beyond the failure
        // window, old runs prune without the caller passing any "now".
        system.clock().advance(365 * 86_400);
        let report = system.prune_runs(&sp_store::RetentionPolicy::pruning(1, 1, 0));
        assert!(report.dropped > 0, "{report:?}");
        assert!(system.ledger().has_reference("tiny"));
    }

    #[test]
    fn migration_to_64bit_finds_the_latent_bug() {
        let system = SpSystem::new();
        let sl5_32 = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        let sl6_64 = system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();

        // Establish the 32-bit reference.
        let reference = system.run_validation("tiny", sl5_32, &config()).unwrap();
        assert!(reference.is_successful());

        // Migrate: the legacy library's pointer bug must surface.
        let migrated = system.run_validation("tiny", sl6_64, &config()).unwrap();
        assert!(!migrated.is_successful());
        let failed: Vec<String> = migrated
            .failures()
            .map(|r| r.test.as_str().to_string())
            .collect();
        // The unit check on the buggy library fails...
        assert!(
            failed.iter().any(|t| t.contains("legacy")),
            "legacy unit check should fail: {failed:?}"
        );
        // ...and the chain validation stage sees shifted histograms
        // (reco-pkg links legacy, deviating the whole chain).
        assert!(
            failed.iter().any(|t| t.contains("chain/nc")),
            "chain should fail validation: {failed:?}"
        );
        // Compile tests still pass (with warnings) on SL6.
        let compile_ok = migrated
            .by_category(TestCategory::Compilation)
            .all(|r| r.status.is_pass());
        assert!(compile_ok, "the bug is invisible to compilation");
    }

    #[test]
    fn diagnosis_blames_the_experiment_package() {
        let system = SpSystem::new();
        let sl5_32 = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        let sl6_64 = system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        system.run_validation("tiny", sl5_32, &config()).unwrap();
        let migrated = system.run_validation("tiny", sl6_64, &config()).unwrap();

        let experiment = system.experiment("tiny").unwrap();
        let env = system.image(sl6_64).unwrap().spec.clone();
        let diagnosis = crate::classify(&experiment, &migrated, &env).unwrap();
        assert_eq!(
            diagnosis.category,
            crate::inputs::InputCategory::ExperimentSoftware
        );
        assert_eq!(diagnosis.culprit, "legacy");
    }

    #[test]
    fn unknown_experiment_and_image_error() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap();
        assert!(matches!(
            system.run_validation("ghost", image, &config()),
            Err(SystemError::UnknownExperiment(_))
        ));
        system.register_experiment(tiny_experiment()).unwrap();
        assert!(matches!(
            system.run_validation("tiny", VmImageId(99), &config()),
            Err(SystemError::UnknownImage(_))
        ));
    }

    #[test]
    fn incoherent_image_rejected() {
        let system = SpSystem::new();
        let bad = sp_env::EnvironmentSpec::new(
            sp_env::OsRelease::SL6,
            Arch::I686,
            sp_env::Compiler::GCC44,
        );
        assert!(matches!(
            system.register_image(bad),
            Err(SystemError::Image(_))
        ));
    }

    #[test]
    fn client_requirements_enforced() {
        let system = SpSystem::new();
        assert!(system
            .register_client(
                "vm-sl6",
                ClientKind::VirtualMachine {
                    image_label: "SL6/64bit gcc4.4".into()
                },
                CronSchedule::nightly(),
                true,
                true,
            )
            .is_ok());
        assert!(matches!(
            system.register_client(
                "island",
                ClientKind::BatchNode,
                CronSchedule::nightly(),
                false,
                true,
            ),
            Err(SystemError::Client(_))
        ));
        assert_eq!(system.clients().len(), 1);
    }

    #[test]
    fn production_recipe_export() {
        let system = SpSystem::new();
        // No experiment, no recipe.
        assert!(system.export_production_recipe("tiny").is_none());

        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        // No successful run yet, still no recipe.
        assert!(system.export_production_recipe("tiny").is_none());

        let run = system.run_validation("tiny", image, &config()).unwrap();
        assert!(run.is_successful());
        let recipe = system.export_production_recipe("tiny").unwrap();
        assert_eq!(recipe.validated_by, run.id);
        assert!(recipe.environment.contains("os = SL5"));
        assert!(recipe.environment.contains("compiler = gcc4.1"));
        // One artifact per package in the tiny stack.
        assert_eq!(recipe.artifacts.len(), 6);
        // Every artifact resolves in the common storage.
        for (_, oid) in &recipe.artifacts {
            assert!(system.storage().content().contains(*oid));
        }
        let rendered = recipe.render();
        assert!(rendered.contains("# sp-system production recipe for tiny"));
    }

    #[test]
    fn outputs_are_kept_in_common_storage() {
        let system = SpSystem::new();
        let image = system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap();
        system.register_experiment(tiny_experiment()).unwrap();
        let run = system.run_validation("tiny", image, &config()).unwrap();
        // Every declared output object exists in storage.
        for result in &run.results {
            for (name, oid) in &result.outputs {
                assert!(
                    system.storage().content().contains(*oid),
                    "output {name} of {} missing",
                    result.test
                );
            }
        }
        // The run summary is stored too.
        assert!(system
            .storage()
            .lookup(StorageArea::Results, &format!("{}/SUMMARY", run.id))
            .is_some());
    }
}
