//! Multi-run validation campaigns.
//!
//! "In total more than 300 runs over sets of pre-defined tests have been
//! performed within the sp-system by the HERA experiments." (§3.3)
//!
//! A [`Campaign`] executes a grid of (experiment × image) validation runs,
//! repeated over simulated nightly cron firings, and aggregates the cell
//! statuses that the Figure-3 summary matrix displays.

use std::collections::BTreeMap;

use sp_env::VmImageId;

use crate::run::{RunId, TestStatus, ValidationRun};
use crate::system::{RunConfig, SpSystem, SystemError};

/// Configuration of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Experiments to run (names must be registered).
    pub experiments: Vec<String>,
    /// Images to run on.
    pub images: Vec<VmImageId>,
    /// How many times to repeat the grid (nightly firings).
    pub repetitions: usize,
    /// Base run configuration (seed, scale, threads).
    pub run: RunConfig,
    /// Seconds the clock advances between repetitions (one nightly cron
    /// interval by default).
    pub interval_secs: u64,
}

impl CampaignConfig {
    /// A campaign over everything registered, once.
    pub fn single_pass(system: &SpSystem) -> Self {
        CampaignConfig {
            experiments: system.experiments().map(|e| e.name.clone()).collect(),
            images: system.images().iter().map(|i| i.id).collect(),
            repetitions: 1,
            run: RunConfig::default(),
            interval_secs: 86_400,
        }
    }

    /// Total number of runs this campaign will perform.
    pub fn total_runs(&self) -> usize {
        self.experiments.len() * self.images.len() * self.repetitions
    }
}

/// Aggregated status of one (experiment, group, image) matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellStatus {
    /// All tests of the group passed cleanly.
    Pass,
    /// All passed, some with warnings.
    Warnings,
    /// At least one test failed.
    Fail,
    /// Every test was skipped / nothing ran.
    NotRun,
}

impl CellStatus {
    /// Matrix glyph.
    pub fn glyph(self) -> &'static str {
        match self {
            CellStatus::Pass => "ok",
            CellStatus::Warnings => "warn",
            CellStatus::Fail => "FAIL",
            CellStatus::NotRun => "-",
        }
    }
}

/// Summary record of one executed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Run id.
    pub id: RunId,
    /// Experiment name.
    pub experiment: String,
    /// Image label.
    pub image_label: String,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Test counts: passed.
    pub passed: usize,
    /// Test counts: failed.
    pub failed: usize,
    /// Test counts: skipped.
    pub skipped: usize,
    /// Whether the run validated.
    pub successful: bool,
}

/// The aggregated result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// One record per executed run, in execution order.
    pub runs: Vec<RunRecord>,
    /// Last-run cell status per (experiment, group, image-label).
    pub cells: BTreeMap<(String, String, String), CellStatus>,
    /// Image labels in campaign order (matrix columns).
    pub image_labels: Vec<String>,
}

impl CampaignSummary {
    /// Total runs performed.
    pub fn total_runs(&self) -> usize {
        self.runs.len()
    }

    /// Runs that validated successfully.
    pub fn successful_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.successful).count()
    }

    /// Cell lookup.
    pub fn cell(&self, experiment: &str, group: &str, image_label: &str) -> CellStatus {
        self.cells
            .get(&(
                experiment.to_string(),
                group.to_string(),
                image_label.to_string(),
            ))
            .copied()
            .unwrap_or(CellStatus::NotRun)
    }

    /// Distinct (experiment, group) rows in insertion order of experiments.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (exp, group, _) in self.cells.keys() {
            let key = (exp.clone(), group.clone());
            if !rows.contains(&key) {
                rows.push(key);
            }
        }
        rows
    }
}

/// Executes campaigns against a system.
pub struct Campaign<'a> {
    system: &'a SpSystem,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign.
    pub fn new(system: &'a SpSystem, config: CampaignConfig) -> Self {
        Campaign { system, config }
    }

    /// Runs the full grid, aggregating per-cell statuses from the *last*
    /// run of each (experiment, image) pair.
    pub fn execute(&self) -> Result<CampaignSummary, SystemError> {
        let mut runs: Vec<RunRecord> = Vec::new();
        let mut cells: BTreeMap<(String, String, String), CellStatus> = BTreeMap::new();
        let mut image_labels: Vec<String> = Vec::new();

        for image_id in &self.config.images {
            if let Some(image) = self.system.image(*image_id) {
                image_labels.push(column_label(image));
            }
        }

        for repetition in 0..self.config.repetitions {
            for experiment in &self.config.experiments {
                for image_id in &self.config.images {
                    let image_label = self
                        .system
                        .image(*image_id)
                        .map(column_label)
                        .unwrap_or_default();
                    let mut run_config = self.config.run.clone();
                    run_config.description =
                        format!("{experiment} @ {image_label} (pass {})", repetition + 1);
                    let run = self
                        .system
                        .run_validation(experiment, *image_id, &run_config)?;
                    runs.push(RunRecord {
                        id: run.id,
                        experiment: experiment.clone(),
                        image_label: image_label.clone(),
                        timestamp: run.timestamp,
                        passed: run.passed(),
                        failed: run.failed(),
                        skipped: run.skipped(),
                        successful: run.is_successful(),
                    });
                    for (group, status) in aggregate_groups(&run) {
                        cells.insert((experiment.clone(), group, image_label.clone()), status);
                    }
                }
            }
            self.system.clock().advance(self.config.interval_secs);
        }

        Ok(CampaignSummary {
            runs,
            cells,
            image_labels,
        })
    }
}

/// Matrix column label for an image: the configuration label plus the
/// installed ROOT version (the external-dependency coordinate of Figure 3).
fn column_label(image: &sp_env::VmImage) -> String {
    match image.spec.externals.get("root") {
        Some(root) => format!("{} root{}", image.label(), root.version),
        None => image.label(),
    }
}

/// Aggregates a run's results per process group.
fn aggregate_groups(run: &ValidationRun) -> BTreeMap<String, CellStatus> {
    let mut by_group: BTreeMap<String, Vec<&TestStatus>> = BTreeMap::new();
    for result in &run.results {
        by_group
            .entry(result.group.clone())
            .or_default()
            .push(&result.status);
    }
    by_group
        .into_iter()
        .map(|(group, statuses)| {
            let any_fail = statuses.iter().any(|s| matches!(s, TestStatus::Failed(_)));
            let all_skipped = statuses.iter().all(|s| matches!(s, TestStatus::Skipped(_)));
            let any_warn = statuses
                .iter()
                .any(|s| matches!(s, TestStatus::PassedWithWarnings(_)));
            let status = if all_skipped {
                CellStatus::NotRun
            } else if any_fail {
                CellStatus::Fail
            } else if any_warn {
                CellStatus::Warnings
            } else {
                CellStatus::Pass
            };
            (group, status)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::TestResult;
    use crate::test::{FailureKind, TestCategory, TestId};
    use sp_exec::JobId;

    fn result(group: &str, status: TestStatus) -> TestResult {
        TestResult {
            test: TestId::new(format!("{group}/t")),
            category: TestCategory::Compilation,
            group: group.into(),
            job: JobId(1),
            status,
            outputs: vec![],
            compare: None,
        }
    }

    #[test]
    fn group_aggregation_rules() {
        let run = ValidationRun {
            id: RunId(1),
            experiment: "e".into(),
            image_label: "img".into(),
            description: String::new(),
            timestamp: 0,
            results: vec![
                result("clean", TestStatus::Passed),
                result("warny", TestStatus::Passed),
                result("warny", TestStatus::PassedWithWarnings(2)),
                result("broken", TestStatus::Passed),
                result("broken", TestStatus::Failed(FailureKind::CompileError)),
                result("idle", TestStatus::Skipped("dep".into())),
            ],
        };
        let groups = aggregate_groups(&run);
        assert_eq!(groups["clean"], CellStatus::Pass);
        assert_eq!(groups["warny"], CellStatus::Warnings);
        assert_eq!(groups["broken"], CellStatus::Fail);
        assert_eq!(groups["idle"], CellStatus::NotRun);
    }

    #[test]
    fn glyphs() {
        assert_eq!(CellStatus::Pass.glyph(), "ok");
        assert_eq!(CellStatus::Fail.glyph(), "FAIL");
    }

    #[test]
    fn config_counts() {
        let config = CampaignConfig {
            experiments: vec!["h1".into(), "zeus".into()],
            images: vec![VmImageId(1), VmImageId(2), VmImageId(3)],
            repetitions: 5,
            run: RunConfig::default(),
            interval_secs: 86_400,
        };
        assert_eq!(config.total_runs(), 30);
    }
}
