//! Multi-run validation campaigns: planning, sequential and parallel
//! execution.
//!
//! "In total more than 300 runs over sets of pre-defined tests have been
//! performed within the sp-system by the HERA experiments." (§3.3)
//!
//! A campaign replays a grid of (experiment × image) validation runs over
//! simulated nightly cron firings and aggregates the cell statuses the
//! Figure-3 summary matrix displays. Execution is split into two phases:
//!
//! 1. **Planning** — [`CampaignPlan`] flattens the grid into an indexed
//!    list of [`RunTask`]s, validating every experiment name and image id
//!    *up front* (an unknown image is a [`SystemError::UnknownImage`]
//!    before anything runs, never a half-executed campaign). Tasks are
//!    grouped into per-repetition **barriers**: the virtual clock advances
//!    exactly once per pass, after every task of the pass has finished.
//!
//! 2. **Execution** — sequentially through [`Campaign`] (the reference
//!    oracle: one `run_validation` per task in task order), in parallel
//!    through [`CampaignEngine`] (one campaign over a work-stealing
//!    pool), or multi-tenant through [`CampaignScheduler`], which runs
//!    **N campaigns concurrently against one shared system**.
//!
//! ## The scheduler: submission and collection
//!
//! [`CampaignScheduler`] splits campaign execution into *plan submission*
//! and *result collection*. [`submit`](CampaignScheduler::submit) plans a
//! campaign, checks it is experiment-disjoint from every other submission
//! (references, memo cells and lanes are per-experiment — disjointness is
//! what makes each campaign independent), and pre-reserves its contiguous
//! run-id range. [`execute`](CampaignScheduler::execute) then runs
//! admitted campaigns in rounds — one repetition per campaign per round —
//! dispatching every campaign's experiment lanes **fair-share interleaved**
//! onto one shared [`sp_exec::LaneScheduler`] pool, committing each
//! campaign's repetition to the ledger as its own batch (no cross-campaign
//! interleaving inside a batch), and collecting one [`CampaignReport`] per
//! campaign.
//!
//! Each campaign runs on its own **virtual timeline**: repetition `r` is
//! stamped `origin + r × interval` where `origin` is the shared clock at
//! execute time, and the shared clock is only ever moved *forward*
//! ([`sp_exec::VirtualClock::advance_to`]) past completed barriers. The
//! result: every campaign's summary is byte-identical to executing that
//! campaign alone on an identically prepared system — which
//! `crates/core/tests/campaign_equivalence.rs` asserts property-wise.
//! Per-campaign admission caps how many campaigns run concurrently, and a
//! campaign-scoped [`sp_exec::CancellationToken`] stops one campaign
//! without touching its neighbours.
//!
//! ## Why the engine shards by experiment
//!
//! Within one repetition, runs of the *same* experiment form a dependency
//! chain: a successful run promotes its outputs to reference status, and
//! the next run of that experiment compares against exactly those
//! references. Runs of *different* experiments share nothing (references
//! are per-experiment, storage is content-addressed, ids are
//! pre-assigned). The engine therefore schedules one **lane** per
//! experiment — the stealable unit — executing each lane's tasks in task
//! order and promoting references as it goes, while different lanes run
//! concurrently. At the repetition barrier the runs are committed to the
//! ledger in task order through a single [`RunLedger::commit_batch`]
//! (one lock acquisition per repetition instead of one per run), and the
//! clock ticks. The result: a [`CampaignSummary`] byte-identical to the
//! sequential oracle for any worker count, which
//! `crates/core/tests/campaign_equivalence.rs` asserts property-wise.
//!
//! ## Saturating the grid: `image_parallel`
//!
//! Per-experiment lanes cap parallelism at the experiment count: a grid
//! of 3 experiments × 8 images yields 3 stealable units per repetition,
//! each serialised by in-lane promotion. [`CampaignOptions::image_parallel`]
//! trades that in-repetition reference chasing for throughput: every
//! (experiment, image) cell becomes its own lane, **all** cells of a
//! repetition compare against the reference state frozen at the previous
//! barrier, and the repetition's promotions are applied at the barrier in
//! task order (so the *post-barrier* state is byte-identical to the
//! sequential engine's). The flagged-off path is untouched and remains
//! the byte-identity oracle; the flagged-on path agrees at report level
//! on conserved workloads — both pinned by proptest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sp_env::VmImageId;
use sp_exec::{CampaignId, CancellationToken, Lane, LaneScheduler, ProgressHook, ProgressPoint};

use crate::ledger::RunLedger;
use crate::run::{RunId, TestStatus, ValidationRun};
use crate::system::{RunConfig, SpSystem, SystemError};

/// Execution options orthogonal to the campaign grid itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignOptions {
    /// Serve unchanged (experiment, image, test) cells from the system's
    /// run memo: a cell whose determinants — test id, campaign seed,
    /// environment revision (full image label including externals) and
    /// scale — match an earlier execution replays that execution's
    /// conserved outputs instead of re-running its MC chain. Comparisons
    /// against the reference are always recomputed, so the resulting
    /// [`CampaignSummary`] is byte-identical to the uncached path (the
    /// memoized-vs-uncached property test asserts exactly this).
    pub memoize: bool,
    /// Parallelise the **image axis**: instead of one lane per experiment
    /// (each lane walking its images in order and promoting references as
    /// it goes), every (experiment, image) cell becomes its own stealable
    /// lane, and reference promotion is deferred to the repetition
    /// barrier (in task order, so the post-barrier reference state is
    /// identical to the sequential engine's).
    ///
    /// The tradeoff: within a repetition every cell compares against the
    /// reference state **frozen at the previous barrier** rather than
    /// chasing in-lane promotions, so image `k` of repetition `r` no
    /// longer sees image `k-1`'s just-promoted outputs — in particular,
    /// repetition 1 cells compare against the bootstrap reference (or
    /// run referenceless on a fresh system). On conserved workloads the
    /// snapshot and the chased state carry identical bytes from the
    /// first promotion on, and the report-level equivalence proptest in
    /// `campaign_equivalence.rs` pins that agreement. Default **off**:
    /// the flagged-off path is byte-identical to the sequential oracle.
    pub image_parallel: bool,
}

impl CampaignOptions {
    /// Options with memoisation enabled.
    pub fn memoized() -> Self {
        CampaignOptions {
            memoize: true,
            ..CampaignOptions::default()
        }
    }

    /// Options with image-axis parallelism enabled (see
    /// [`image_parallel`](Self::image_parallel) for the tradeoff).
    pub fn image_parallel() -> Self {
        CampaignOptions {
            image_parallel: true,
            ..CampaignOptions::default()
        }
    }
}

/// Configuration of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Experiments to run (names must be registered).
    pub experiments: Vec<String>,
    /// Images to run on.
    pub images: Vec<VmImageId>,
    /// How many times to repeat the grid (nightly firings).
    pub repetitions: usize,
    /// Base run configuration (seed, scale, threads).
    pub run: RunConfig,
    /// Seconds the clock advances between repetitions (one nightly cron
    /// interval by default).
    pub interval_secs: u64,
    /// Execution options (memoisation, image-axis parallelism).
    pub options: CampaignOptions,
}

impl CampaignConfig {
    /// A campaign over everything registered, once.
    pub fn single_pass(system: &SpSystem) -> Self {
        CampaignConfig {
            experiments: system.experiments().map(|e| e.name.clone()).collect(),
            images: system.images().iter().map(|i| i.id).collect(),
            repetitions: 1,
            run: RunConfig::default(),
            interval_secs: 86_400,
            options: CampaignOptions::default(),
        }
    }

    /// The effective per-run configuration for one task: the base run
    /// config with the task description and the campaign-level options
    /// applied. Shared by the sequential oracle and the parallel engine so
    /// both execute under identical settings.
    fn run_config_for(&self, task: &RunTask) -> RunConfig {
        let mut run = self.run.clone();
        run.description = task.description.clone();
        run.memoize = run.memoize || self.options.memoize;
        run
    }

    /// Total number of runs this campaign will perform.
    pub fn total_runs(&self) -> usize {
        self.experiments.len() * self.images.len() * self.repetitions
    }
}

/// Aggregated status of one (experiment, group, image) matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellStatus {
    /// All tests of the group passed cleanly.
    Pass,
    /// All passed, some with warnings.
    Warnings,
    /// At least one test failed.
    Fail,
    /// Every test was skipped / nothing ran.
    NotRun,
}

impl CellStatus {
    /// Matrix glyph.
    pub fn glyph(self) -> &'static str {
        match self {
            CellStatus::Pass => "ok",
            CellStatus::Warnings => "warn",
            CellStatus::Fail => "FAIL",
            CellStatus::NotRun => "-",
        }
    }
}

/// Summary record of one executed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Run id.
    pub id: RunId,
    /// Experiment name.
    pub experiment: String,
    /// Image label.
    pub image_label: String,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Test counts: passed.
    pub passed: usize,
    /// Test counts: failed.
    pub failed: usize,
    /// Test counts: skipped.
    pub skipped: usize,
    /// Whether the run validated.
    pub successful: bool,
}

/// The aggregated result of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// One record per executed run, in execution order.
    pub runs: Vec<RunRecord>,
    /// Last-run cell status per (experiment, group, image-label).
    pub cells: BTreeMap<(String, String, String), CellStatus>,
    /// Image labels in campaign order (matrix columns).
    pub image_labels: Vec<String>,
}

impl CampaignSummary {
    /// Total runs performed.
    pub fn total_runs(&self) -> usize {
        self.runs.len()
    }

    /// Runs that validated successfully.
    pub fn successful_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.successful).count()
    }

    /// Cell lookup.
    pub fn cell(&self, experiment: &str, group: &str, image_label: &str) -> CellStatus {
        self.cells
            .get(&(
                experiment.to_string(),
                group.to_string(),
                image_label.to_string(),
            ))
            .copied()
            .unwrap_or(CellStatus::NotRun)
    }

    /// Distinct (experiment, group) rows, keeping the key order of `cells`.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
        let mut rows: Vec<(String, String)> = Vec::new();
        for (exp, group, _) in self.cells.keys() {
            if seen.insert((exp.as_str(), group.as_str())) {
                rows.push((exp.clone(), group.clone()));
            }
        }
        rows
    }
}

/// One planned validation run of the campaign grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTask {
    /// Global sequential position in the flattened grid; pre-assigned run
    /// ids and result ordering both derive from it.
    pub index: usize,
    /// Which nightly pass (0-based) this task belongs to.
    pub repetition: usize,
    /// Experiment to validate.
    pub experiment: String,
    /// Image to validate on.
    pub image: VmImageId,
    /// Matrix column label of that image.
    pub image_label: String,
    /// Run description ("which software versions were used").
    pub description: String,
}

/// The planning phase: the campaign grid flattened into indexed tasks with
/// explicit repetition barriers.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    config: CampaignConfig,
    tasks: Vec<RunTask>,
    image_labels: Vec<String>,
    runs_per_repetition: usize,
}

impl CampaignPlan {
    /// Plans a campaign, validating every experiment name and image id up
    /// front: planning fails with [`SystemError::UnknownExperiment`] /
    /// [`SystemError::UnknownImage`] before a single run executes.
    pub fn new(system: &SpSystem, config: CampaignConfig) -> Result<Self, SystemError> {
        for name in &config.experiments {
            if system.experiment(name).is_none() {
                return Err(SystemError::UnknownExperiment(name.clone()));
            }
        }
        let mut image_labels = Vec::with_capacity(config.images.len());
        for image_id in &config.images {
            let image = system
                .image(*image_id)
                .ok_or(SystemError::UnknownImage(*image_id))?;
            image_labels.push(column_label(&image));
        }

        let runs_per_repetition = config.experiments.len() * config.images.len();
        let mut tasks = Vec::with_capacity(config.total_runs());
        for repetition in 0..config.repetitions {
            for experiment in &config.experiments {
                for (image_id, image_label) in config.images.iter().zip(&image_labels) {
                    tasks.push(RunTask {
                        index: tasks.len(),
                        repetition,
                        experiment: experiment.clone(),
                        image: *image_id,
                        image_label: image_label.clone(),
                        description: format!(
                            "{experiment} @ {image_label} (pass {})",
                            repetition + 1
                        ),
                    });
                }
            }
        }
        Ok(CampaignPlan {
            config,
            tasks,
            image_labels,
            runs_per_repetition,
        })
    }

    /// The campaign configuration this plan was built from.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// All tasks in sequential (index) order.
    pub fn tasks(&self) -> &[RunTask] {
        &self.tasks
    }

    /// Number of repetition barriers (clock advances) the plan contains.
    pub fn repetitions(&self) -> usize {
        self.config.repetitions
    }

    /// Total planned runs.
    pub fn total_runs(&self) -> usize {
        self.tasks.len()
    }

    /// The tasks of one repetition — the unit between two barriers.
    pub fn repetition_tasks(&self, repetition: usize) -> &[RunTask] {
        let start = repetition * self.runs_per_repetition;
        let end = (start + self.runs_per_repetition).min(self.tasks.len());
        &self.tasks[start..end]
    }

    /// Matrix column labels, in image order.
    pub fn image_labels(&self) -> &[String] {
        &self.image_labels
    }

    /// Groups one repetition's tasks into lanes — the engine's stealable
    /// unit.
    ///
    /// Default: one lane per **experiment**, preserving task order within
    /// each lane (in-lane reference promotion requires an experiment's
    /// images to run in order). With
    /// [`CampaignOptions::image_parallel`] every (experiment, image)
    /// cell is its own single-task lane: promotion is deferred to the
    /// barrier, so nothing orders cells against each other and the whole
    /// grid row becomes stealable at once.
    fn lanes(&self, repetition: usize) -> Vec<Vec<&RunTask>> {
        if self.config.options.image_parallel {
            return self
                .repetition_tasks(repetition)
                .iter()
                .map(|task| vec![task])
                .collect();
        }
        let mut order: Vec<&str> = Vec::new();
        let mut lanes: BTreeMap<&str, Vec<&RunTask>> = BTreeMap::new();
        for task in self.repetition_tasks(repetition) {
            let lane = lanes.entry(task.experiment.as_str()).or_default();
            if lane.is_empty() {
                order.push(task.experiment.as_str());
            }
            lane.push(task);
        }
        order
            .into_iter()
            .map(|name| lanes.remove(name).expect("lane recorded"))
            .collect()
    }
}

/// Streaming aggregation of runs into a [`CampaignSummary`]; shared by the
/// sequential oracle and the parallel engine so both produce identical
/// summaries by construction (given runs arrive in task order).
struct SummaryAggregator {
    runs: Vec<RunRecord>,
    cells: BTreeMap<(String, String, String), CellStatus>,
    image_labels: Vec<String>,
}

impl SummaryAggregator {
    fn new(plan: &CampaignPlan) -> Self {
        SummaryAggregator {
            runs: Vec::with_capacity(plan.total_runs()),
            cells: BTreeMap::new(),
            image_labels: plan.image_labels().to_vec(),
        }
    }

    fn record(&mut self, task: &RunTask, run: &ValidationRun) {
        self.runs.push(RunRecord {
            id: run.id,
            experiment: task.experiment.clone(),
            image_label: task.image_label.clone(),
            timestamp: run.timestamp,
            passed: run.passed(),
            failed: run.failed(),
            skipped: run.skipped(),
            successful: run.is_successful(),
        });
        for (group, status) in aggregate_groups(run) {
            self.cells.insert(
                (task.experiment.clone(), group, task.image_label.clone()),
                status,
            );
        }
    }

    fn finish(self) -> CampaignSummary {
        CampaignSummary {
            runs: self.runs,
            cells: self.cells,
            image_labels: self.image_labels,
        }
    }
}

/// The sequential campaign executor — the reference oracle the parallel
/// [`CampaignEngine`] is validated against.
pub struct Campaign<'a> {
    system: &'a SpSystem,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign.
    pub fn new(system: &'a SpSystem, config: CampaignConfig) -> Self {
        Campaign { system, config }
    }

    /// Runs the full grid strictly sequentially, one `run_validation` per
    /// task in task order, aggregating per-cell statuses from the *last*
    /// run of each (experiment, image) pair.
    pub fn execute(&self) -> Result<CampaignSummary, SystemError> {
        let plan = CampaignPlan::new(self.system, self.config.clone())?;
        let mut aggregator = SummaryAggregator::new(&plan);
        for repetition in 0..plan.repetitions() {
            for task in plan.repetition_tasks(repetition) {
                let run_config = plan.config().run_config_for(task);
                let run = self
                    .system
                    .run_validation(&task.experiment, task.image, &run_config)?;
                aggregator.record(task, &run);
            }
            self.system.clock().advance(plan.config().interval_secs);
        }
        Ok(aggregator.finish())
    }
}

/// The parallel campaign executor: each repetition's per-experiment lanes
/// are dispatched onto a work-stealing pool, references are promoted in
/// lane order, and the repetition's runs are committed to the ledger in a
/// single batch at the barrier.
///
/// Since the scheduler refactor this is a thin convenience over
/// [`CampaignScheduler`] with exactly one submitted campaign; the
/// byte-identity contract against [`Campaign`] is unchanged.
pub struct CampaignEngine<'a> {
    system: &'a SpSystem,
    plan: CampaignPlan,
    workers: usize,
}

impl<'a> CampaignEngine<'a> {
    /// Creates an engine over a plan with the given worker count
    /// (minimum 1). One worker degenerates to sequential lane execution.
    pub fn new(system: &'a SpSystem, plan: CampaignPlan, workers: usize) -> Self {
        CampaignEngine {
            system,
            plan,
            workers: workers.max(1),
        }
    }

    /// Plans and creates an engine in one step.
    pub fn plan(
        system: &'a SpSystem,
        config: CampaignConfig,
        workers: usize,
    ) -> Result<Self, SystemError> {
        Ok(Self::new(
            system,
            CampaignPlan::new(system, config)?,
            workers,
        ))
    }

    /// The underlying plan.
    pub fn campaign_plan(&self) -> &CampaignPlan {
        &self.plan
    }

    /// Executes the plan. The summary is byte-identical to what
    /// [`Campaign::execute`] produces on an identically prepared system,
    /// for any worker count.
    pub fn execute(&self) -> Result<CampaignSummary, SystemError> {
        let mut scheduler = CampaignScheduler::new(self.system, self.workers);
        scheduler.submit_plan(self.plan.clone())?;
        let mut reports = scheduler.execute()?;
        Ok(reports.remove(0).summary)
    }
}

/// Handle to one submitted campaign within a [`CampaignScheduler`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignTicket(usize);

impl CampaignTicket {
    /// Position of the campaign in submission order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a ticket from a submission index — for collectors (the
    /// fleet coordinator) that re-label reports by their own order.
    pub(crate) fn from_index(index: usize) -> Self {
        CampaignTicket(index)
    }
}

/// Aggregated scheduling counters of one [`CampaignScheduler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Campaigns submitted to this scheduler.
    pub campaigns_submitted: usize,
    /// Campaigns admitted into the concurrent active set so far.
    pub campaigns_admitted: usize,
    /// Campaigns that ran every repetition to completion.
    pub campaigns_completed: usize,
    /// Campaigns stopped by their cancellation token.
    pub campaigns_cancelled: usize,
    /// Scheduling rounds dispatched (each round = one repetition per
    /// active campaign, fair-share interleaved).
    pub rounds: u64,
    /// Experiment lanes executed.
    pub lanes_executed: u64,
    /// Experiment lanes skipped by cancellation.
    pub lanes_cancelled: u64,
    /// Lanes a pool worker took from its own queue.
    pub lanes_local: u64,
    /// Lanes a pool worker stole from a peer.
    pub lanes_stolen: u64,
}

impl ScheduleStats {
    /// Accumulates another scheduler's counters into this one. Every
    /// field counts events owned by exactly one scheduler instance, so
    /// summing the per-process snapshots of a worker fleet produces one
    /// fleet digest without double counting (saturating adds, so a
    /// corrupt snapshot cannot wrap the total).
    pub fn merge(&mut self, other: &ScheduleStats) {
        self.campaigns_submitted = self
            .campaigns_submitted
            .saturating_add(other.campaigns_submitted);
        self.campaigns_admitted = self
            .campaigns_admitted
            .saturating_add(other.campaigns_admitted);
        self.campaigns_completed = self
            .campaigns_completed
            .saturating_add(other.campaigns_completed);
        self.campaigns_cancelled = self
            .campaigns_cancelled
            .saturating_add(other.campaigns_cancelled);
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.lanes_executed = self.lanes_executed.saturating_add(other.lanes_executed);
        self.lanes_cancelled = self.lanes_cancelled.saturating_add(other.lanes_cancelled);
        self.lanes_local = self.lanes_local.saturating_add(other.lanes_local);
        self.lanes_stolen = self.lanes_stolen.saturating_add(other.lanes_stolen);
    }
}

/// The collected result of one scheduled campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The submission this report answers.
    pub ticket: CampaignTicket,
    /// Aggregated summary over the completed repetitions. For a campaign
    /// cancelled mid-flight this covers exactly the repetitions whose
    /// barrier was passed; a partially executed repetition is discarded,
    /// never half-committed.
    pub summary: CampaignSummary,
    /// Repetition barriers passed.
    pub completed_repetitions: usize,
    /// Whether the campaign was stopped by its cancellation token.
    pub cancelled: bool,
}

/// One submitted campaign: the plan plus its pre-reserved run-id range
/// and cancellation token.
struct Submission {
    plan: CampaignPlan,
    base: RunId,
    token: CancellationToken,
}

/// The multi-campaign scheduler: N campaigns against one shared
/// [`SpSystem`], fair-share over one work-stealing pool.
///
/// See the module docs for the execution model. Tickets are scoped to one
/// [`execute`](Self::execute) batch; the scheduler can be reused for a
/// fresh batch afterwards (counters accumulate).
pub struct CampaignScheduler<'a> {
    system: &'a SpSystem,
    lanes: LaneScheduler,
    admission_limit: usize,
    progress: Option<&'a dyn ProgressHook>,
    submissions: Vec<Submission>,
    campaigns_submitted: usize,
    campaigns_admitted: usize,
    campaigns_completed: usize,
    campaigns_cancelled: usize,
}

impl<'a> CampaignScheduler<'a> {
    /// Creates a scheduler whose shared pool has `workers` threads
    /// (minimum 1) and no admission limit.
    pub fn new(system: &'a SpSystem, workers: usize) -> Self {
        CampaignScheduler {
            system,
            lanes: LaneScheduler::new(workers),
            admission_limit: usize::MAX,
            progress: None,
            submissions: Vec::new(),
            campaigns_submitted: 0,
            campaigns_admitted: 0,
            campaigns_completed: 0,
            campaigns_cancelled: 0,
        }
    }

    /// Caps how many campaigns run concurrently (minimum 1); further
    /// submissions wait in submission order until a slot frees up.
    pub fn with_admission_limit(mut self, limit: usize) -> Self {
        self.admission_limit = limit.max(1);
        self
    }

    /// Attaches an in-flight liveness hook: it ticks from pool workers as
    /// lanes start ([`ProgressPoint::Dispatch`]), after every task
    /// completes ([`ProgressPoint::Task`]), and at every repetition
    /// barrier ([`ProgressPoint::Barrier`]). A fleet worker hangs its
    /// lease renewal off these ticks so a lease held by a live executor
    /// never expires mid-campaign, however long the campaign runs.
    pub fn with_progress(mut self, hook: &'a dyn ProgressHook) -> Self {
        self.progress = Some(hook);
        self
    }

    /// Plans and submits a campaign: validates every experiment and image
    /// up front, rejects overlap with already-submitted campaigns, and
    /// pre-reserves the campaign's contiguous run-id range.
    pub fn submit(&mut self, config: CampaignConfig) -> Result<CampaignTicket, SystemError> {
        let plan = CampaignPlan::new(self.system, config)?;
        self.submit_plan(plan)
    }

    /// Submits an already-validated plan (the [`CampaignEngine`] path).
    pub fn submit_plan(&mut self, plan: CampaignPlan) -> Result<CampaignTicket, SystemError> {
        self.check_disjoint(&plan)?;
        let base = self.system.reserve_run_ids(plan.total_runs() as u64);
        Ok(self.push_submission(plan, base))
    }

    /// Submits a plan whose run-id range was **already reserved
    /// elsewhere** — the fleet path: ranges are pre-carved on the
    /// coordinator at queue-submission time, and whichever worker leases
    /// the plan executes it under exactly those ids. The local run-id
    /// cursor is advanced past the range, so ad-hoc runs on this system
    /// can never collide with the handed-off ids.
    pub fn submit_reserved(
        &mut self,
        plan: CampaignPlan,
        base: RunId,
    ) -> Result<CampaignTicket, SystemError> {
        self.check_disjoint(&plan)?;
        self.system
            .advance_run_ids_past(base.0 + plan.total_runs() as u64);
        Ok(self.push_submission(plan, base))
    }

    /// Rejects a plan that overlaps an already-submitted campaign's
    /// experiments (see [`SystemError::CampaignConflict`]).
    fn check_disjoint(&self, plan: &CampaignPlan) -> Result<(), SystemError> {
        for submission in &self.submissions {
            for name in &plan.config().experiments {
                if submission.plan.config().experiments.contains(name) {
                    return Err(SystemError::CampaignConflict(name.clone()));
                }
            }
        }
        Ok(())
    }

    fn push_submission(&mut self, plan: CampaignPlan, base: RunId) -> CampaignTicket {
        let ticket = CampaignTicket(self.submissions.len());
        self.submissions.push(Submission {
            plan,
            base,
            token: CancellationToken::new(),
        });
        self.campaigns_submitted += 1;
        ticket
    }

    /// The run-id range `[first, last]` pre-reserved for a submission.
    pub fn reserved_run_ids(&self, ticket: CampaignTicket) -> Option<(RunId, RunId)> {
        let submission = self.submissions.get(ticket.0)?;
        let total = submission.plan.total_runs() as u64;
        Some((
            submission.base,
            RunId(submission.base.0 + total.saturating_sub(1)),
        ))
    }

    /// The cancellation token of a submission — a cheap clone the caller
    /// can keep and trip from any thread while the batch executes.
    pub fn cancellation_token(&self, ticket: CampaignTicket) -> Option<CancellationToken> {
        self.submissions.get(ticket.0).map(|s| s.token.clone())
    }

    /// Cancels one campaign: its not-yet-started lanes are skipped, its
    /// current repetition is discarded, and no further repetitions run.
    /// Other campaigns are unaffected.
    pub fn cancel(&self, ticket: CampaignTicket) {
        if let Some(submission) = self.submissions.get(ticket.0) {
            submission.token.cancel();
        }
    }

    /// Snapshot of the accumulated scheduling counters.
    pub fn stats(&self) -> ScheduleStats {
        let lanes = self.lanes.stats();
        ScheduleStats {
            campaigns_submitted: self.campaigns_submitted,
            campaigns_admitted: self.campaigns_admitted,
            campaigns_completed: self.campaigns_completed,
            campaigns_cancelled: self.campaigns_cancelled,
            rounds: lanes.rounds,
            lanes_executed: lanes.lanes_executed,
            lanes_cancelled: lanes.lanes_cancelled,
            lanes_local: lanes.local,
            lanes_stolen: lanes.stolen,
        }
    }

    /// Runs every submitted campaign to completion (or cancellation) and
    /// collects one report per submission, in submission order.
    ///
    /// Rounds dispatch one repetition per active campaign; within a round
    /// every campaign's lanes share the pool fair-share interleaved. At
    /// each campaign's repetition barrier its runs are committed to the
    /// ledger as **one batch in task order** — batches of different
    /// campaigns never interleave inside a commit, and each campaign's
    /// ledger ids are exactly its pre-reserved range in ascending order.
    pub fn execute(&mut self) -> Result<Vec<CampaignReport>, SystemError> {
        self.execute_from(self.system.clock().now())
    }

    /// [`execute`](Self::execute) with an explicit timeline origin.
    ///
    /// A fleet worker replays a campaign that was *submitted* elsewhere:
    /// its timestamps must derive from the origin recorded at submission,
    /// not from whatever this process's clock happens to read after
    /// earlier leases moved it — otherwise the report would depend on
    /// which worker drained the plan. The shared clock is still only ever
    /// moved forward past completed barriers.
    pub fn execute_from(&mut self, origin: u64) -> Result<Vec<CampaignReport>, SystemError> {
        let submissions = std::mem::take(&mut self.submissions);
        let ledger: &RunLedger = self.system.ledger();

        struct CampaignState<'p> {
            plan: &'p CampaignPlan,
            base: RunId,
            token: CancellationToken,
            aggregator: SummaryAggregator,
            next_repetition: usize,
            cancelled: bool,
        }
        let mut states: Vec<CampaignState<'_>> = submissions
            .iter()
            .map(|submission| CampaignState {
                plan: &submission.plan,
                base: submission.base,
                token: submission.token.clone(),
                aggregator: SummaryAggregator::new(&submission.plan),
                next_repetition: 0,
                cancelled: false,
            })
            .collect();

        // Admission: up to `admission_limit` campaigns active at once, the
        // rest waiting in submission order. A campaign with nothing to run
        // completes at admission without occupying a slot.
        let admission_limit = self.admission_limit;
        let mut waiting: VecDeque<usize> = (0..states.len()).collect();
        let mut active: Vec<usize> = Vec::new();
        macro_rules! admit {
            () => {
                while active.len() < admission_limit {
                    match waiting.pop_front() {
                        Some(index) => {
                            self.campaigns_admitted += 1;
                            if states[index].plan.repetitions() == 0 {
                                self.campaigns_completed += 1;
                            } else {
                                active.push(index);
                            }
                        }
                        None => break,
                    }
                }
            };
        }
        admit!();

        type LaneResult<'p> = Result<Vec<(&'p RunTask, ValidationRun)>, SystemError>;
        /// One dispatched lane's payload: (campaign index, its plan, the
        /// lane's tasks, the repetition timestamp).
        type LanePayload<'p> = (usize, &'p CampaignPlan, Vec<&'p RunTask>, u64);

        while !active.is_empty() {
            // One repetition per active campaign, fair-share interleaved.
            // Lanes promote references as they run, so before dispatching
            // a campaign's repetition its experiments' reference states
            // are checkpointed — a repetition discarded by cancellation
            // rolls its promotions back (references of runs that
            // officially never happened must not leak into later work).
            let mut round: Vec<Lane<LanePayload<'_>>> = Vec::new();
            let mut checkpoints: BTreeMap<usize, Vec<(String, crate::ledger::ReferenceState)>> =
                BTreeMap::new();
            for &index in &active {
                let state = &states[index];
                if state.cancelled || state.token.is_cancelled() {
                    continue;
                }
                checkpoints.insert(
                    index,
                    state
                        .plan
                        .config()
                        .experiments
                        .iter()
                        .map(|name| (name.clone(), ledger.reference_state(name)))
                        .collect(),
                );
                let repetition = state.next_repetition;
                let timestamp = origin + repetition as u64 * state.plan.config().interval_secs;
                for lane_tasks in state.plan.lanes(repetition) {
                    round.push(Lane {
                        campaign: CampaignId(index as u64),
                        token: state.token.clone(),
                        payload: (index, state.plan, lane_tasks, timestamp),
                    });
                }
            }
            let bases: Vec<RunId> = states.iter().map(|s| s.base).collect();
            let progress = self.progress;

            let results = self.lanes.dispatch_hooked(
                round,
                progress,
                |_, (index, plan, tasks, timestamp)| {
                    let base = bases[index];
                    let mut completed: Vec<(&RunTask, ValidationRun)> =
                        Vec::with_capacity(tasks.len());
                    for task in tasks {
                        let run_id = RunId(base.0 + task.index as u64);
                        let run_config = plan.config().run_config_for(task);
                        match self.system.execute_run_at(
                            &task.experiment,
                            task.image,
                            &run_config,
                            run_id,
                            timestamp,
                        ) {
                            Ok(run) => {
                                // In-lane reference promotion: the next run
                                // of the same experiment compares against
                                // exactly this state. Under `image_parallel`
                                // promotion moves to the repetition barrier
                                // instead — cells of one repetition all
                                // compare against the state frozen at the
                                // previous barrier, which is what lets them
                                // run in any order.
                                if !plan.config().options.image_parallel {
                                    ledger.promote(&run);
                                }
                                completed.push((task, run));
                                if let Some(hook) = progress {
                                    hook.tick(ProgressPoint::Task);
                                }
                            }
                            Err(error) => return (index, Err(error)),
                        }
                    }
                    (index, Ok(completed))
                },
            );

            // Collect per campaign: group this round's lane results. A
            // `None` is a skipped lane of a cancelled campaign — the
            // scheduler learns which one below, because a round
            // dispatches lanes only for live campaigns, so every lane of
            // a cancelled campaign comes back `None` together.
            let mut per_campaign: BTreeMap<usize, Vec<Option<LaneResult<'_>>>> = BTreeMap::new();
            for (index, lane_result) in results.into_iter().flatten() {
                per_campaign
                    .entry(index)
                    .or_default()
                    .push(Some(lane_result));
            }

            let mut still_active: Vec<usize> = Vec::new();
            for &index in &active {
                let state = &mut states[index];
                let expected_lanes = if state.cancelled || state.token.is_cancelled() {
                    0
                } else {
                    state.plan.lanes(state.next_repetition).len()
                };
                let lane_results = per_campaign.remove(&index).unwrap_or_default();
                let complete = lane_results.len() == expected_lanes
                    && !state.token.is_cancelled()
                    && !state.cancelled;
                if complete {
                    // Barrier: commit the repetition in task order as one
                    // batch (references were already promoted in-lane), and
                    // move the shared clock forward past this barrier.
                    let mut repetition_runs: Vec<(&RunTask, ValidationRun)> = Vec::new();
                    for lane in lane_results.into_iter().flatten() {
                        repetition_runs.extend(lane?);
                    }
                    repetition_runs.sort_by_key(|(task, _)| task.index);
                    for (task, run) in &repetition_runs {
                        state.aggregator.record(task, run);
                    }
                    if state.plan.config().options.image_parallel {
                        // Deferred promotion: applying the repetition's
                        // promotions here in task order reproduces exactly
                        // the reference state sequential execution leaves
                        // at this barrier — the snapshot the *next*
                        // repetition's cells will all compare against.
                        for (_, run) in &repetition_runs {
                            ledger.promote(run);
                        }
                    }
                    ledger.log_batch(repetition_runs.into_iter().map(|(_, run)| run).collect());
                    state.next_repetition += 1;
                    self.system.clock().advance_to(
                        origin + state.next_repetition as u64 * state.plan.config().interval_secs,
                    );
                    // Every repetition barrier is a liveness point: a
                    // campaign of N repetitions proves it is alive at
                    // least N times however long the repetitions take.
                    if let Some(hook) = self.progress {
                        hook.tick(ProgressPoint::Barrier);
                    }
                    if state.next_repetition < state.plan.repetitions() {
                        still_active.push(index);
                    } else {
                        self.campaigns_completed += 1;
                    }
                } else {
                    // Cancelled mid-round: the partial repetition is
                    // discarded — its runs were conserved in storage but
                    // never reach the ledger log, and any references its
                    // lanes promoted are rolled back to the checkpoint
                    // taken before dispatch.
                    if let Some(checkpoint) = checkpoints.remove(&index) {
                        for (experiment, reference_state) in checkpoint {
                            ledger.restore_reference_state(&experiment, reference_state);
                        }
                    }
                    state.cancelled = true;
                    self.campaigns_cancelled += 1;
                }
            }
            active = still_active;
            admit!();
        }

        // Campaigns never admitted... cannot happen (the loop drains the
        // waiting queue), but cancelled-before-start campaigns finalize
        // with whatever they completed: zero repetitions.
        Ok(states
            .into_iter()
            .enumerate()
            .map(|(index, state)| CampaignReport {
                ticket: CampaignTicket(index),
                completed_repetitions: state.next_repetition,
                cancelled: state.cancelled,
                summary: state.aggregator.finish(),
            })
            .collect())
    }
}

/// Matrix column label for an image: the configuration label plus the
/// installed ROOT version (the external-dependency coordinate of Figure 3).
fn column_label(image: &sp_env::VmImage) -> String {
    match image.spec.externals.get("root") {
        Some(root) => format!("{} root{}", image.label(), root.version),
        None => image.label(),
    }
}

/// Aggregates a run's results per process group.
fn aggregate_groups(run: &ValidationRun) -> BTreeMap<String, CellStatus> {
    let mut by_group: BTreeMap<String, Vec<&TestStatus>> = BTreeMap::new();
    for result in &run.results {
        by_group
            .entry(result.group.clone())
            .or_default()
            .push(&result.status);
    }
    by_group
        .into_iter()
        .map(|(group, statuses)| {
            let any_fail = statuses.iter().any(|s| matches!(s, TestStatus::Failed(_)));
            let all_skipped = statuses.iter().all(|s| matches!(s, TestStatus::Skipped(_)));
            let any_warn = statuses
                .iter()
                .any(|s| matches!(s, TestStatus::PassedWithWarnings(_)));
            let status = if all_skipped {
                CellStatus::NotRun
            } else if any_fail {
                CellStatus::Fail
            } else if any_warn {
                CellStatus::Warnings
            } else {
                CellStatus::Pass
            };
            (group, status)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::TestResult;
    use crate::test::{FailureKind, TestCategory, TestId};
    use sp_exec::JobId;

    fn result(group: &str, status: TestStatus) -> TestResult {
        TestResult {
            test: TestId::new(format!("{group}/t")),
            category: TestCategory::Compilation,
            group: group.into(),
            job: JobId(1),
            status,
            outputs: vec![],
            compare: None,
        }
    }

    #[test]
    fn group_aggregation_rules() {
        let run = ValidationRun {
            id: RunId(1),
            experiment: "e".into(),
            image_label: "img".into(),
            description: String::new(),
            timestamp: 0,
            results: vec![
                result("clean", TestStatus::Passed),
                result("warny", TestStatus::Passed),
                result("warny", TestStatus::PassedWithWarnings(2)),
                result("broken", TestStatus::Passed),
                result("broken", TestStatus::Failed(FailureKind::CompileError)),
                result("idle", TestStatus::Skipped("dep".into())),
            ],
        };
        let groups = aggregate_groups(&run);
        assert_eq!(groups["clean"], CellStatus::Pass);
        assert_eq!(groups["warny"], CellStatus::Warnings);
        assert_eq!(groups["broken"], CellStatus::Fail);
        assert_eq!(groups["idle"], CellStatus::NotRun);
    }

    #[test]
    fn glyphs() {
        assert_eq!(CellStatus::Pass.glyph(), "ok");
        assert_eq!(CellStatus::Fail.glyph(), "FAIL");
    }

    #[test]
    fn config_counts() {
        let config = CampaignConfig {
            experiments: vec!["h1".into(), "zeus".into()],
            images: vec![VmImageId(1), VmImageId(2), VmImageId(3)],
            repetitions: 5,
            run: RunConfig::default(),
            interval_secs: 86_400,
            options: CampaignOptions::default(),
        };
        assert_eq!(config.total_runs(), 30);
    }

    #[test]
    fn rows_deduplicate_in_key_order() {
        let mut cells: BTreeMap<(String, String, String), CellStatus> = BTreeMap::new();
        for image in ["a-img", "b-img"] {
            cells.insert(("h1".into(), "g1".into(), image.into()), CellStatus::Pass);
            cells.insert(("h1".into(), "g2".into(), image.into()), CellStatus::Fail);
            cells.insert(("zeus".into(), "g1".into(), image.into()), CellStatus::Pass);
        }
        let summary = CampaignSummary {
            runs: vec![],
            cells,
            image_labels: vec!["a-img".into(), "b-img".into()],
        };
        assert_eq!(
            summary.rows(),
            vec![
                ("h1".to_string(), "g1".to_string()),
                ("h1".to_string(), "g2".to_string()),
                ("zeus".to_string(), "g1".to_string()),
            ]
        );
    }

    #[test]
    fn plan_rejects_unknown_names_up_front() {
        let system = SpSystem::new();
        let image = system
            .register_image(sp_env::catalog::sl6_gcc44(sp_env::Version::two(5, 34)))
            .unwrap();
        let config = CampaignConfig {
            experiments: vec!["ghost".into()],
            images: vec![image],
            repetitions: 1,
            run: RunConfig::default(),
            interval_secs: 1,
            options: CampaignOptions::default(),
        };
        assert!(matches!(
            CampaignPlan::new(&system, config),
            Err(SystemError::UnknownExperiment(_))
        ));
        let config = CampaignConfig {
            experiments: vec![],
            images: vec![VmImageId(99)],
            repetitions: 1,
            run: RunConfig::default(),
            interval_secs: 1,
            options: CampaignOptions::default(),
        };
        assert!(matches!(
            CampaignPlan::new(&system, config),
            Err(SystemError::UnknownImage(VmImageId(99)))
        ));
    }

    #[test]
    fn plan_flattens_with_barriers_and_lanes() {
        let system = SpSystem::new();
        let img1 = system
            .register_image(sp_env::catalog::sl6_gcc44(sp_env::Version::two(5, 34)))
            .unwrap();
        let img2 = system
            .register_image(sp_env::catalog::sl5_gcc41(
                sp_env::Arch::I686,
                sp_env::Version::two(5, 34),
            ))
            .unwrap();
        system
            .register_experiment(sp_experiments_stub("alpha"))
            .unwrap();
        system
            .register_experiment(sp_experiments_stub("beta"))
            .unwrap();
        let config = CampaignConfig {
            experiments: vec!["beta".into(), "alpha".into()],
            images: vec![img1, img2],
            repetitions: 3,
            run: RunConfig::default(),
            interval_secs: 60,
            options: CampaignOptions::default(),
        };
        let plan = CampaignPlan::new(&system, config).unwrap();
        assert_eq!(plan.total_runs(), 12);
        assert_eq!(plan.repetitions(), 3);
        assert_eq!(plan.image_labels().len(), 2);
        // Indices are globally sequential and barrier slices are disjoint.
        for (i, task) in plan.tasks().iter().enumerate() {
            assert_eq!(task.index, i);
            assert_eq!(task.repetition, i / 4);
        }
        let rep1 = plan.repetition_tasks(1);
        assert_eq!(rep1.len(), 4);
        assert_eq!(rep1[0].index, 4);
        // Lanes: config order (beta first), task order inside each lane.
        let lanes = plan.lanes(1);
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0][0].experiment, "beta");
        assert_eq!(lanes[1][0].experiment, "alpha");
        assert!(lanes[0].windows(2).all(|w| w[0].index < w[1].index));
        assert!(plan.tasks()[0].description.contains("(pass 1)"));
    }

    #[test]
    fn scheduler_rejects_overlapping_campaigns() {
        let system = SpSystem::new();
        let image = system
            .register_image(sp_env::catalog::sl6_gcc44(sp_env::Version::two(5, 34)))
            .unwrap();
        system
            .register_experiment(sp_experiments_stub("alpha"))
            .unwrap();
        system
            .register_experiment(sp_experiments_stub("beta"))
            .unwrap();
        let config = |experiments: Vec<String>| CampaignConfig {
            experiments,
            images: vec![image],
            repetitions: 1,
            run: RunConfig::default(),
            interval_secs: 60,
            options: CampaignOptions::default(),
        };
        let mut scheduler = CampaignScheduler::new(&system, 2);
        let ticket = scheduler.submit(config(vec!["alpha".into()])).unwrap();
        assert_eq!(ticket.index(), 0);
        // Disjoint: fine.
        scheduler.submit(config(vec!["beta".into()])).unwrap();
        // Overlapping: rejected at submission, before anything runs.
        assert!(matches!(
            scheduler.submit(config(vec!["alpha".into()])),
            Err(SystemError::CampaignConflict(name)) if name == "alpha"
        ));
        assert_eq!(scheduler.stats().campaigns_submitted, 2);
    }

    #[test]
    fn scheduler_reserves_disjoint_run_id_ranges() {
        let system = SpSystem::new();
        let image = system
            .register_image(sp_env::catalog::sl6_gcc44(sp_env::Version::two(5, 34)))
            .unwrap();
        for name in ["alpha", "beta"] {
            system
                .register_experiment(sp_experiments_stub(name))
                .unwrap();
        }
        let config = |name: &str, repetitions: usize| CampaignConfig {
            experiments: vec![name.into()],
            images: vec![image],
            repetitions,
            run: RunConfig::default(),
            interval_secs: 60,
            options: CampaignOptions::default(),
        };
        let mut scheduler = CampaignScheduler::new(&system, 2);
        let first = scheduler.submit(config("alpha", 3)).unwrap();
        let second = scheduler.submit(config("beta", 2)).unwrap();
        let (a_lo, a_hi) = scheduler.reserved_run_ids(first).unwrap();
        let (b_lo, b_hi) = scheduler.reserved_run_ids(second).unwrap();
        assert_eq!(a_hi.0 - a_lo.0 + 1, 3);
        assert_eq!(b_hi.0 - b_lo.0 + 1, 2);
        assert!(a_hi.0 < b_lo.0, "ranges are disjoint and ordered");
    }

    #[test]
    fn cancelled_campaign_stops_without_touching_neighbours() {
        let system = SpSystem::new();
        let image = system
            .register_image(sp_env::catalog::sl6_gcc44(sp_env::Version::two(5, 34)))
            .unwrap();
        for name in ["alpha", "beta"] {
            system
                .register_experiment(sp_experiments_stub(name))
                .unwrap();
        }
        let config = |name: &str| CampaignConfig {
            experiments: vec![name.into()],
            images: vec![image],
            repetitions: 3,
            run: RunConfig::default(),
            interval_secs: 60,
            options: CampaignOptions::default(),
        };
        let mut scheduler = CampaignScheduler::new(&system, 2);
        let doomed = scheduler.submit(config("alpha")).unwrap();
        let live = scheduler.submit(config("beta")).unwrap();
        scheduler.cancel(doomed);
        let reports = scheduler.execute().unwrap();

        let doomed_report = &reports[doomed.index()];
        assert!(doomed_report.cancelled);
        assert_eq!(doomed_report.completed_repetitions, 0);
        assert!(doomed_report.summary.runs.is_empty());

        let live_report = &reports[live.index()];
        assert!(!live_report.cancelled);
        assert_eq!(live_report.completed_repetitions, 3);
        assert_eq!(live_report.summary.total_runs(), 3);

        let stats = scheduler.stats();
        assert_eq!(stats.campaigns_cancelled, 1);
        assert_eq!(stats.campaigns_completed, 1);
        // Only beta's runs reached the ledger.
        assert!(system
            .ledger()
            .runs()
            .iter()
            .all(|run| run.experiment == "beta"));
    }

    #[test]
    fn admission_limit_serialises_excess_campaigns() {
        let system = SpSystem::new();
        let image = system
            .register_image(sp_env::catalog::sl6_gcc44(sp_env::Version::two(5, 34)))
            .unwrap();
        for name in ["alpha", "beta", "gamma"] {
            system
                .register_experiment(sp_experiments_stub(name))
                .unwrap();
        }
        let config = |name: &str| CampaignConfig {
            experiments: vec![name.into()],
            images: vec![image],
            repetitions: 2,
            run: RunConfig::default(),
            interval_secs: 60,
            options: CampaignOptions::default(),
        };
        let mut scheduler = CampaignScheduler::new(&system, 2).with_admission_limit(1);
        for name in ["alpha", "beta", "gamma"] {
            scheduler.submit(config(name)).unwrap();
        }
        let reports = scheduler.execute().unwrap();
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert!(!report.cancelled);
            assert_eq!(report.completed_repetitions, 2);
            assert_eq!(report.summary.total_runs(), 2);
        }
        let stats = scheduler.stats();
        assert_eq!(stats.campaigns_admitted, 3);
        assert_eq!(stats.campaigns_completed, 3);
        // With one admission slot each campaign runs alone; the ledger
        // holds each campaign's range contiguously.
        let ids: Vec<u64> = system.ledger().runs().iter().map(|r| r.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "serialised campaigns commit in id order");
    }

    /// A minimal registrable experiment for plan-level tests.
    fn sp_experiments_stub(name: &str) -> crate::experiment::ExperimentDef {
        use crate::preservation::PreservationLevel;
        use crate::suite::TestSuite;
        use crate::test::{TestKind, ValidationTest};
        use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
        let graph = DependencyGraph::from_packages([Package::new(
            "core",
            sp_env::Version::new(1, 0, 0),
            PackageKind::Library,
        )])
        .unwrap();
        let mut suite = TestSuite::new(name, PreservationLevel::FullSoftware);
        suite
            .add(ValidationTest::new(
                format!("{name}/compile/core"),
                name,
                "compilation",
                TestKind::Compile {
                    package: PackageId::new("core"),
                },
            ))
            .unwrap();
        crate::experiment::ExperimentDef {
            name: name.into(),
            color: "blue",
            graph,
            suite,
            entry_points: vec![PackageId::new("core")],
        }
    }
}
