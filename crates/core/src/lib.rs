//! # sp-core — the sp-system validation framework
//!
//! The primary contribution of Ozerov & South (arXiv:1310.7814): "a generic
//! validation suite, which includes automated software build tools and data
//! validation, … to automatically test and validate the software and data of
//! an experiment against changes and upgrades to the environment, as well as
//! changes to the experiment software itself."
//!
//! * [`preservation`] — the DPHEP preservation levels (Table 1).
//! * [`inputs`] — the three input categories of Figure 1 and intervention
//!   routing.
//! * [`test`](mod@test) — the validation-test taxonomy (compilation, unit checks,
//!   standalone executables, full analysis chains).
//! * [`suite`] — experiment test suites and the Figure-2 breakdown.
//! * [`experiment`] — experiment definitions (packages + suite + chains).
//! * [`compare`] — the comparison engine: exit codes, yes/no, text,
//!   numeric tolerances, histogram χ²/KS.
//! * [`run`] — validation runs: unique ids, tags, timestamps, results.
//! * [`ledger`] — run bookkeeping over the common storage.
//! * [`regress`] — run-to-run regression analysis ("any differences
//!   compared to the last successful test are examined").
//! * [`classify`](mod@classify) — root-cause classification into the three input
//!   categories, with intervention routing.
//! * [`workflow`] — the four-phase life cycle (§3.1 i–iv), including the
//!   final freeze.
//! * [`system`] — [`SpSystem`]: images, clients, suites, run execution.
//! * [`campaign`] — multi-run campaigns (the >300 runs of §3.3), split
//!   into a planning phase ([`CampaignPlan`]) and two interchangeable
//!   executors: the sequential [`Campaign`] oracle and the sharded,
//!   work-stealing [`CampaignEngine`].
//! * [`fleet`] — the distributed deployment shape of §3.1: a
//!   [`Coordinator`] enqueues campaign plans onto the durable
//!   [`sp_store::WorkQueue`] (pre-carved run-id ranges, recorded
//!   origins), and [`Worker`] processes lease, execute and report them
//!   back, with crash recovery via lease expiry and fencing tokens.
//!
//! ## Example
//!
//! Comparing a new test output against its stored reference — the heart of
//! the validation loop ("any differences compared to the last successful
//! test are examined"):
//!
//! ```
//! use sp_core::{Comparator, TestOutput};
//!
//! let reference = TestOutput::Numbers(vec![("sigma_nc".into(), 1.234)]);
//! let new = TestOutput::Numbers(vec![("sigma_nc".into(), 1.234)]);
//! let comparator = Comparator::default_for(&reference);
//! assert!(comparator.compare(&new, &reference).passed());
//! ```

pub mod campaign;
pub mod classify;
pub mod compare;
pub mod experiment;
pub mod fleet;
pub mod inputs;
pub mod ledger;
pub mod preservation;
pub mod regress;
pub mod run;
pub mod suite;
pub mod system;
pub mod test;
mod warm;
pub mod workflow;

pub use campaign::{
    Campaign, CampaignConfig, CampaignEngine, CampaignOptions, CampaignPlan, CampaignReport,
    CampaignScheduler, CampaignSummary, CampaignTicket, CellStatus, RunRecord, RunTask,
    ScheduleStats,
};
pub use classify::{classify, Diagnosis};
pub use compare::{Comparator, CompareOutcome, TestOutput};
pub use experiment::ExperimentDef;
pub use fleet::{
    fleet_stats, run_log_cells, Coordinator, FleetError, FleetStats, FleetTicket, Worker,
    WorkerStats,
};
pub use inputs::{Assignee, InputCategory};
pub use ledger::{PruneReport, RunLedger};
pub use preservation::PreservationLevel;
pub use regress::{RegressionReport, Transition};
pub use run::{RunId, TestResult, TestStatus, ValidationRun};
pub use suite::{SuiteBreakdown, TestSuite};
pub use system::{
    ProductionRecipe, RunConfig, SpSystem, StorageVerification, SystemExportSummary,
    SystemImportSummary, WarmRestoreReport, WARM_STATE_FILE,
};
pub use test::{FailureKind, TestCategory, TestId, TestKind, ValidationTest};
pub use workflow::{MigrationManager, Phase};
