//! Multi-process fleet equivalence.
//!
//! The contract of the distributed queue (`sp_store::wq` +
//! `sp_core::fleet`): N independent workers — each with its **own**
//! `SpSystem`, sharing nothing but the queue directory — drain one
//! campaign backlog, and every campaign's report is byte-identical to the
//! solo single-process oracle, with each executing worker's ledger holding
//! exactly the campaign's pre-reserved run-id range in order. A worker
//! that dies mid-campaign loses its lease at expiry, the work is
//! re-leased under the next fencing generation, and the zombie can
//! neither publish nor corrupt the collected results.
//!
//! Workers here are threads *with fully isolated systems and their own
//! queue handles* — the same sharing surface as separate OS processes
//! (the `repro-fleet` binary exercises the real `fork`/`exec` shape).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
use sp_core::fleet::{self, Coordinator, Worker, WorkerStats};
use sp_core::{
    Campaign, CampaignConfig, CampaignOptions, ExperimentDef, PreservationLevel, RunConfig,
    SpSystem, TestKind, TestSuite, ValidationTest,
};
use sp_env::{catalog, Arch, CodeTrait, Version, VmImageId};
use sp_exec::ChainDef;
use sp_store::{TimeSource, WorkQueue, WqError};

/// A compact experiment (same construction as the campaign-equivalence
/// suite): compile + unit + standalone + a tiny MC chain, optionally with
/// a latent 64-bit bug so grids exercise comparison failures too.
fn experiment(name: &str, buggy: bool) -> ExperimentDef {
    let mut lib = Package::new("lib", Version::new(1, 2, 0), PackageKind::Library);
    if buggy {
        lib = lib.with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 6.0 });
    }
    let graph = DependencyGraph::from_packages([
        lib,
        Package::new("ana", Version::new(2, 0, 0), PackageKind::Analysis).dep("lib"),
    ])
    .unwrap();
    let mut suite = TestSuite::new(name, PreservationLevel::FullSoftware);
    for pkg in ["lib", "ana"] {
        suite
            .add(ValidationTest::new(
                format!("{name}/compile/{pkg}"),
                name,
                "compilation",
                TestKind::Compile {
                    package: PackageId::new(pkg),
                },
            ))
            .unwrap();
    }
    suite
        .add(ValidationTest::new(
            format!("{name}/unit/lib-0"),
            name,
            "unit checks",
            TestKind::UnitCheck {
                package: PackageId::new("lib"),
                check_index: 0,
            },
        ))
        .unwrap();
    let stage_packages: BTreeMap<String, PackageId> = [
        ("mcgen", "lib"),
        ("sim", "lib"),
        ("dst", "lib"),
        ("microdst", "lib"),
        ("analysis", "ana"),
        ("validation", "ana"),
    ]
    .into_iter()
    .map(|(stage, pkg)| (stage.to_string(), PackageId::new(pkg)))
    .collect();
    suite
        .add(ValidationTest::new(
            format!("{name}/chain/nc"),
            name,
            "MC chain",
            TestKind::Chain {
                chain: ChainDef::full_analysis_chain("nc"),
                stage_packages,
                events: 10,
            },
        ))
        .unwrap();
    ExperimentDef {
        name: name.into(),
        color: "blue",
        graph,
        suite,
        entry_points: vec![PackageId::new("ana")],
    }
}

const EXPERIMENTS: [(&str, bool); 3] = [("alpha", false), ("beta", true), ("gamma", false)];

/// A fresh, identically prepared system — what every process of the fleet
/// builds for itself from code (only *state* crosses processes).
fn fresh_system() -> (SpSystem, Vec<VmImageId>) {
    let system = SpSystem::new();
    let images = vec![
        system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap(),
        system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap(),
    ];
    for (name, buggy) in EXPERIMENTS {
        system.register_experiment(experiment(name, buggy)).unwrap();
    }
    (system, images)
}

fn subset<T: Clone>(pool: &[T], mask: usize) -> Vec<T> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect()
}

fn config_for(
    experiments: Vec<String>,
    images: Vec<VmImageId>,
    repetitions: usize,
    memoize: bool,
) -> CampaignConfig {
    CampaignConfig {
        experiments,
        images,
        repetitions,
        run: RunConfig {
            scale: 0.01,
            threads: 2,
            ..RunConfig::default()
        },
        interval_secs: 3_600,
        options: CampaignOptions {
            memoize,
            ..CampaignOptions::default()
        },
    }
}

fn temp_queue_dir(tag: &str) -> std::path::PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "sp-fleet-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::SeqCst)
    ))
}

proptest! {
    /// The headline acceptance property: for random experiment
    /// partitions, image subsets, repetition counts, fleet sizes and
    /// memoization, N isolated workers racing on one queue produce, for
    /// **every** campaign,
    ///
    /// * a report byte-identical to the solo sequential oracle, and
    /// * a ledger (on whichever worker executed it) holding exactly the
    ///   campaign's pre-reserved run-id range in ascending order,
    ///
    /// no matter how the leases interleave across workers.
    #[test]
    fn fleet_drained_reports_match_solo_oracles(
        assignment in prop::collection::vec(0usize..3, 3),
        img_masks in prop::collection::vec(1usize..4, 3),
        repetitions in prop::collection::vec(1usize..=2, 3),
        fleet_size in 1usize..=3,
        memoize in prop::bool::ANY,
    ) {
        let experiment_pool: Vec<String> =
            EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();
        let mut partitions: Vec<Vec<String>> = vec![Vec::new(); 3];
        for (experiment, &slot) in experiment_pool.iter().zip(&assignment) {
            partitions[slot].push(experiment.clone());
        }
        let campaigns: Vec<(Vec<String>, usize, usize)> = partitions
            .into_iter()
            .zip(img_masks)
            .zip(repetitions)
            .filter(|((experiments, _), _)| !experiments.is_empty())
            .map(|((experiments, img_mask), reps)| (experiments, img_mask, reps))
            .collect();
        prop_assume!(!campaigns.is_empty());

        let dir = temp_queue_dir("prop");
        let queue = WorkQueue::open(&dir, 3_600).expect("queue dir");

        // Coordinator: pre-carve ids, record origins, enqueue.
        let (coordinator_system, coordinator_images) = fresh_system();
        let origin = coordinator_system.clock().now();
        let mut coordinator = Coordinator::new(&coordinator_system, &queue);
        let mut submitted = Vec::new();
        for (experiments, img_mask, reps) in &campaigns {
            let images = subset(&coordinator_images, *img_mask);
            let config = config_for(experiments.clone(), images, *reps, memoize);
            let ticket = coordinator.submit(config).expect("disjoint submission");
            let range = coordinator.reserved_run_ids(ticket).expect("carved range");
            submitted.push((ticket, range));
        }

        // The fleet: isolated systems, own queue handles, racing drains.
        let dir_for_workers = dir.clone();
        let worker_ledgers: Vec<(WorkerStats, Vec<(u64, String)>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..fleet_size)
                    .map(|w| {
                        let dir = dir_for_workers.clone();
                        scope.spawn(move || {
                            let queue = WorkQueue::open(&dir, 3_600).expect("worker queue");
                            let (system, _) = fresh_system();
                            let worker =
                                Worker::new(&system, &queue, format!("w{w}"), 2).with_patience(400);
                            let stats = worker.drain();
                            let ids = system
                                .ledger()
                                .runs()
                                .iter()
                                .map(|run| (run.id.0, run.experiment.clone()))
                                .collect();
                            (stats, ids)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

        prop_assert!(coordinator.drained(), "the backlog must fully drain");
        let reports = coordinator.collect();
        prop_assert_eq!(reports.len(), campaigns.len());

        let drained_total: u64 = worker_ledgers
            .iter()
            .map(|(stats, _)| stats.campaigns_drained)
            .sum();
        prop_assert_eq!(drained_total as usize, campaigns.len());

        for (((experiments, img_mask, reps), (ticket, (first, last))), report) in
            campaigns.iter().zip(&submitted).zip(&reports)
        {
            let report = report.as_ref().expect("report published");
            prop_assert_eq!(report.ticket.index(), ticket.index());
            prop_assert!(!report.cancelled);
            prop_assert_eq!(report.completed_repetitions, *reps);

            // Solo oracle: fresh system, cursor pre-advanced to the
            // reserved base, same origin, strictly sequential execution.
            let (oracle_system, oracle_images) = fresh_system();
            prop_assert_eq!(oracle_system.clock().now(), origin);
            if first.0 > 1 {
                oracle_system.reserve_run_ids(first.0 - 1);
            }
            let images = subset(&oracle_images, *img_mask);
            let config = config_for(experiments.clone(), images, *reps, memoize);
            let oracle = Campaign::new(&oracle_system, config)
                .execute()
                .expect("oracle campaign");
            prop_assert_eq!(
                &report.summary,
                &oracle,
                "fleet report must be byte-identical to the solo oracle"
            );
            // Byte-identical holds literally on the wire too.
            prop_assert_eq!(
                fleet::encode_campaign_report(report),
                fleet::encode_campaign_report(&sp_core::CampaignReport {
                    ticket: report.ticket,
                    summary: oracle,
                    completed_repetitions: *reps,
                    cancelled: false,
                })
            );

            // Exactly one worker executed the campaign, and its ledger
            // holds exactly the reserved range in ascending order.
            let expected: Vec<u64> = (first.0..=last.0).collect();
            let holders: Vec<Vec<u64>> = worker_ledgers
                .iter()
                .map(|(_, ids)| {
                    ids.iter()
                        .filter(|(_, experiment)| experiments.contains(experiment))
                        .map(|(id, _)| *id)
                        .collect::<Vec<u64>>()
                })
                .filter(|ids| !ids.is_empty())
                .collect();
            prop_assert_eq!(holders.len(), 1, "one executor per campaign");
            prop_assert_eq!(
                &holders[0],
                &expected,
                "executor ledger must hold exactly the pre-reserved range in order"
            );
        }

        // The published fleet digest agrees with the per-thread stats.
        let digest = fleet::fleet_stats(&queue);
        prop_assert_eq!(digest.queue.submissions, campaigns.len());
        prop_assert_eq!(digest.queue.completed, campaigns.len());
        prop_assert_eq!(digest.drained.campaigns_drained, drained_total);
        prop_assert_eq!(digest.queue.corrupt_dropped, 0);

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A settable clock shared by the queue handles of one test, standing in
/// for the wall clock all processes of a real fleet share.
struct SharedClock(AtomicU64);

impl TimeSource for SharedClock {
    fn now_secs(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Crash recovery: a worker leases a campaign and dies without ever
/// publishing. After lease expiry a second worker re-leases the work
/// under the next fencing generation and completes it; the report is
/// byte-identical to the solo oracle, and the zombie's late commit is
/// rejected by the fencing token.
#[test]
fn crashed_worker_is_reclaimed_and_fenced() {
    let dir = temp_queue_dir("crash");
    let clock = Arc::new(SharedClock(AtomicU64::new(10_000)));
    let queue = WorkQueue::open_with_time(&dir, 60, clock.clone()).expect("queue dir");

    let (coordinator_system, images) = fresh_system();
    let origin = coordinator_system.clock().now();
    let mut coordinator = Coordinator::new(&coordinator_system, &queue);
    let config = config_for(
        vec!["alpha".into(), "beta".into()],
        images.clone(),
        2,
        false,
    );
    let ticket = coordinator.submit(config).expect("submission");
    let (first, last) = coordinator.reserved_run_ids(ticket).unwrap();

    // Worker 1 leases the campaign and crashes mid-flight: no heartbeat,
    // no publish, no release.
    let doomed_lease = queue
        .try_lease(ticket.seq(), "doomed")
        .expect("queue io")
        .expect("claimable");
    assert!(
        queue.lease_next("survivor").expect("queue io").is_none(),
        "a live lease blocks re-claiming"
    );

    // The lease runs out (boundary-inclusive: dead at exactly expires_at).
    clock.0.fetch_add(60, Ordering::SeqCst);

    // Worker 2 drains the backlog on its own isolated system.
    let (survivor_system, _) = fresh_system();
    let survivor = Worker::new(&survivor_system, &queue, "survivor", 2).with_patience(50);
    let stats = survivor.drain();
    assert_eq!(stats.campaigns_drained, 1);
    assert!(queue.drained());
    assert_eq!(queue.stats().reclaims, 1, "generation 2 re-leased the work");

    // The zombie's stale commit bounces off the fencing token.
    match queue.publish_report(&doomed_lease, b"stale") {
        Err(WqError::StaleLease { held, current, .. }) => {
            assert_eq!(held, 1);
            assert_eq!(current, 2);
        }
        other => panic!("stale commit must be fenced, got {other:?}"),
    }

    // The collected report equals the solo oracle.
    let report = coordinator.collect().remove(0).expect("report published");
    assert!(!report.cancelled);
    let (oracle_system, oracle_images) = fresh_system();
    assert_eq!(oracle_system.clock().now(), origin);
    oracle_system.reserve_run_ids(first.0 - 1);
    let oracle = Campaign::new(
        &oracle_system,
        config_for(vec!["alpha".into(), "beta".into()], oracle_images, 2, false),
    )
    .execute()
    .expect("oracle campaign");
    assert_eq!(
        report.summary, oracle,
        "the re-leased campaign reports exactly what the oracle does"
    );

    // The survivor's ledger holds exactly the reserved range in order.
    let ids: Vec<u64> = survivor_system
        .ledger()
        .runs()
        .iter()
        .map(|run| run.id.0)
        .collect();
    assert_eq!(ids, (first.0..=last.0).collect::<Vec<u64>>());

    std::fs::remove_dir_all(&dir).ok();
}

/// A clock that advances itself by `step` seconds on **every read** — a
/// deterministic stand-in for wall time passing while a worker executes,
/// without the test having to race a background thread against the drain.
struct AutoClock {
    value: AtomicU64,
    step: AtomicU64,
}

impl AutoClock {
    fn frozen(start: u64) -> Arc<Self> {
        Arc::new(AutoClock {
            value: AtomicU64::new(start),
            step: AtomicU64::new(0),
        })
    }

    fn set_step(&self, step: u64) {
        self.step.store(step, Ordering::SeqCst);
    }
}

impl TimeSource for AutoClock {
    fn now_secs(&self) -> u64 {
        self.value
            .fetch_add(self.step.load(Ordering::SeqCst), Ordering::SeqCst)
    }
}

/// The double-count regression: a worker fenced out mid-campaign rolls
/// its local absorption back and counts **nothing**; when the *same*
/// worker re-leases its own fenced submission under the next generation
/// and completes it, the ledger holds the reserved range exactly once and
/// `runs_executed` equals the campaign total exactly — each (submission,
/// published generation) is counted at most once.
#[test]
fn fenced_mid_flight_execution_rolls_back_and_re_lease_counts_once() {
    let dir = temp_queue_dir("fence");
    let clock = AutoClock::frozen(10_000);
    let queue = WorkQueue::open_with_time(&dir, 60, clock.clone()).expect("queue dir");

    let (coordinator_system, images) = fresh_system();
    let origin = coordinator_system.clock().now();
    let mut coordinator = Coordinator::new(&coordinator_system, &queue);
    let config = config_for(vec!["alpha".into(), "gamma".into()], images, 2, false);
    let ticket = coordinator.submit(config).expect("submission");
    let (first, last) = coordinator.reserved_run_ids(ticket).unwrap();

    let (system, _) = fresh_system();
    let worker = Worker::new(&system, &queue, "w0", 2).with_patience(50);
    let mut stats = WorkerStats::default();

    // Wall time leaps past the whole lease on every clock read: the first
    // renewal attempt finds the lease expired, records the fencing error,
    // cancels the campaign, and `drain_one` rolls the absorption back.
    clock.set_step(61);
    let fenced = worker.drain_one(&mut stats);
    assert!(
        fenced.is_err(),
        "mid-flight expiry must surface as an error"
    );
    assert_eq!(stats.failures, 1);
    assert_eq!(stats.campaigns_drained, 0);
    assert_eq!(
        stats.runs_executed, 0,
        "fenced-away runs are rolled back, never counted"
    );
    assert!(
        system.ledger().runs().is_empty(),
        "rollback leaves no trace in the local ledger"
    );
    assert!(coordinator.collect()[0].is_none(), "nothing was published");

    // Time freezes again; the same worker re-leases its own fenced
    // submission — indistinguishable from leasing a stranger's — and
    // completes it under generation 2.
    clock.set_step(0);
    let drained = worker
        .drain_one(&mut stats)
        .expect("second attempt drains cleanly");
    assert_eq!(drained, Some(ticket.seq()));
    assert_eq!(stats.campaigns_drained, 1);
    assert_eq!(stats.failures, 1, "only the fenced attempt failed");
    assert_eq!(
        queue.stats().reclaims,
        1,
        "generation 2 re-leased the fenced work"
    );

    let report = coordinator.collect().remove(0).expect("report published");
    assert!(!report.cancelled);
    assert_eq!(
        stats.runs_executed,
        report.summary.total_runs() as u64,
        "each (submission, published generation) counts exactly once"
    );

    // The ledger holds the reserved range exactly once, in order.
    let ids: Vec<u64> = system.ledger().runs().iter().map(|run| run.id.0).collect();
    assert_eq!(ids, (first.0..=last.0).collect::<Vec<u64>>());

    // And the published report is byte-identical to the solo oracle.
    let (oracle_system, oracle_images) = fresh_system();
    assert_eq!(oracle_system.clock().now(), origin);
    if first.0 > 1 {
        oracle_system.reserve_run_ids(first.0 - 1);
    }
    let oracle = Campaign::new(
        &oracle_system,
        config_for(
            vec!["alpha".into(), "gamma".into()],
            oracle_images,
            2,
            false,
        ),
    )
    .execute()
    .expect("oracle campaign");
    assert_eq!(
        report.summary, oracle,
        "a fenced-then-redone campaign reports exactly what the oracle does"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The slow-worker liveness property: a campaign whose wall time dwarfs
/// `lease_secs` completes on the first lease because the progress hook
/// renews it mid-flight — no expiry, no reclaim, no redone repetitions,
/// and the report is still byte-identical to the solo oracle.
#[test]
fn slow_worker_renews_through_the_barrier_and_is_never_reclaimed() {
    let dir = temp_queue_dir("slow");
    // Every clock read moves wall time 100 s; the lease lasts 1 000 s.
    // A campaign ticks the hook dozens of times, so its wall time spans
    // many lease durations — only the half-life renewal cadence (renew
    // once remaining <= 500 s, i.e. every ~5 reads) keeps it alive.
    let clock = AutoClock::frozen(50_000);
    clock.set_step(100);
    let queue = WorkQueue::open_with_time(&dir, 1_000, clock).expect("queue dir");

    let (coordinator_system, images) = fresh_system();
    let origin = coordinator_system.clock().now();
    let mut coordinator = Coordinator::new(&coordinator_system, &queue);
    let config = config_for(vec!["alpha".into(), "beta".into()], images, 2, false);
    let ticket = coordinator.submit(config).expect("submission");
    let (first, last) = coordinator.reserved_run_ids(ticket).unwrap();

    let (system, _) = fresh_system();
    let worker = Worker::new(&system, &queue, "w0", 2)
        .with_patience(50)
        .with_slowdown(Duration::from_millis(1));
    let stats = worker.drain();

    assert_eq!(stats.campaigns_drained, 1);
    assert_eq!(stats.failures, 0);
    assert!(
        stats.renewals > 0,
        "the progress hook must have renewed mid-campaign"
    );
    let queue_stats = queue.stats();
    assert_eq!(queue_stats.reclaims, 0, "the lease never expired");
    assert_eq!(
        queue_stats.leases_issued, 1,
        "one lease carried the whole campaign — zero redone repetitions"
    );

    let report = coordinator.collect().remove(0).expect("report published");
    assert!(!report.cancelled);
    assert_eq!(stats.runs_executed, report.summary.total_runs() as u64);
    let ids: Vec<u64> = system.ledger().runs().iter().map(|run| run.id.0).collect();
    assert_eq!(ids, (first.0..=last.0).collect::<Vec<u64>>());

    let (oracle_system, oracle_images) = fresh_system();
    assert_eq!(oracle_system.clock().now(), origin);
    if first.0 > 1 {
        oracle_system.reserve_run_ids(first.0 - 1);
    }
    let oracle = Campaign::new(
        &oracle_system,
        config_for(vec!["alpha".into(), "beta".into()], oracle_images, 2, false),
    )
    .execute()
    .expect("oracle campaign");
    assert_eq!(
        report.summary, oracle,
        "renewal must not perturb what the campaign reports"
    );

    // The published fleet digest carries the renewal count.
    let digest = fleet::fleet_stats(&queue);
    assert_eq!(digest.drained.renewals, stats.renewals);
    assert_eq!(digest.queue.poisoned, 0);

    std::fs::remove_dir_all(&dir).ok();
}

/// Poison persistence: an undecodable (digest-valid, structurally
/// garbage) submission is poisoned **on the queue** by the first worker
/// that leases it, so a restarted worker — fresh process, no in-memory
/// caches — never burns a lease on it, and the backlog still terminates.
#[test]
fn undecodable_submission_is_poisoned_durably_across_restarts() {
    let dir = temp_queue_dir("poison");
    let queue = WorkQueue::open(&dir, 3_600).expect("queue dir");

    let (coordinator_system, images) = fresh_system();
    let mut coordinator = Coordinator::new(&coordinator_system, &queue);
    // A garbage payload behind a valid digest: the record reads back
    // fine, but no build of this code can decode it into a campaign.
    let garbage_seq = queue
        .submit(b"not a campaign config", 900, 4, 0)
        .expect("garbage submission");
    let intact = coordinator
        .submit(config_for(vec!["gamma".into()], images, 1, false))
        .expect("intact submission");

    let (first_system, _) = fresh_system();
    let first = Worker::new(&first_system, &queue, "w0", 2).with_patience(3);
    let stats = first.drain();
    assert_eq!(stats.campaigns_drained, 1, "the intact submission drains");
    assert!(stats.failures >= 1);
    assert!(
        queue.is_poisoned(garbage_seq),
        "the undecodable submission is poisoned on the queue, not just in memory"
    );
    let mark = queue.poison_mark(garbage_seq).expect("durable poison mark");
    assert_eq!(mark.seq, garbage_seq);
    assert_eq!(mark.holder, "w0");
    assert!(mark.reason.contains("undecodable"));
    assert_eq!(queue.stats().poisoned, 1);
    let leases_before = queue.stats().leases_issued;

    // A restarted worker: new queue handle, new system, empty caches —
    // the shape of a worker process rebooting. It must honour the poison
    // mark before leasing, drain nothing, and still terminate.
    let reopened = WorkQueue::open(&dir, 3_600).expect("reopen queue");
    let (second_system, _) = fresh_system();
    let second = Worker::new(&second_system, &reopened, "w1", 2).with_patience(3);
    let restarted = second.drain();
    assert_eq!(restarted.campaigns_drained, 0);
    assert_eq!(
        restarted.failures, 0,
        "poison is honoured before leasing, not re-diagnosed"
    );
    assert_eq!(
        queue.stats().leases_issued,
        leases_before,
        "no lease was ever burned on the poisoned submission again"
    );
    assert!(second_system.ledger().runs().is_empty());

    // Poison is terminal: the queue considers the backlog drained, and
    // the fleet digest makes the poisoned count operator-visible.
    assert!(queue.drained(), "poisoned work must not wedge the backlog");
    let digest = fleet::fleet_stats(&queue);
    assert_eq!(digest.queue.poisoned, 1);
    assert!(coordinator.collect()[intact.index()].is_some());

    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt queue file is dropped, never executed: flipping a byte of a
/// submission makes it invisible to workers (and counted), while intact
/// submissions still drain.
#[test]
fn corrupt_submission_is_never_leased() {
    let dir = temp_queue_dir("corrupt");
    let queue = WorkQueue::open(&dir, 3_600).expect("queue dir");

    let (coordinator_system, images) = fresh_system();
    let mut coordinator = Coordinator::new(&coordinator_system, &queue);
    let victim = coordinator
        .submit(config_for(vec!["alpha".into()], images.clone(), 1, false))
        .expect("first submission");
    let intact = coordinator
        .submit(config_for(vec!["gamma".into()], images, 1, false))
        .expect("second submission");

    // Bit-rot on the shared medium hits the first submission.
    let path = dir.join(format!("submissions/sub-{:08}.spwq", victim.seq()));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, bytes).unwrap();

    let (worker_system, _) = fresh_system();
    let worker = Worker::new(&worker_system, &queue, "w0", 2).with_patience(3);
    let stats = worker.drain();
    assert_eq!(
        stats.campaigns_drained, 1,
        "only the intact submission executes"
    );
    let reports = coordinator.collect();
    assert!(reports[victim.index()].is_none(), "corrupt work never ran");
    assert!(reports[intact.index()].is_some());
    assert!(queue.stats().corrupt_dropped > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A flaky disk — transient faults injected on a sizeable fraction of the
/// worker's queue operations — degrades to bounded retries and idle
/// polls, never to poisoned work, quarantined records or lost reports.
/// The coordinator (healthy handle on the shared medium) still collects
/// every report; only the worker's machine has the failing disk.
#[test]
fn flaky_disk_degrades_to_retries_not_poison() {
    use sp_store::{FaultConfig, FaultFs, StoreFs, SystemTimeSource};

    let dir = temp_queue_dir("flaky");
    let queue = WorkQueue::open(&dir, 3_600).expect("queue dir");
    let (coordinator_system, images) = fresh_system();
    let mut coordinator = Coordinator::new(&coordinator_system, &queue);
    let tickets = vec![
        coordinator
            .submit(config_for(vec!["alpha".into()], images.clone(), 2, false))
            .expect("submit alpha"),
        coordinator
            .submit(config_for(vec!["gamma".into()], vec![images[1]], 1, false))
            .expect("submit gamma"),
    ];

    // The worker's view of the same queue directory goes through the
    // fault layer. Opening itself may hit injected faults; a real worker
    // process would be restarted by its supervisor, modelled by retrying.
    let fault: Arc<FaultFs> = Arc::new(FaultFs::over_os(FaultConfig {
        seed: 20131029,
        io_fault_rate: 0.15,
        crash_at: None,
    }));
    let fault_fs: Arc<dyn StoreFs> = fault.clone();
    let worker_queue = (0..200)
        .find_map(|_| {
            WorkQueue::open_with(&dir, 3_600, Arc::new(SystemTimeSource), fault_fs.clone()).ok()
        })
        .expect("a flaky open eventually succeeds");

    let (worker_system, _) = fresh_system();
    let worker = Worker::new(&worker_system, &worker_queue, "w-flaky", 2).with_patience(60);
    let stats = worker.drain();

    // Every campaign drained to a trusted report despite the fault rate…
    assert_eq!(stats.campaigns_drained, 2, "flaky disk must still drain");
    let reports = coordinator.collect();
    for ticket in &tickets {
        assert!(
            reports[ticket.index()].is_some(),
            "report for submission {} lost to a transient fault",
            ticket.seq()
        );
    }
    assert!(queue.drained());

    // …and the degradation took the intended shape: retries, not verdicts.
    assert!(
        stats.io_retries > 0,
        "a 15% fault rate must exercise the retry policy"
    );
    let queue_stats = queue.stats();
    assert_eq!(
        queue_stats.poisoned, 0,
        "transient faults must never poison"
    );
    assert_eq!(
        queue_stats.quarantined, 0,
        "transient faults must never quarantine valid records"
    );
    std::fs::remove_dir_all(&dir).ok();
}
