//! Parallel-vs-sequential campaign equivalence.
//!
//! The contract of `CampaignEngine`: for any grid, any repetition count and
//! any worker count, the parallel engine must produce a `CampaignSummary`
//! **identical** to the sequential `Campaign` oracle — same run records
//! (ids, timestamps, counts), same cells, same ledger contents — and the
//! virtual clock must advance exactly once per repetition barrier.

use proptest::prelude::*;
use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
use sp_core::{
    Campaign, CampaignConfig, CampaignEngine, CampaignPlan, ExperimentDef, PreservationLevel,
    RunConfig, SpSystem, TestKind, TestSuite, ValidationTest,
};
use sp_env::{catalog, Arch, CodeTrait, Version, VmImageId};

/// A compact experiment: a clean library, an analysis on top, and (for the
/// "buggy" flavour) a latent 64-bit pointer bug that deviates on SL6 — so
/// random grids exercise both reference promotion and comparison failures.
fn experiment(name: &str, buggy: bool) -> ExperimentDef {
    let mut lib = Package::new("lib", Version::new(1, 2, 0), PackageKind::Library);
    if buggy {
        lib = lib.with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 6.0 });
    }
    let graph = DependencyGraph::from_packages([
        lib,
        Package::new("ana", Version::new(2, 0, 0), PackageKind::Analysis).dep("lib"),
    ])
    .unwrap();
    let mut suite = TestSuite::new(name, PreservationLevel::FullSoftware);
    for pkg in ["lib", "ana"] {
        suite
            .add(ValidationTest::new(
                format!("{name}/compile/{pkg}"),
                name,
                "compilation",
                TestKind::Compile {
                    package: PackageId::new(pkg),
                },
            ))
            .unwrap();
    }
    suite
        .add(ValidationTest::new(
            format!("{name}/unit/lib-0"),
            name,
            "unit checks",
            TestKind::UnitCheck {
                package: PackageId::new("lib"),
                check_index: 0,
            },
        ))
        .unwrap();
    suite
        .add(ValidationTest::new(
            format!("{name}/standalone/ana"),
            name,
            "analysis",
            TestKind::Standalone {
                package: PackageId::new("ana"),
                events: 10,
            },
        ))
        .unwrap();
    ExperimentDef {
        name: name.into(),
        color: "blue",
        graph,
        suite,
        entry_points: vec![PackageId::new("ana")],
    }
}

const EXPERIMENTS: [(&str, bool); 3] = [("alpha", false), ("beta", true), ("gamma", false)];

/// Builds a fresh system with all three experiments and three images
/// (32-bit SL5 reference, 64-bit SL5, 64-bit SL6) registered.
fn fresh_system() -> (SpSystem, Vec<VmImageId>) {
    let system = SpSystem::new();
    let images = vec![
        system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap(),
        system
            .register_image(catalog::sl5_gcc44(Arch::X86_64, Version::two(5, 34)))
            .unwrap(),
        system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap(),
    ];
    for (name, buggy) in EXPERIMENTS {
        system.register_experiment(experiment(name, buggy)).unwrap();
    }
    (system, images)
}

/// Decodes a non-empty bitmask into the selected subset.
fn subset<T: Clone>(pool: &[T], mask: usize) -> Vec<T> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect()
}

fn config_for(
    experiments: Vec<String>,
    images: Vec<VmImageId>,
    repetitions: usize,
) -> CampaignConfig {
    CampaignConfig {
        experiments,
        images,
        repetitions,
        run: RunConfig {
            scale: 0.01,
            threads: 2,
            ..RunConfig::default()
        },
        interval_secs: 3_600,
    }
}

proptest! {
    /// The headline property: identical `CampaignSummary` (runs, cells,
    /// image labels), identical run counts and identical reference state,
    /// for random grids and worker counts.
    #[test]
    fn engine_matches_sequential_oracle(
        exp_mask in 1usize..8,
        img_mask in 1usize..8,
        repetitions in 1usize..=2,
        workers in 1usize..=4,
    ) {
        let experiment_pool: Vec<String> =
            EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();

        let (seq_system, seq_images) = fresh_system();
        let (par_system, par_images) = fresh_system();
        prop_assert_eq!(&seq_images, &par_images);

        let experiments = subset(&experiment_pool, exp_mask);
        let images = subset(&seq_images, img_mask);

        let sequential = Campaign::new(
            &seq_system,
            config_for(experiments.clone(), images.clone(), repetitions),
        )
        .execute()
        .expect("sequential campaign");

        let engine = CampaignEngine::plan(
            &par_system,
            config_for(experiments, images, repetitions),
            workers,
        )
        .expect("plan over registered names");
        let parallel = engine.execute().expect("parallel campaign");

        prop_assert_eq!(&parallel, &sequential, "summaries must be byte-identical");
        prop_assert_eq!(parallel.total_runs(), sequential.total_runs());
        prop_assert_eq!(
            par_system.ledger().run_count(),
            seq_system.ledger().run_count()
        );
        // The recorded run logs agree id-for-id and digest-for-digest.
        let seq_runs = seq_system.ledger().runs();
        let par_runs = par_system.ledger().runs();
        for (s, p) in seq_runs.iter().zip(&par_runs) {
            prop_assert_eq!(s.id, p.id);
            prop_assert_eq!(&s.experiment, &p.experiment);
            prop_assert_eq!(s.timestamp, p.timestamp);
            prop_assert_eq!(s.digest(), p.digest(), "run outcomes must match");
        }
        // Reference state converged identically: one more single-pass
        // campaign on each system must again agree cell-for-cell.
        for (name, _) in EXPERIMENTS {
            prop_assert_eq!(
                seq_system.ledger().has_reference(name),
                par_system.ledger().has_reference(name)
            );
        }
    }
}

/// Repetition barriers: the virtual clock advances exactly `repetitions`
/// times, by `interval_secs` each, under both executors — regardless of
/// worker count.
#[test]
fn barriers_advance_clock_once_per_repetition() {
    for workers in [1, 3] {
        let (system, images) = fresh_system();
        let start = system.clock().now();
        let repetitions = 4;
        let interval = 86_400;
        let mut config = config_for(
            vec!["alpha".into(), "gamma".into()],
            vec![images[0]],
            repetitions,
        );
        config.interval_secs = interval;
        let engine = CampaignEngine::plan(&system, config, workers).unwrap();
        let summary = engine.execute().unwrap();
        assert_eq!(
            system.clock().now(),
            start + repetitions as u64 * interval,
            "clock must tick exactly once per pass ({workers} workers)"
        );
        // Every run of pass `r` carries the pass-r timestamp.
        for (i, record) in summary.runs.iter().enumerate() {
            let pass = i / 2; // 2 experiments × 1 image per pass
            assert_eq!(record.timestamp, start + pass as u64 * interval);
        }
    }

    // The sequential oracle has the same barrier semantics.
    let (system, images) = fresh_system();
    let start = system.clock().now();
    let config = config_for(vec!["alpha".into()], vec![images[0]], 3);
    Campaign::new(&system, config).execute().unwrap();
    assert_eq!(system.clock().now(), start + 3 * 3_600);
}

/// Unknown ids are rejected while planning — before anything executes.
#[test]
fn planning_surfaces_unknown_image_before_running() {
    let (system, images) = fresh_system();
    let mut config = config_for(vec!["alpha".into()], images, 1);
    config.images.push(VmImageId(99));
    let runs_before = system.ledger().run_count();
    let error = CampaignPlan::new(&system, config).unwrap_err();
    assert!(matches!(
        error,
        sp_core::system::SystemError::UnknownImage(VmImageId(99))
    ));
    assert_eq!(
        system.ledger().run_count(),
        runs_before,
        "no run may have executed"
    );
}
