//! Parallel-vs-sequential campaign equivalence.
//!
//! The contract of `CampaignEngine`: for any grid, any repetition count and
//! any worker count, the parallel engine must produce a `CampaignSummary`
//! **identical** to the sequential `Campaign` oracle — same run records
//! (ids, timestamps, counts), same cells, same ledger contents — and the
//! virtual clock must advance exactly once per repetition barrier.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
use sp_core::{
    Campaign, CampaignConfig, CampaignEngine, CampaignOptions, CampaignPlan, CampaignScheduler,
    ExperimentDef, PreservationLevel, RunConfig, SpSystem, TestKind, TestSuite, ValidationTest,
};
use sp_env::{catalog, Arch, CodeTrait, Version, VmImageId};
use sp_exec::ChainDef;

/// A compact experiment: a clean library, an analysis on top, a tiny MC
/// chain, and (for the "buggy" flavour) a latent 64-bit pointer bug that
/// deviates on SL6 — so random grids exercise reference promotion,
/// comparison failures and chain memoisation alike.
fn experiment(name: &str, buggy: bool) -> ExperimentDef {
    let mut lib = Package::new("lib", Version::new(1, 2, 0), PackageKind::Library);
    if buggy {
        lib = lib.with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 6.0 });
    }
    let graph = DependencyGraph::from_packages([
        lib,
        Package::new("ana", Version::new(2, 0, 0), PackageKind::Analysis).dep("lib"),
    ])
    .unwrap();
    let mut suite = TestSuite::new(name, PreservationLevel::FullSoftware);
    for pkg in ["lib", "ana"] {
        suite
            .add(ValidationTest::new(
                format!("{name}/compile/{pkg}"),
                name,
                "compilation",
                TestKind::Compile {
                    package: PackageId::new(pkg),
                },
            ))
            .unwrap();
    }
    suite
        .add(ValidationTest::new(
            format!("{name}/unit/lib-0"),
            name,
            "unit checks",
            TestKind::UnitCheck {
                package: PackageId::new("lib"),
                check_index: 0,
            },
        ))
        .unwrap();
    suite
        .add(ValidationTest::new(
            format!("{name}/standalone/ana"),
            name,
            "analysis",
            TestKind::Standalone {
                package: PackageId::new("ana"),
                events: 10,
            },
        ))
        .unwrap();
    let stage_packages: BTreeMap<String, PackageId> = [
        ("mcgen", "lib"),
        ("sim", "lib"),
        ("dst", "lib"),
        ("microdst", "lib"),
        ("analysis", "ana"),
        ("validation", "ana"),
    ]
    .into_iter()
    .map(|(stage, pkg)| (stage.to_string(), PackageId::new(pkg)))
    .collect();
    suite
        .add(ValidationTest::new(
            format!("{name}/chain/nc"),
            name,
            "MC chain",
            TestKind::Chain {
                chain: ChainDef::full_analysis_chain("nc"),
                stage_packages,
                events: 10,
            },
        ))
        .unwrap();
    ExperimentDef {
        name: name.into(),
        color: "blue",
        graph,
        suite,
        entry_points: vec![PackageId::new("ana")],
    }
}

const EXPERIMENTS: [(&str, bool); 3] = [("alpha", false), ("beta", true), ("gamma", false)];

/// Builds a fresh system with all three experiments and three images
/// (32-bit SL5 reference, 64-bit SL5, 64-bit SL6) registered.
fn fresh_system() -> (SpSystem, Vec<VmImageId>) {
    let system = SpSystem::new();
    let images = vec![
        system
            .register_image(catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)))
            .unwrap(),
        system
            .register_image(catalog::sl5_gcc44(Arch::X86_64, Version::two(5, 34)))
            .unwrap(),
        system
            .register_image(catalog::sl6_gcc44(Version::two(5, 34)))
            .unwrap(),
    ];
    for (name, buggy) in EXPERIMENTS {
        system.register_experiment(experiment(name, buggy)).unwrap();
    }
    (system, images)
}

/// Decodes a non-empty bitmask into the selected subset.
fn subset<T: Clone>(pool: &[T], mask: usize) -> Vec<T> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect()
}

fn config_for(
    experiments: Vec<String>,
    images: Vec<VmImageId>,
    repetitions: usize,
) -> CampaignConfig {
    CampaignConfig {
        experiments,
        images,
        repetitions,
        run: RunConfig {
            scale: 0.01,
            threads: 2,
            ..RunConfig::default()
        },
        interval_secs: 3_600,
        options: CampaignOptions::default(),
    }
}

proptest! {
    /// The headline property: identical `CampaignSummary` (runs, cells,
    /// image labels), identical run counts and identical reference state,
    /// for random grids and worker counts.
    #[test]
    fn engine_matches_sequential_oracle(
        exp_mask in 1usize..8,
        img_mask in 1usize..8,
        repetitions in 1usize..=2,
        workers in 1usize..=4,
    ) {
        let experiment_pool: Vec<String> =
            EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();

        let (seq_system, seq_images) = fresh_system();
        let (par_system, par_images) = fresh_system();
        prop_assert_eq!(&seq_images, &par_images);

        let experiments = subset(&experiment_pool, exp_mask);
        let images = subset(&seq_images, img_mask);

        let sequential = Campaign::new(
            &seq_system,
            config_for(experiments.clone(), images.clone(), repetitions),
        )
        .execute()
        .expect("sequential campaign");

        let engine = CampaignEngine::plan(
            &par_system,
            config_for(experiments, images, repetitions),
            workers,
        )
        .expect("plan over registered names");
        let parallel = engine.execute().expect("parallel campaign");

        prop_assert_eq!(&parallel, &sequential, "summaries must be byte-identical");
        prop_assert_eq!(parallel.total_runs(), sequential.total_runs());
        prop_assert_eq!(
            par_system.ledger().run_count(),
            seq_system.ledger().run_count()
        );
        // The recorded run logs agree id-for-id and digest-for-digest.
        let seq_runs = seq_system.ledger().runs();
        let par_runs = par_system.ledger().runs();
        for (s, p) in seq_runs.iter().zip(&par_runs) {
            prop_assert_eq!(s.id, p.id);
            prop_assert_eq!(&s.experiment, &p.experiment);
            prop_assert_eq!(s.timestamp, p.timestamp);
            prop_assert_eq!(s.digest(), p.digest(), "run outcomes must match");
        }
        // Reference state converged identically: one more single-pass
        // campaign on each system must again agree cell-for-cell.
        for (name, _) in EXPERIMENTS {
            prop_assert_eq!(
                seq_system.ledger().has_reference(name),
                par_system.ledger().has_reference(name)
            );
        }
    }
}

proptest! {
    /// Memoization transparency: for random grids, worker counts and
    /// repetition counts ≥ 2 (so the memo actually serves repeated cells),
    /// a memoized campaign produces a `CampaignSummary` and run-log
    /// digests byte-identical to the uncached path. Comparisons against
    /// the evolving reference are recomputed on replay, which is exactly
    /// what this property checks.
    #[test]
    fn memoized_campaign_matches_uncached(
        exp_mask in 1usize..8,
        img_mask in 1usize..8,
        repetitions in 2usize..=3,
        workers in 1usize..=4,
    ) {
        let experiment_pool: Vec<String> =
            EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();

        let (plain_system, plain_images) = fresh_system();
        let (memo_system, memo_images) = fresh_system();
        prop_assert_eq!(&plain_images, &memo_images);

        let experiments = subset(&experiment_pool, exp_mask);
        let images = subset(&plain_images, img_mask);

        let uncached = Campaign::new(
            &plain_system,
            config_for(experiments.clone(), images.clone(), repetitions),
        )
        .execute()
        .expect("uncached campaign");

        let mut memo_config = config_for(experiments, images, repetitions);
        memo_config.options = CampaignOptions::memoized();
        let memoized = CampaignEngine::plan(&memo_system, memo_config, workers)
            .expect("plan over registered names")
            .execute()
            .expect("memoized campaign");

        prop_assert_eq!(&memoized, &uncached, "summaries must be byte-identical");
        let plain_runs = plain_system.ledger().runs();
        let memo_runs = memo_system.ledger().runs();
        prop_assert_eq!(plain_runs.len(), memo_runs.len());
        for (p, m) in plain_runs.iter().zip(&memo_runs) {
            prop_assert_eq!(p.id, m.id);
            prop_assert_eq!(p.digest(), m.digest(), "run outcomes must match");
        }
        // Repetitions beyond the first replay every cell: both memos must
        // have served hits, or the test is vacuous.
        let output_stats = memo_system.output_memo_stats();
        prop_assert!(
            output_stats.hits > 0,
            "output memo never hit on a repeated grid: {output_stats:?}"
        );
        let chain_stats = memo_system.chain_memo_stats();
        prop_assert!(
            chain_stats.hits > 0,
            "chain memo never hit on a repeated grid: {chain_stats:?}"
        );
    }
}

proptest! {
    /// The multi-campaign headline property: N experiment-disjoint
    /// campaigns run **concurrently** through the `CampaignScheduler`
    /// against one shared system, for random experiment partitions, image
    /// subsets, repetition counts, worker counts, admission limits and
    /// memoization. For every campaign:
    ///
    /// * its `CampaignSummary` is **byte-identical** to the sequential
    ///   `Campaign` oracle executing the same config alone on a fresh,
    ///   identically prepared system (run-id cursor pre-advanced to the
    ///   campaign's reserved base);
    /// * the shared ledger holds exactly the campaign's pre-reserved
    ///   run-id range, in ascending order — no cross-campaign
    ///   interleaving inside any campaign's sequence and no foreign ids.
    #[test]
    fn concurrent_campaigns_match_sequential_oracles(
        assignment in prop::collection::vec(0usize..3, 3),
        img_masks in prop::collection::vec(1usize..8, 3),
        repetitions in prop::collection::vec(1usize..=2, 3),
        workers in 1usize..=4,
        admission_limit in 1usize..=3,
        memoize in prop::bool::ANY,
    ) {
        let experiment_pool: Vec<String> =
            EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();

        // Partition the experiments into up to three disjoint campaigns.
        let mut partitions: Vec<Vec<String>> = vec![Vec::new(); 3];
        for (experiment, &slot) in experiment_pool.iter().zip(&assignment) {
            partitions[slot].push(experiment.clone());
        }
        let campaigns: Vec<(Vec<String>, usize, usize)> = partitions
            .into_iter()
            .zip(img_masks)
            .zip(repetitions)
            .filter(|((experiments, _), _)| !experiments.is_empty())
            .map(|((experiments, img_mask), reps)| (experiments, img_mask, reps))
            .collect();
        prop_assume!(!campaigns.is_empty());

        let (shared_system, shared_images) = fresh_system();
        let origin = shared_system.clock().now();

        let mut scheduler =
            CampaignScheduler::new(&shared_system, workers).with_admission_limit(admission_limit);
        let mut submitted = Vec::new();
        for (experiments, img_mask, reps) in &campaigns {
            let images = subset(&shared_images, *img_mask);
            let mut config = config_for(experiments.clone(), images, *reps);
            config.options = CampaignOptions { memoize, ..CampaignOptions::default() };
            let ticket = scheduler.submit(config).expect("disjoint submission");
            let range = scheduler.reserved_run_ids(ticket).expect("reserved range");
            submitted.push((ticket, range));
        }
        let reports = scheduler.execute().expect("scheduled batch");
        prop_assert_eq!(reports.len(), campaigns.len());

        for (((experiments, img_mask, reps), (ticket, (first, last))), report) in
            campaigns.iter().zip(&submitted).zip(&reports)
        {
            prop_assert_eq!(report.ticket, *ticket);
            prop_assert!(!report.cancelled);
            prop_assert_eq!(report.completed_repetitions, *reps);

            // The sequential oracle: a fresh, identically prepared system
            // whose run-id cursor starts at this campaign's reserved base
            // and whose clock starts at the shared origin.
            let (oracle_system, oracle_images) = fresh_system();
            prop_assert_eq!(oracle_system.clock().now(), origin);
            if first.0 > 1 {
                oracle_system.reserve_run_ids(first.0 - 1);
            }
            let images = subset(&oracle_images, *img_mask);
            let mut config = config_for(experiments.clone(), images, *reps);
            config.options = CampaignOptions { memoize, ..CampaignOptions::default() };
            let oracle = Campaign::new(&oracle_system, config)
                .execute()
                .expect("oracle campaign");
            prop_assert_eq!(
                &report.summary,
                &oracle,
                "campaign summary must be byte-identical to its solo oracle"
            );

            // Ledger: exactly the reserved range, ascending, no foreign
            // interleaving within the campaign's sequence.
            let campaign_ids: Vec<u64> = shared_system
                .ledger()
                .runs()
                .iter()
                .filter(|run| experiments.contains(&run.experiment))
                .map(|run| run.id.0)
                .collect();
            let expected: Vec<u64> = (first.0..=last.0).collect();
            prop_assert_eq!(
                campaign_ids,
                expected,
                "ledger must hold exactly the pre-reserved range in order"
            );
        }

        // Nothing else reached the ledger.
        let total: usize = reports.iter().map(|r| r.summary.total_runs()).sum();
        prop_assert_eq!(shared_system.ledger().run_count(), total);
    }
}

proptest! {
    /// Flag-off byte identity: with `image_parallel` explicitly **off**
    /// (the default), the parallel engine stays the byte-identity twin of
    /// the sequential oracle for random grids, worker counts and
    /// memoisation — the flag's existence must not perturb the default
    /// path in any way.
    #[test]
    fn flag_off_engine_stays_byte_identical(
        exp_mask in 1usize..8,
        img_mask in 1usize..8,
        repetitions in 1usize..=2,
        workers in 1usize..=4,
        memoize in prop::bool::ANY,
    ) {
        let experiment_pool: Vec<String> =
            EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();

        let (seq_system, seq_images) = fresh_system();
        let (par_system, par_images) = fresh_system();
        prop_assert_eq!(&seq_images, &par_images);

        let experiments = subset(&experiment_pool, exp_mask);
        let images = subset(&seq_images, img_mask);

        let sequential = Campaign::new(
            &seq_system,
            config_for(experiments.clone(), images.clone(), repetitions),
        )
        .execute()
        .expect("sequential campaign");

        let mut config = config_for(experiments, images, repetitions);
        config.options = CampaignOptions {
            memoize,
            image_parallel: false,
        };
        let parallel = CampaignEngine::plan(&par_system, config, workers)
            .expect("plan over registered names")
            .execute()
            .expect("parallel campaign");

        prop_assert_eq!(&parallel, &sequential, "flag-off must stay byte-identical");
        let seq_runs = seq_system.ledger().runs();
        let par_runs = par_system.ledger().runs();
        prop_assert_eq!(seq_runs.len(), par_runs.len());
        for (s, p) in seq_runs.iter().zip(&par_runs) {
            prop_assert_eq!(s.id, p.id);
            prop_assert_eq!(s.digest(), p.digest(), "run outcomes must match");
        }
        for (name, _) in EXPERIMENTS {
            prop_assert_eq!(
                seq_system.ledger().reference_state(name),
                par_system.ledger().reference_state(name),
                "reference maps must agree"
            );
        }
    }
}

proptest! {
    /// Image-axis parallelism on conserved workloads: once every
    /// (experiment, image) cell has a bootstrap reference (one priming
    /// pass on each system), a campaign over **conserved** experiments
    /// (no latent deviation, so every promotion re-writes the same bytes)
    /// produces, under `image_parallel`, a report that agrees with the
    /// flag-off sequential oracle — the reference snapshot frozen at the
    /// previous barrier carries the same bytes as the in-lane chased
    /// state, so deferring promotion to the barrier is observationally
    /// free. Post-campaign reference state must also be identical (the
    /// barrier applies promotions in task order).
    #[test]
    fn image_parallel_agrees_on_conserved_workloads(
        exp_mask in 1usize..4,
        img_mask in 1usize..8,
        repetitions in 1usize..=2,
        workers in 1usize..=4,
    ) {
        // Only the conserved experiments: `beta` carries a latent 64-bit
        // bug that deviates on SL6, which makes promoted bytes depend on
        // promotion *timing* — exactly the non-conserved regime the flag
        // documents as out of scope.
        let conserved: Vec<String> = vec!["alpha".into(), "gamma".into()];

        let (seq_system, seq_images) = fresh_system();
        let (par_system, par_images) = fresh_system();
        prop_assert_eq!(&seq_images, &par_images);

        let experiments = subset(&conserved, exp_mask);
        let images = subset(&seq_images, img_mask);

        // Prime both systems identically: one sequential pass gives every
        // cell a reference, so no later cell runs referenceless.
        for system in [&seq_system, &par_system] {
            Campaign::new(system, config_for(experiments.clone(), images.clone(), 1))
                .execute()
                .expect("priming pass");
        }
        prop_assert_eq!(seq_system.clock().now(), par_system.clock().now());

        let sequential = Campaign::new(
            &seq_system,
            config_for(experiments.clone(), images.clone(), repetitions),
        )
        .execute()
        .expect("sequential campaign");

        let mut config = config_for(experiments.clone(), images, repetitions);
        config.options = CampaignOptions::image_parallel();
        let parallel = CampaignEngine::plan(&par_system, config, workers)
            .expect("plan over registered names")
            .execute()
            .expect("image-parallel campaign");

        prop_assert_eq!(
            &parallel,
            &sequential,
            "conserved workloads: snapshot state == chased state"
        );
        let seq_runs = seq_system.ledger().runs();
        let par_runs = par_system.ledger().runs();
        prop_assert_eq!(seq_runs.len(), par_runs.len());
        for (s, p) in seq_runs.iter().zip(&par_runs) {
            prop_assert_eq!(s.id, p.id);
            prop_assert_eq!(s.digest(), p.digest(), "run outcomes must match");
        }
        for name in &experiments {
            prop_assert_eq!(
                seq_system.ledger().reference_state(name),
                par_system.ledger().reference_state(name),
                "post-barrier reference state must be identical"
            );
        }
    }
}

/// Deterministic memo accounting: on an N-repetition single-cell campaign
/// the first pass misses and every later pass is served from the memo,
/// with the summary identical to the uncached twin system.
#[test]
fn memo_serves_repeated_cells_and_counts_hits() {
    let repetitions = 4;
    let (memo_system, images) = fresh_system();
    let (plain_system, _) = fresh_system();
    let mut config = config_for(vec!["alpha".into()], vec![images[0]], repetitions);
    config.options = CampaignOptions::memoized();
    let memoized = CampaignEngine::plan(&memo_system, config, 2)
        .unwrap()
        .execute()
        .unwrap();

    let plain_config = config_for(vec!["alpha".into()], vec![images[0]], repetitions);
    let uncached = Campaign::new(&plain_system, plain_config)
        .execute()
        .unwrap();
    assert_eq!(memoized, uncached);

    // One unit check + one standalone test per run: 2 memoisable outputs.
    let stats = memo_system.output_memo_stats();
    assert_eq!(stats.misses, 2, "first pass misses each output cell once");
    assert_eq!(
        stats.hits,
        2 * (repetitions as u64 - 1),
        "every later pass serves both cells from the memo"
    );
    // One chain test per run: first pass executes, the rest replay.
    let chain_stats = memo_system.chain_memo_stats();
    assert_eq!(chain_stats.misses, 1);
    assert_eq!(chain_stats.hits, repetitions as u64 - 1);
    // The uncached twin never touched its memos.
    let plain_stats = plain_system.output_memo_stats();
    assert_eq!((plain_stats.hits, plain_stats.misses), (0, 0));
}

/// Repetition barriers: the virtual clock advances exactly `repetitions`
/// times, by `interval_secs` each, under both executors — regardless of
/// worker count.
#[test]
fn barriers_advance_clock_once_per_repetition() {
    for workers in [1, 3] {
        let (system, images) = fresh_system();
        let start = system.clock().now();
        let repetitions = 4;
        let interval = 86_400;
        let mut config = config_for(
            vec!["alpha".into(), "gamma".into()],
            vec![images[0]],
            repetitions,
        );
        config.interval_secs = interval;
        let engine = CampaignEngine::plan(&system, config, workers).unwrap();
        let summary = engine.execute().unwrap();
        assert_eq!(
            system.clock().now(),
            start + repetitions as u64 * interval,
            "clock must tick exactly once per pass ({workers} workers)"
        );
        // Every run of pass `r` carries the pass-r timestamp.
        for (i, record) in summary.runs.iter().enumerate() {
            let pass = i / 2; // 2 experiments × 1 image per pass
            assert_eq!(record.timestamp, start + pass as u64 * interval);
        }
    }

    // The sequential oracle has the same barrier semantics.
    let (system, images) = fresh_system();
    let start = system.clock().now();
    let config = config_for(vec!["alpha".into()], vec![images[0]], 3);
    Campaign::new(&system, config).execute().unwrap();
    assert_eq!(system.clock().now(), start + 3 * 3_600);
}

/// Unknown ids are rejected while planning — before anything executes.
#[test]
fn planning_surfaces_unknown_image_before_running() {
    let (system, images) = fresh_system();
    let mut config = config_for(vec!["alpha".into()], images, 1);
    config.images.push(VmImageId(99));
    let runs_before = system.ledger().run_count();
    let error = CampaignPlan::new(&system, config).unwrap_err();
    assert!(matches!(
        error,
        sp_core::system::SystemError::UnknownImage(VmImageId(99))
    ));
    assert_eq!(
        system.ledger().run_count(),
        runs_before,
        "no run may have executed"
    );
}
