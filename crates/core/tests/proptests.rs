//! Property-based tests for the validation framework's comparison engine
//! and bookkeeping.

use proptest::prelude::*;
use sp_core::{Comparator, CompareOutcome, TestOutput};

fn numbers_strategy() -> impl Strategy<Value = Vec<(String, f64)>> {
    prop::collection::vec(("[a-z]{1,8}", -1e6f64..1e6), 0..8)
}

fn output_strategy() -> impl Strategy<Value = TestOutput> {
    prop_oneof![
        any::<bool>().prop_map(TestOutput::YesNo),
        any::<i32>().prop_map(TestOutput::ExitCode),
        "[ -~]{0,120}".prop_map(TestOutput::Text),
        numbers_strategy().prop_map(TestOutput::Numbers),
    ]
}

proptest! {
    /// Every output flavour round-trips through its byte encoding.
    #[test]
    fn output_round_trip(output in output_strategy()) {
        let bytes = output.to_bytes();
        prop_assert_eq!(TestOutput::from_bytes(&bytes), Some(output));
    }

    /// Comparing any output against itself passes with every applicable
    /// comparator (reflexivity).
    #[test]
    fn comparison_is_reflexive(output in output_strategy()) {
        let comparator = Comparator::default_for(&output);
        let outcome = comparator.compare(&output, &output);
        prop_assert_eq!(outcome, CompareOutcome::Identical);
    }

    /// Exact comparison agrees with equality.
    #[test]
    fn exact_matches_equality(a in output_strategy(), b in output_strategy()) {
        let outcome = Comparator::Exact.compare(&a, &b);
        prop_assert_eq!(outcome.passed(), a == b);
    }

    /// Numeric tolerance is monotone: if values pass at tolerance t, they
    /// pass at any larger tolerance.
    #[test]
    fn numeric_tolerance_monotone(
        x in -1e3f64..1e3,
        delta in 0.0f64..10.0,
        tol_small in 1e-9f64..1e-3,
        factor in 1.0f64..1e6,
    ) {
        let a = TestOutput::Numbers(vec![("v".into(), x)]);
        let b = TestOutput::Numbers(vec![("v".into(), x + delta)]);
        let small = Comparator::Numeric { rel_tol: 0.0, abs_tol: tol_small };
        let large = Comparator::Numeric { rel_tol: 0.0, abs_tol: tol_small * factor };
        if small.compare(&a, &b).passed() {
            prop_assert!(large.compare(&a, &b).passed());
        }
    }

    /// Numeric comparison is symmetric in pass/fail.
    #[test]
    fn numeric_comparison_symmetric(
        a in numbers_strategy(),
        b in numbers_strategy(),
        tol in 1e-9f64..1.0,
    ) {
        let ca = TestOutput::Numbers(a);
        let cb = TestOutput::Numbers(b);
        let comparator = Comparator::Numeric { rel_tol: tol, abs_tol: tol };
        prop_assert_eq!(
            comparator.compare(&ca, &cb).passed(),
            comparator.compare(&cb, &ca).passed()
        );
    }

    /// Text comparison: appending an ignored line never turns a pass into
    /// a failure.
    #[test]
    fn text_ignored_lines_are_ignored(
        body in "[a-z\\n]{0,60}",
        stamp in "[0-9]{1,10}",
    ) {
        let comparator = Comparator::TextDiff {
            ignore_markers: vec!["timestamp".to_string()],
        };
        let a = TestOutput::Text(body.clone());
        // Append the ignored line without introducing a spurious empty line.
        let separator = if body.is_empty() || body.ends_with('\n') {
            ""
        } else {
            "\n"
        };
        let b = TestOutput::Text(format!("{body}{separator}timestamp: {stamp}"));
        prop_assert!(comparator.compare(&a, &b).passed());
    }

    /// Cross-flavour comparisons always fail (an output type change is a
    /// regression by definition).
    #[test]
    fn type_changes_fail(flag in any::<bool>(), code in any::<i32>()) {
        let yes_no = TestOutput::YesNo(flag);
        let exit = TestOutput::ExitCode(code);
        for comparator in [
            Comparator::Exact,
            Comparator::Numeric { rel_tol: 1.0, abs_tol: 1.0 },
        ] {
            prop_assert!(!comparator.compare(&yes_no, &exit).passed());
        }
    }

    /// from_bytes never panics on arbitrary input (robust decoder).
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = TestOutput::from_bytes(&bytes);
    }
}
