//! Preparation-phase consolidation.
//!
//! §3.1 (i): during preparation the software is consolidated and
//! "unnecessary external software dependencies" are removed before the
//! stack enters regular operation. [`consolidate`] audits a stack against
//! one environment and a set of entry points, reporting
//!
//! * externals installed in the environment that no (reachable) package
//!   needs — candidates for removal;
//! * externals a reachable package needs that the environment does not
//!   satisfy — blockers for operation;
//! * packages unreachable from the entry points — dead weight the
//!   preservation programme need not carry.
//!
//! An empty `entry_points` slice means "everything is an entry point" (no
//! reachability pruning), which is how the full HERA stacks are audited.

use std::collections::BTreeSet;

use sp_env::{CodeTrait, EnvironmentSpec};

use crate::graph::{DependencyGraph, PackageId};

/// Findings of one consolidation audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsolidationReport {
    /// Installed externals no reachable package requires.
    pub unnecessary_externals: Vec<String>,
    /// Externals required by reachable packages but missing (or installed
    /// at an unsatisfying version) in the environment.
    pub missing_externals: Vec<String>,
    /// Packages not reachable from the entry points.
    pub unreachable_packages: Vec<PackageId>,
}

impl ConsolidationReport {
    /// Whether the stack is consolidated for this environment.
    pub fn is_clean(&self) -> bool {
        self.unnecessary_externals.is_empty()
            && self.missing_externals.is_empty()
            && self.unreachable_packages.is_empty()
    }

    /// Human-readable problem lines, the currency of
    /// `MigrationManager::complete_preparation`.
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for ext in &self.unnecessary_externals {
            problems.push(format!("unnecessary external '{ext}' installed"));
        }
        for ext in &self.missing_externals {
            problems.push(format!("required external '{ext}' unsatisfied"));
        }
        for pkg in &self.unreachable_packages {
            problems.push(format!("package '{pkg}' unreachable from entry points"));
        }
        problems
    }
}

/// Audits `graph` against `env`, keeping only what `entry_points` (and
/// their dependency closures) need. See the module docs for the semantics.
pub fn consolidate(
    graph: &DependencyGraph,
    env: &EnvironmentSpec,
    entry_points: &[PackageId],
) -> ConsolidationReport {
    let reachable: BTreeSet<PackageId> = if entry_points.is_empty() {
        graph.ids().cloned().collect()
    } else {
        let mut set: BTreeSet<PackageId> = entry_points
            .iter()
            .filter(|id| graph.contains(id))
            .cloned()
            .collect();
        set.extend(graph.dependency_closure(entry_points));
        set
    };

    let unreachable_packages: Vec<PackageId> = graph
        .ids()
        .filter(|id| !reachable.contains(*id))
        .cloned()
        .collect();

    // Externals needed by the reachable stack, with satisfaction checks.
    let mut required: BTreeSet<&str> = BTreeSet::new();
    let mut missing: BTreeSet<String> = BTreeSet::new();
    for id in &reachable {
        let package = graph.get(id).expect("reachable ids exist");
        for code_trait in &package.traits {
            match code_trait {
                CodeTrait::RequiresExternal { name, req } => {
                    required.insert(name);
                    match env.externals.get(name) {
                        None => {
                            missing.insert(name.clone());
                        }
                        Some(installed) if !req.matches(installed.version) => {
                            missing.insert(name.clone());
                        }
                        Some(_) => {}
                    }
                }
                CodeTrait::UsesExternalApi { name, .. } => {
                    // Coding against an API implies needing the package;
                    // presence is what consolidation checks (API-level
                    // mismatches are a *compile* failure, not a missing
                    // installation).
                    required.insert(name);
                    if env.externals.get(name).is_none() {
                        missing.insert(name.clone());
                    }
                }
                _ => {}
            }
        }
    }

    let unnecessary_externals: Vec<String> = env
        .externals
        .iter()
        .map(|ext| ext.name.clone())
        .filter(|name| !required.contains(name.as_str()))
        .collect();

    ConsolidationReport {
        unnecessary_externals,
        missing_externals: missing.into_iter().collect(),
        unreachable_packages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Package, PackageKind};
    use sp_env::{catalog, Arch, Version, VersionReq};

    fn v1() -> Version {
        Version::new(1, 0, 0)
    }

    fn stack() -> DependencyGraph {
        DependencyGraph::from_packages([
            Package::new("base", v1(), PackageKind::Library),
            Package::new("gen", v1(), PackageKind::Generator)
                .dep("base")
                .with_trait(CodeTrait::RequiresExternal {
                    name: "cernlib".into(),
                    req: VersionReq::Any,
                }),
            Package::new("ana", v1(), PackageKind::Analysis)
                .dep("base")
                .with_trait(CodeTrait::RequiresExternal {
                    name: "root".into(),
                    req: VersionReq::AtLeast(Version::two(5, 26)),
                })
                .with_trait(CodeTrait::UsesExternalApi {
                    name: "root".into(),
                    api_level: 5,
                }),
            Package::new("fit", v1(), PackageKind::Analysis)
                .dep("ana")
                .with_trait(CodeTrait::RequiresExternal {
                    name: "gsl".into(),
                    req: VersionReq::AtLeast(Version::new(1, 10, 0)),
                }),
            Package::new("orphan", v1(), PackageKind::Tool),
        ])
        .unwrap()
    }

    #[test]
    fn full_stack_on_sl5_is_clean() {
        // SL5 installs root + cernlib + gsl; with no entry points the whole
        // stack counts, so everything is needed and nothing is unreachable.
        let env = catalog::sl5_gcc41(Arch::I686, Version::two(5, 34));
        let report = consolidate(&stack(), &env, &[]);
        assert!(report.is_clean(), "{report:?}");
        assert!(report.problems().is_empty());
    }

    #[test]
    fn entry_points_prune_unreachable_and_unneeded() {
        let env = catalog::sl5_gcc41(Arch::I686, Version::two(5, 34));
        // Only the fit analysis is preserved: gen (and its CERNLIB need)
        // drop out, orphan is unreachable, CERNLIB becomes unnecessary.
        let report = consolidate(&stack(), &env, &[PackageId::new("fit")]);
        assert_eq!(report.unnecessary_externals, vec!["cernlib".to_string()]);
        assert!(report.missing_externals.is_empty());
        assert_eq!(
            report.unreachable_packages,
            vec![PackageId::new("gen"), PackageId::new("orphan")]
        );
        assert!(!report.is_clean());
        assert_eq!(report.problems().len(), 3);
    }

    #[test]
    fn sl7_reports_the_missing_cernlib() {
        let env = catalog::sl7_gcc48(Version::two(5, 34));
        let report = consolidate(&stack(), &env, &[]);
        assert_eq!(report.missing_externals, vec!["cernlib".to_string()]);
        assert!(!report.is_clean());
    }

    #[test]
    fn version_requirement_mismatch_counts_as_missing() {
        // ROOT 5.24 predates the AtLeast(5.26) requirement of `ana`.
        let env = catalog::sl5_gcc41(Arch::I686, Version::two(5, 24));
        let report = consolidate(&stack(), &env, &[PackageId::new("ana")]);
        assert!(report.missing_externals.contains(&"root".to_string()));
    }
}
