//! The simulated automated build system.
//!
//! §3.1 (ii): "a regular, automated build of the experimental software is
//! performed, according to the current prescription of the working
//! environment". The [`BuildEngine`] performs that build for one stack on
//! one environment: every package is compiled in dependency order via the
//! deterministic compatibility relation ([`sp_env::check_compile`]), its
//! build log is captured, and successful builds deposit their binaries as
//! tar-balls in the common storage — "binaries conserved as tar-balls"
//! (Figure 2).
//!
//! Everything is a pure function of `(package, environment, dependency
//! statuses)`, which is what makes validation runs reproducible and
//! thread-count invisible.

use std::collections::BTreeMap;

use sp_env::{check_compile, CompileOutcome, EnvironmentSpec, Severity};
use sp_store::{fnv64, Archive, ArchiveEntry, ObjectId, SharedStorage, StorageArea};

use crate::graph::{DependencyGraph, GraphError, Package, PackageId};

/// Terminal status of one package build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildStatus {
    /// Clean build; artifact conserved.
    Built,
    /// Build succeeded with the given number of warnings; artifact
    /// conserved. Warnings matter: they are how latent bugs whisper before
    /// the data validation catches them shouting.
    BuiltWithWarnings(usize),
    /// Compilation failed; no artifact.
    Failed,
    /// Not attempted because the named dependency produced no artifact.
    SkippedDepFailed(PackageId),
}

impl BuildStatus {
    /// Whether this build produced a usable artifact.
    pub fn has_artifact(&self) -> bool {
        matches!(self, BuildStatus::Built | BuildStatus::BuiltWithWarnings(_))
    }
}

/// The record of one package build.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildRecord {
    /// The package.
    pub package: PackageId,
    /// Terminal status.
    pub status: BuildStatus,
    /// Captured compiler/linker log.
    pub log: String,
    /// Content address of the conserved tar-ball, when built.
    pub artifact: Option<ObjectId>,
}

/// The outcome of building one full stack on one environment.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildReport {
    /// Environment label the stack was built on.
    pub env_label: String,
    /// Topological order the build followed.
    pub order: Vec<PackageId>,
    /// Per-package records.
    pub records: BTreeMap<PackageId, BuildRecord>,
}

impl BuildReport {
    /// Whether every package produced an artifact.
    pub fn all_built(&self) -> bool {
        self.records.values().all(|r| r.status.has_artifact())
    }

    /// Number of packages that produced artifacts.
    pub fn built_count(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.status.has_artifact())
            .count()
    }

    /// Number of failed compilations (skips not included).
    pub fn failed_count(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.status == BuildStatus::Failed)
            .count()
    }

    /// Number of packages skipped over failed dependencies.
    pub fn skipped_count(&self) -> usize {
        self.records
            .values()
            .filter(|r| matches!(r.status, BuildStatus::SkippedDepFailed(_)))
            .count()
    }

    /// Total warning count across the stack.
    pub fn warning_count(&self) -> usize {
        self.records
            .values()
            .map(|r| match r.status {
                BuildStatus::BuiltWithWarnings(n) => n,
                _ => 0,
            })
            .sum()
    }

    /// `(package, artifact)` pairs for every conserved tar-ball, id order.
    pub fn artifacts(&self) -> impl Iterator<Item = (&PackageId, ObjectId)> {
        self.records
            .iter()
            .filter_map(|(id, r)| r.artifact.map(|a| (id, a)))
    }
}

/// The sequential build engine.
pub struct BuildEngine {
    storage: SharedStorage,
}

impl BuildEngine {
    /// Creates an engine depositing artifacts into `storage`.
    pub fn new(storage: SharedStorage) -> Self {
        BuildEngine { storage }
    }

    /// The storage artifacts are conserved in.
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// Builds the whole stack sequentially, in topological order.
    pub fn build_stack(
        &self,
        graph: &DependencyGraph,
        env: &EnvironmentSpec,
    ) -> Result<BuildReport, GraphError> {
        let order = graph.topo_order()?;
        let mut records: BTreeMap<PackageId, BuildRecord> = BTreeMap::new();
        for id in &order {
            let package = graph.get(id).expect("ordered ids exist");
            let record = self.build_package(package, env, &records);
            records.insert(id.clone(), record);
        }
        Ok(BuildReport {
            env_label: env.label(),
            order,
            records,
        })
    }

    /// Builds one package given the records of everything built before it.
    /// Pure in `(package, env, dependency statuses)`; dependency records
    /// must already be present (guaranteed by topological scheduling).
    pub fn build_package(
        &self,
        package: &Package,
        env: &EnvironmentSpec,
        prior: &BTreeMap<PackageId, BuildRecord>,
    ) -> BuildRecord {
        // A dependency without an artifact blocks the build. The first
        // blocked dependency in declaration order is named, so the verdict
        // is independent of scheduling.
        if let Some(dep) = package.deps.iter().find(|dep| {
            !prior
                .get(*dep)
                .map(|r| r.status.has_artifact())
                .unwrap_or(false)
        }) {
            return BuildRecord {
                package: package.id.clone(),
                status: BuildStatus::SkippedDepFailed(dep.clone()),
                log: format!(
                    "sp-build: skipping {} {}: required package '{dep}' has no artifact\n",
                    package.id, package.version
                ),
                artifact: None,
            };
        }

        let outcome = check_compile(&package.traits, env);
        let mut log = format!(
            "sp-build: {} {} [{}] on {}\n",
            package.id,
            package.version,
            package.language.label(),
            env.label()
        );
        for diagnostic in outcome.diagnostics() {
            log.push_str(&format!("{}: {diagnostic}\n", package.id));
        }

        match outcome {
            CompileOutcome::Failure(_) => {
                log.push_str(&format!("sp-build: {} FAILED\n", package.id));
                BuildRecord {
                    package: package.id.clone(),
                    status: BuildStatus::Failed,
                    log,
                    artifact: None,
                }
            }
            outcome => {
                let warnings = outcome
                    .diagnostics()
                    .iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .count();
                let artifact = self.conserve_tarball(package, env);
                log.push_str(&format!(
                    "sp-build: {} ok ({} warnings), tar-ball {}\n",
                    package.id,
                    warnings,
                    artifact.short()
                ));
                let status = if warnings == 0 {
                    BuildStatus::Built
                } else {
                    BuildStatus::BuiltWithWarnings(warnings)
                };
                BuildRecord {
                    package: package.id.clone(),
                    status,
                    log,
                    artifact: Some(artifact),
                }
            }
        }
    }

    /// Packs and conserves the package's simulated binaries. Content is a
    /// pure function of the package and environment, so identical builds
    /// deduplicate to identical content addresses — the property the
    /// reproducibility guarantees rest on.
    ///
    /// Conservation goes through the storage digest cache keyed by the
    /// package *revision* (identity, version, size and environment): a
    /// nightly campaign rebuilding an unchanged package neither re-packs
    /// nor re-hashes the tar-ball, it reuses the memoised content address.
    fn conserve_tarball(&self, package: &Package, env: &EnvironmentSpec) -> ObjectId {
        let revision = package_revision(package, env);
        self.storage.put_named_cached(
            StorageArea::Artifacts,
            &format!("{}/{}/{}", package.id, package.version, env.label()),
            &revision,
            || {
                let mut archive = Archive::new();
                let manifest = format!(
                    "package = {}\nversion = {}\nlanguage = {}\nkind = {}\nbuilt-for = {}\n",
                    package.id,
                    package.version,
                    package.language.label(),
                    package.kind.label(),
                    env.label(),
                );
                archive
                    .add(ArchiveEntry::file("MANIFEST", manifest.into_bytes()))
                    .expect("static path is legal");
                archive
                    .add(ArchiveEntry::executable(
                        format!("bin/{}", package.id),
                        synthetic_binary(package, env),
                    ))
                    .expect("derived path is legal");
                archive.pack()
            },
        )
    }
}

/// The digest-cache key of one package build: every determinant of the
/// conserved tar-ball bytes. Bumping a package version, resizing it, or
/// switching environment changes the revision and forces a real pack+hash.
fn package_revision(package: &Package, env: &EnvironmentSpec) -> String {
    format!(
        "{}@{}+{}+{}+{}kloc@{}",
        package.id,
        package.version,
        package.language.label(),
        package.kind.label(),
        package.kloc,
        env.label(),
    )
}

/// Deterministic pseudo-binary payload sized with the package (~32 bytes
/// per kLOC), keyed on package identity and environment.
fn synthetic_binary(package: &Package, env: &EnvironmentSpec) -> Vec<u8> {
    let mut state = fnv64(&format!(
        "{}/{}/{}",
        package.id,
        package.version,
        env.label()
    ));
    let len = 64 + (package.kloc as usize) * 32;
    let mut bytes = Vec::with_capacity(len);
    while bytes.len() < len {
        // splitmix64 stream.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        bytes.extend_from_slice(&z.to_le_bytes());
    }
    bytes.truncate(len);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Language, PackageKind};
    use sp_env::{catalog, Arch, CodeTrait, Version, VersionReq};

    fn v1() -> Version {
        Version::new(1, 0, 0)
    }

    fn stack() -> DependencyGraph {
        DependencyGraph::from_packages([
            Package::new("clean", v1(), PackageKind::Library).lang(Language::Fortran),
            Package::new("warny", v1(), PackageKind::Library)
                .with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 1.0 }),
            Package::new("rootish", v1(), PackageKind::Analysis)
                .dep("clean")
                .with_trait(CodeTrait::RequiresExternal {
                    name: "root".into(),
                    req: VersionReq::Any,
                })
                .with_trait(CodeTrait::UsesExternalApi {
                    name: "root".into(),
                    api_level: 5,
                }),
            Package::new("user", v1(), PackageKind::Tool).dep("rootish"),
        ])
        .unwrap()
    }

    #[test]
    fn clean_stack_fully_builds_and_conserves() {
        let storage = SharedStorage::new();
        let engine = BuildEngine::new(storage.clone());
        let env = catalog::sl5_gcc41(Arch::I686, Version::two(5, 34));
        let report = engine.build_stack(&stack(), &env).unwrap();
        assert!(report.all_built(), "{report:?}");
        assert_eq!(report.built_count(), 4);
        assert_eq!(report.warning_count(), 0);
        // Every artifact is resolvable in the common storage.
        for (_, artifact) in report.artifacts() {
            assert!(storage.content().contains(artifact));
        }
        assert_eq!(storage.list(StorageArea::Artifacts, "").len(), 4);
    }

    #[test]
    fn warnings_are_counted_not_fatal() {
        let engine = BuildEngine::new(SharedStorage::new());
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let report = engine.build_stack(&stack(), &env).unwrap();
        let warny = &report.records[&PackageId::new("warny")];
        assert_eq!(warny.status, BuildStatus::BuiltWithWarnings(1));
        assert!(warny.status.has_artifact());
        assert!(warny.log.contains("warning"));
    }

    #[test]
    fn failure_propagates_as_skip() {
        let engine = BuildEngine::new(SharedStorage::new());
        // ROOT 6 breaks the API-level-5 package; its dependent is skipped.
        let env = catalog::sl7_gcc48(Version::two(6, 2));
        let report = engine.build_stack(&stack(), &env).unwrap();
        assert_eq!(
            report.records[&PackageId::new("rootish")].status,
            BuildStatus::Failed
        );
        assert_eq!(
            report.records[&PackageId::new("user")].status,
            BuildStatus::SkippedDepFailed(PackageId::new("rootish"))
        );
        assert!(report.records[&PackageId::new("user")].artifact.is_none());
        assert_eq!(report.failed_count(), 1);
        assert_eq!(report.skipped_count(), 1);
        assert!(!report.all_built());
    }

    #[test]
    fn rebuilds_hit_the_digest_cache() {
        let storage = SharedStorage::new();
        let engine = BuildEngine::new(storage.clone());
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        engine.build_stack(&stack(), &env).unwrap();
        let after_first = storage.content().stats();
        let cache_after_first = storage.digest_cache().stats();
        assert_eq!(cache_after_first.hits, 0);
        assert_eq!(cache_after_first.misses, 4, "one per conserved package");

        let report = engine.build_stack(&stack(), &env).unwrap();
        assert!(report.all_built());
        let after_second = storage.content().stats();
        let cache_after_second = storage.digest_cache().stats();
        assert_eq!(
            cache_after_second.hits, 4,
            "unchanged artifacts not re-hashed"
        );
        assert_eq!(
            after_first.inserted + after_first.deduplicated,
            after_second.inserted + after_second.deduplicated,
            "no content-store put at all on the second build"
        );
        // A different environment is a different revision: cache misses.
        engine
            .build_stack(
                &stack(),
                &catalog::sl5_gcc41(Arch::I686, Version::two(5, 34)),
            )
            .unwrap();
        assert!(storage.digest_cache().stats().misses > 4);
    }

    #[test]
    fn identical_builds_share_content_addresses() {
        let storage = SharedStorage::new();
        let engine = BuildEngine::new(storage.clone());
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        let first = engine.build_stack(&stack(), &env).unwrap();
        let second = engine.build_stack(&stack(), &env).unwrap();
        assert_eq!(first, second, "builds are reproducible");
        // Different environment: different artifacts.
        let other = engine
            .build_stack(
                &stack(),
                &catalog::sl5_gcc44(Arch::X86_64, Version::two(5, 34)),
            )
            .unwrap();
        let a = first.records[&PackageId::new("clean")].artifact.unwrap();
        let b = other.records[&PackageId::new("clean")].artifact.unwrap();
        assert_ne!(a, b);
    }
}
