//! # sp-build — the automated software build tools of the sp-system
//!
//! Ozerov & South (arXiv:1310.7814) name "automated software build tools"
//! as a core piece of the validation framework: §3.1 (ii) performs "a
//! regular, automated build of the experimental software … according to the
//! current prescription of the working environment". This crate models that
//! build system:
//!
//! * [`graph`](mod@graph) — the package model ([`Package`], [`PackageId`],
//!   [`PackageKind`], [`Language`]) and the validated [`DependencyGraph`]
//!   (missing-dependency and cycle detection via [`GraphError`]).
//! * [`plan`] — [`BuildPlan`], the layered schedule extracted from a graph.
//! * [`engine`] — the sequential [`BuildEngine`]: deterministic simulated
//!   compilation driven by [`sp_env::check_compile`], captured build logs,
//!   and binaries conserved as tar-balls in the common storage
//!   ([`BuildReport`], [`BuildStatus`]).
//! * [`parallel`] — [`ParallelBuilder`], the layer-parallel driver whose
//!   output is bit-identical to the sequential engine for any thread count.
//! * [`incremental`] — [`incremental::ChangeSet`] and
//!   [`incremental::rebuild_set`]: exactly which packages a change forces
//!   to rebuild.
//! * [`prune`] — [`prune::consolidate`], the §3.1 (i) preparation-phase
//!   audit (unnecessary/missing externals, unreachable packages).
//!
//! ## Example
//!
//! ```
//! use sp_build::{BuildEngine, DependencyGraph, Package, PackageKind, ParallelBuilder};
//! use sp_env::{catalog, Version};
//! use sp_store::SharedStorage;
//!
//! let graph = DependencyGraph::from_packages([
//!     Package::new("libcore", Version::new(1, 0, 0), PackageKind::Library),
//!     Package::new("analysis", Version::new(2, 1, 0), PackageKind::Analysis).dep("libcore"),
//! ])
//! .unwrap();
//!
//! let env = catalog::sl6_gcc44(Version::two(5, 34));
//! let builder = ParallelBuilder::new(BuildEngine::new(SharedStorage::new()), 4);
//! let report = builder.build_stack(&graph, &env).unwrap();
//! assert!(report.all_built());
//! assert_eq!(report.built_count(), 2);
//! ```

pub mod engine;
pub mod graph;
pub mod incremental;
pub mod parallel;
pub mod plan;
pub mod prune;

pub use engine::{BuildEngine, BuildRecord, BuildReport, BuildStatus};
pub use graph::{DependencyGraph, GraphError, Language, Package, PackageId, PackageKind};
pub use parallel::ParallelBuilder;
pub use plan::BuildPlan;
