//! The package model and dependency graph.
//!
//! The sp-system's "automated software build tools" (§3.1 ii) operate over
//! an experiment's software stack: a set of [`Package`]s — each carrying a
//! version, an implementation [`Language`], a size and the [`CodeTrait`]s
//! that decide its fate on a given platform — connected by build-order
//! dependencies into a [`DependencyGraph`]. The graph is validated once at
//! registration (missing dependencies, cycles) so every later traversal can
//! assume a well-formed DAG.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sp_env::{CodeTrait, Version};

/// Unique package name within an experiment stack.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageId(String);

impl PackageId {
    /// Creates an id.
    pub fn new(name: impl Into<String>) -> Self {
        PackageId(name.into())
    }

    /// The name text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for PackageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PackageId {
    fn from(s: &str) -> Self {
        PackageId::new(s)
    }
}

impl From<String> for PackageId {
    fn from(s: String) -> Self {
        PackageId(s)
    }
}

/// Functional role of a package in the stack (the Figure-3 process groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PackageKind {
    /// A core library linked by the rest of the stack.
    Library,
    /// A Monte Carlo event generator.
    Generator,
    /// Detector simulation.
    Simulation,
    /// Event reconstruction / file production.
    Reconstruction,
    /// Physics analysis code.
    Analysis,
    /// Standalone tooling (displays, monitors, archivers).
    Tool,
}

impl PackageKind {
    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            PackageKind::Library => "library",
            PackageKind::Generator => "generator",
            PackageKind::Simulation => "simulation",
            PackageKind::Reconstruction => "reconstruction",
            PackageKind::Analysis => "analysis",
            PackageKind::Tool => "tool",
        }
    }
}

/// Implementation language of a package — HERA-era stacks mix Fortran, C
/// and (in the OO analysis layer) C++.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Language {
    /// FORTRAN 77 / Fortran 9x.
    Fortran,
    /// C.
    C,
    /// C++.
    Cxx,
}

impl Language {
    /// Compiler-style label.
    pub fn label(self) -> &'static str {
        match self {
            Language::Fortran => "fortran",
            Language::C => "c",
            Language::Cxx => "c++",
        }
    }
}

/// One software package of an experiment stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    /// Unique name.
    pub id: PackageId,
    /// Release version.
    pub version: Version,
    /// Functional role.
    pub kind: PackageKind,
    /// Implementation language.
    pub language: Language,
    /// Source size in kLOC (drives the simulated build cost).
    pub kloc: u32,
    /// Build-order dependencies (packages that must be built first).
    pub deps: Vec<PackageId>,
    /// Code traits deciding compile/runtime behaviour per environment.
    pub traits: Vec<CodeTrait>,
}

impl Package {
    /// Creates a package with no dependencies or traits.
    pub fn new(name: impl Into<PackageId>, version: Version, kind: PackageKind) -> Self {
        Package {
            id: name.into(),
            version,
            kind,
            language: Language::C,
            kloc: 10,
            deps: Vec::new(),
            traits: Vec::new(),
        }
    }

    /// Adds a dependency (builder style).
    pub fn dep(mut self, dep: impl Into<PackageId>) -> Self {
        self.deps.push(dep.into());
        self
    }

    /// Adds a code trait (builder style).
    pub fn with_trait(mut self, code_trait: CodeTrait) -> Self {
        self.traits.push(code_trait);
        self
    }

    /// Sets the implementation language (builder style).
    pub fn lang(mut self, language: Language) -> Self {
        self.language = language;
        self
    }

    /// Sets the source size in kLOC (builder style).
    pub fn size_kloc(mut self, kloc: u32) -> Self {
        self.kloc = kloc;
        self
    }

    /// Whether this package requires or codes against the named external.
    pub fn uses_external(&self, name: &str) -> bool {
        self.traits.iter().any(|t| match t {
            CodeTrait::RequiresExternal { name: n, .. }
            | CodeTrait::UsesExternalApi { name: n, .. } => n == name,
            _ => false,
        })
    }

    /// Names of every external this package requires or codes against.
    pub fn externals(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .traits
            .iter()
            .filter_map(|t| match t {
                CodeTrait::RequiresExternal { name, .. }
                | CodeTrait::UsesExternalApi { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

/// Why a dependency graph is not a well-formed DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A package id was added twice.
    Duplicate(PackageId),
    /// A package depends on a package that is not in the graph.
    MissingDependency {
        /// The depending package.
        package: PackageId,
        /// The absent dependency.
        dependency: PackageId,
    },
    /// The dependency relation contains a cycle (one witness listed in
    /// traversal order).
    Cycle(Vec<PackageId>),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Duplicate(id) => write!(f, "package '{id}' declared twice"),
            GraphError::MissingDependency {
                package,
                dependency,
            } => write!(f, "'{package}' depends on unknown package '{dependency}'"),
            GraphError::Cycle(path) => {
                write!(f, "dependency cycle: ")?;
                for (i, id) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{id}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// The dependency graph of an experiment's software stack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DependencyGraph {
    packages: BTreeMap<PackageId, Package>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Builds a graph from packages and validates it.
    pub fn from_packages(packages: impl IntoIterator<Item = Package>) -> Result<Self, GraphError> {
        let mut graph = DependencyGraph::new();
        for package in packages {
            graph.add(package)?;
        }
        graph.validate()?;
        Ok(graph)
    }

    /// Adds a package. Only uniqueness is checked here — dangling
    /// dependencies are legal until [`validate`](Self::validate), so stacks
    /// can be assembled in any order.
    pub fn add(&mut self, package: Package) -> Result<(), GraphError> {
        if self.packages.contains_key(&package.id) {
            return Err(GraphError::Duplicate(package.id));
        }
        self.packages.insert(package.id.clone(), package);
        Ok(())
    }

    /// Looks up a package.
    pub fn get(&self, id: &PackageId) -> Option<&Package> {
        self.packages.get(id)
    }

    /// Whether the package exists.
    pub fn contains(&self, id: &PackageId) -> bool {
        self.packages.contains_key(id)
    }

    /// All packages, in id order.
    pub fn packages(&self) -> impl Iterator<Item = &Package> {
        self.packages.values()
    }

    /// All package ids, in id order.
    pub fn ids(&self) -> impl Iterator<Item = &PackageId> {
        self.packages.keys()
    }

    /// Number of packages.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Checks that every dependency resolves and the graph is acyclic.
    /// A single ordering pass detects both error kinds.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.topo_order().map(|_| ())
    }

    /// A deterministic topological order: dependencies before dependents,
    /// ties broken by package id (Kahn's algorithm over a sorted frontier).
    pub fn topo_order(&self) -> Result<Vec<PackageId>, GraphError> {
        let mut in_degree: BTreeMap<&PackageId, usize> = BTreeMap::new();
        let mut dependents: BTreeMap<&PackageId, Vec<&PackageId>> = BTreeMap::new();
        for package in self.packages.values() {
            in_degree.entry(&package.id).or_insert(0);
            for dep in &package.deps {
                if !self.packages.contains_key(dep) {
                    return Err(GraphError::MissingDependency {
                        package: package.id.clone(),
                        dependency: dep.clone(),
                    });
                }
                *in_degree.entry(&package.id).or_insert(0) += 1;
                dependents.entry(dep).or_default().push(&package.id);
            }
        }

        let mut ready: BTreeSet<&PackageId> = in_degree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut order: Vec<PackageId> = Vec::with_capacity(self.packages.len());
        while let Some(next) = ready.iter().next().copied() {
            ready.remove(next);
            order.push(next.clone());
            for dependent in dependents.get(next).map(Vec::as_slice).unwrap_or(&[]) {
                let d = in_degree.get_mut(dependent).expect("counted above");
                *d -= 1;
                if *d == 0 {
                    ready.insert(dependent);
                }
            }
        }

        if order.len() == self.packages.len() {
            Ok(order)
        } else {
            // Everything not ordered sits on (or behind) a cycle; report the
            // smallest cycle witness found by walking unfinished packages.
            let unfinished: BTreeSet<&PackageId> = in_degree
                .iter()
                .filter(|(_, d)| **d > 0)
                .map(|(id, _)| *id)
                .collect();
            let start: &PackageId = unfinished.iter().next().expect("cycle exists");
            let mut path = vec![start.clone()];
            let mut seen: BTreeSet<&PackageId> = BTreeSet::new();
            let mut current: &PackageId = start;
            loop {
                seen.insert(current);
                let next = self.packages[current]
                    .deps
                    .iter()
                    .find(|d| unfinished.contains(d))
                    .expect("unfinished package has an unfinished dependency");
                path.push(next.clone());
                if seen.contains(next) {
                    // The walk may have started at a package that merely
                    // depends on the cycle; trim that lead-in so the
                    // witness names only packages actually on the cycle.
                    let first = path.iter().position(|p| p == next).expect("just revisited");
                    return Err(GraphError::Cycle(path.split_off(first)));
                }
                current = next;
            }
        }
    }

    /// The set of packages transitively depended on by `roots`, excluding
    /// the roots themselves, in id order. This is "what else must work for
    /// these packages to work" — the relation behind effective runtime
    /// traits and the preparation-phase consolidation.
    pub fn dependency_closure(&self, roots: &[PackageId]) -> Vec<PackageId> {
        self.closure_internal(roots, |pkg| pkg.deps.clone())
    }

    /// The set of packages that transitively depend on `roots`, excluding
    /// the roots themselves, in id order — the rebuild propagation relation.
    pub fn dependents_closure(&self, roots: &[PackageId]) -> Vec<PackageId> {
        let mut dependents: BTreeMap<&PackageId, Vec<PackageId>> = BTreeMap::new();
        for package in self.packages.values() {
            for dep in &package.deps {
                dependents.entry(dep).or_default().push(package.id.clone());
            }
        }
        self.closure_internal(roots, |pkg| {
            dependents.get(&pkg.id).cloned().unwrap_or_default()
        })
    }

    fn closure_internal(
        &self,
        roots: &[PackageId],
        neighbours: impl Fn(&Package) -> Vec<PackageId>,
    ) -> Vec<PackageId> {
        let mut seen: BTreeSet<PackageId> = BTreeSet::new();
        let mut queue: VecDeque<PackageId> = roots
            .iter()
            .filter(|r| self.packages.contains_key(*r))
            .cloned()
            .collect();
        while let Some(id) = queue.pop_front() {
            let Some(package) = self.packages.get(&id) else {
                continue;
            };
            for next in neighbours(package) {
                if self.packages.contains_key(&next) && seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        for root in roots {
            seen.remove(root);
        }
        seen.into_iter().collect()
    }

    /// Names of every external required anywhere in the given package set
    /// (all packages when `within` is `None`).
    pub fn required_externals(&self, within: Option<&BTreeSet<PackageId>>) -> BTreeSet<String> {
        self.packages
            .values()
            .filter(|p| within.is_none_or(|set| set.contains(&p.id)))
            .flat_map(|p| p.externals().into_iter().map(str::to_owned))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1() -> Version {
        Version::new(1, 0, 0)
    }

    fn diamond() -> DependencyGraph {
        DependencyGraph::from_packages([
            Package::new("base", v1(), PackageKind::Library),
            Package::new("left", v1(), PackageKind::Library).dep("base"),
            Package::new("right", v1(), PackageKind::Library).dep("base"),
            Package::new("top", v1(), PackageKind::Analysis)
                .dep("left")
                .dep("right"),
        ])
        .expect("diamond is a DAG")
    }

    #[test]
    fn duplicate_rejected() {
        let mut graph = DependencyGraph::new();
        graph
            .add(Package::new("a", v1(), PackageKind::Library))
            .unwrap();
        assert_eq!(
            graph.add(Package::new("a", v1(), PackageKind::Tool)),
            Err(GraphError::Duplicate(PackageId::new("a")))
        );
    }

    #[test]
    fn missing_dependency_caught_by_validate() {
        let mut graph = DependencyGraph::new();
        graph
            .add(Package::new("a", v1(), PackageKind::Library).dep("ghost"))
            .unwrap();
        assert!(matches!(
            graph.validate(),
            Err(GraphError::MissingDependency { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut graph = DependencyGraph::new();
        graph
            .add(Package::new("a", v1(), PackageKind::Library).dep("b"))
            .unwrap();
        graph
            .add(Package::new("b", v1(), PackageKind::Library).dep("c"))
            .unwrap();
        graph
            .add(Package::new("c", v1(), PackageKind::Library).dep("a"))
            .unwrap();
        let err = graph.validate().unwrap_err();
        let GraphError::Cycle(path) = err else {
            panic!("expected cycle, got {err:?}");
        };
        assert!(path.len() >= 3);
    }

    #[test]
    fn cycle_witness_excludes_lead_in_dependents() {
        // "0dep" sorts before the cycle members and merely depends on the
        // cycle; the witness must name only packages on the cycle itself.
        let mut graph = DependencyGraph::new();
        graph
            .add(Package::new("0dep", v1(), PackageKind::Library).dep("a"))
            .unwrap();
        graph
            .add(Package::new("a", v1(), PackageKind::Library).dep("b"))
            .unwrap();
        graph
            .add(Package::new("b", v1(), PackageKind::Library).dep("a"))
            .unwrap();
        let err = graph.validate().unwrap_err();
        let GraphError::Cycle(path) = err else {
            panic!("expected cycle, got {err:?}");
        };
        assert!(!path.contains(&PackageId::new("0dep")), "witness {path:?}");
        assert_eq!(path.first(), path.last(), "witness closes on itself");
    }

    #[test]
    fn self_cycle_detected() {
        let mut graph = DependencyGraph::new();
        graph
            .add(Package::new("a", v1(), PackageKind::Library).dep("a"))
            .unwrap();
        assert!(matches!(graph.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn topo_order_respects_every_edge() {
        let graph = diamond();
        let order = graph.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        let position: BTreeMap<&PackageId, usize> =
            order.iter().enumerate().map(|(i, id)| (id, i)).collect();
        for package in graph.packages() {
            for dep in &package.deps {
                assert!(
                    position[dep] < position[&package.id],
                    "{dep} must precede {}",
                    package.id
                );
            }
        }
    }

    #[test]
    fn topo_order_is_deterministic() {
        let graph = diamond();
        assert_eq!(graph.topo_order().unwrap(), graph.topo_order().unwrap());
        // Ties broken by id: base first, then left before right.
        assert_eq!(
            graph.topo_order().unwrap(),
            vec![
                PackageId::new("base"),
                PackageId::new("left"),
                PackageId::new("right"),
                PackageId::new("top"),
            ]
        );
    }

    #[test]
    fn dependency_closure_excludes_roots() {
        let graph = diamond();
        let closure = graph.dependency_closure(&[PackageId::new("top")]);
        assert_eq!(
            closure,
            vec![
                PackageId::new("base"),
                PackageId::new("left"),
                PackageId::new("right"),
            ]
        );
        assert!(graph
            .dependency_closure(&[PackageId::new("base")])
            .is_empty());
        assert!(graph
            .dependency_closure(&[PackageId::new("ghost")])
            .is_empty());
    }

    #[test]
    fn dependents_closure_is_the_reverse_relation() {
        let graph = diamond();
        let closure = graph.dependents_closure(&[PackageId::new("base")]);
        assert_eq!(
            closure,
            vec![
                PackageId::new("left"),
                PackageId::new("right"),
                PackageId::new("top"),
            ]
        );
        assert!(graph
            .dependents_closure(&[PackageId::new("top")])
            .is_empty());
    }

    #[test]
    fn externals_listed() {
        let pkg = Package::new("p", v1(), PackageKind::Analysis)
            .with_trait(CodeTrait::RequiresExternal {
                name: "root".into(),
                req: sp_env::VersionReq::Any,
            })
            .with_trait(CodeTrait::UsesExternalApi {
                name: "root".into(),
                api_level: 5,
            })
            .with_trait(CodeTrait::RequiresExternal {
                name: "gsl".into(),
                req: sp_env::VersionReq::Any,
            });
        assert!(pkg.uses_external("root"));
        assert!(pkg.uses_external("gsl"));
        assert!(!pkg.uses_external("cernlib"));
        assert_eq!(pkg.externals(), vec!["gsl", "root"]);
    }
}
