//! Layer-parallel stack builds.
//!
//! [`ParallelBuilder`] executes a [`BuildPlan`] layer by layer: within one
//! layer every package's dependencies are already recorded, so the layer's
//! builds run concurrently on scoped worker threads. Because each package
//! build is a pure function of `(package, environment, dependency
//! statuses)`, the report is *identical* to the sequential
//! [`BuildEngine`] result for any thread count — asserted by the
//! reproducibility tests.

use std::collections::BTreeMap;
use std::sync::Mutex;

use sp_env::EnvironmentSpec;

use crate::engine::{BuildEngine, BuildRecord, BuildReport};
use crate::graph::{DependencyGraph, GraphError, PackageId};
use crate::plan::BuildPlan;

/// A build engine driving worker threads over build-plan layers.
pub struct ParallelBuilder {
    engine: BuildEngine,
    threads: usize,
}

impl ParallelBuilder {
    /// Wraps an engine with a worker count (minimum 1).
    pub fn new(engine: BuildEngine, threads: usize) -> Self {
        ParallelBuilder {
            engine,
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Builds the stack layer-parallel. The report equals the sequential
    /// [`BuildEngine::build_stack`] result.
    pub fn build_stack(
        &self,
        graph: &DependencyGraph,
        env: &EnvironmentSpec,
    ) -> Result<BuildReport, GraphError> {
        let plan = BuildPlan::for_graph(graph)?;
        let mut records: BTreeMap<PackageId, BuildRecord> = BTreeMap::new();

        for layer in plan.layers() {
            if layer.len() == 1 || self.threads == 1 {
                for id in layer {
                    let package = graph.get(id).expect("planned ids exist");
                    let record = self.engine.build_package(package, env, &records);
                    records.insert(id.clone(), record);
                }
                continue;
            }
            // Workers pull chunks of the layer; the merged result is
            // order-independent because records are keyed by package id.
            let fresh: Mutex<Vec<BuildRecord>> = Mutex::new(Vec::with_capacity(layer.len()));
            let chunk = layer.len().div_ceil(self.threads);
            std::thread::scope(|scope| {
                for ids in layer.chunks(chunk) {
                    let records = &records;
                    let fresh = &fresh;
                    let engine = &self.engine;
                    scope.spawn(move || {
                        let mut built: Vec<BuildRecord> = Vec::with_capacity(ids.len());
                        for id in ids {
                            let package = graph.get(id).expect("planned ids exist");
                            built.push(engine.build_package(package, env, records));
                        }
                        fresh.lock().expect("collector lock").extend(built);
                    });
                }
            });
            for record in fresh.into_inner().expect("collector lock") {
                records.insert(record.package.clone(), record);
            }
        }

        Ok(BuildReport {
            env_label: env.label(),
            order: plan.order().to_vec(),
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Package, PackageKind};
    use sp_env::{catalog, CodeTrait, Version, VersionReq};
    use sp_store::SharedStorage;

    /// A wide-ish synthetic stack with a failure on SL7 in the middle.
    fn stack() -> DependencyGraph {
        let mut packages = vec![Package::new(
            "base",
            Version::new(1, 0, 0),
            PackageKind::Library,
        )];
        for i in 0..12 {
            packages.push(
                Package::new(
                    format!("lib-{i}"),
                    Version::new(1, i, 0),
                    PackageKind::Library,
                )
                .dep("base"),
            );
        }
        packages.push(
            Package::new("cern-user", Version::new(2, 0, 0), PackageKind::Generator)
                .dep("lib-0")
                .with_trait(CodeTrait::RequiresExternal {
                    name: "cernlib".into(),
                    req: VersionReq::Any,
                }),
        );
        for i in 0..4 {
            packages.push(
                Package::new(
                    format!("ana-{i}"),
                    Version::new(1, 0, i),
                    PackageKind::Analysis,
                )
                .dep("cern-user")
                .dep(format!("lib-{i}")),
            );
        }
        DependencyGraph::from_packages(packages).unwrap()
    }

    #[test]
    fn parallel_equals_sequential_for_any_thread_count() {
        for env in [
            catalog::sl6_gcc44(Version::two(5, 34)),
            catalog::sl7_gcc48(Version::two(5, 34)), // cern-user fails here
        ] {
            let sequential = BuildEngine::new(SharedStorage::new())
                .build_stack(&stack(), &env)
                .unwrap();
            for threads in [1usize, 2, 3, 8, 64] {
                let parallel =
                    ParallelBuilder::new(BuildEngine::new(SharedStorage::new()), threads)
                        .build_stack(&stack(), &env)
                        .unwrap();
                assert_eq!(
                    parallel,
                    sequential,
                    "thread count {threads} must be invisible on {}",
                    env.label()
                );
            }
        }
    }

    #[test]
    fn failure_skips_propagate_across_layers() {
        let env = catalog::sl7_gcc48(Version::two(5, 34));
        let report = ParallelBuilder::new(BuildEngine::new(SharedStorage::new()), 4)
            .build_stack(&stack(), &env)
            .unwrap();
        assert_eq!(report.failed_count(), 1, "cern-user fails without CERNLIB");
        assert_eq!(report.skipped_count(), 4, "all four analyses skip");
        // Unaffected branches still build.
        assert!(report.records[&PackageId::new("lib-7")]
            .status
            .has_artifact());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let builder = ParallelBuilder::new(BuildEngine::new(SharedStorage::new()), 0);
        assert_eq!(builder.threads(), 1);
        let env = catalog::sl6_gcc44(Version::two(5, 34));
        assert!(builder.build_stack(&stack(), &env).unwrap().all_built());
    }
}
