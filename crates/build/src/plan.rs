//! Layered build plans.
//!
//! A [`BuildPlan`] slices a validated [`DependencyGraph`] into *layers*:
//! every package's dependencies live in strictly earlier layers, so all
//! packages of one layer can build concurrently. This is the schedule the
//! [`ParallelBuilder`](crate::ParallelBuilder) executes.

use std::collections::BTreeMap;

use crate::graph::{DependencyGraph, GraphError, PackageId};

/// A layered, parallelism-ready build schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildPlan {
    order: Vec<PackageId>,
    layers: Vec<Vec<PackageId>>,
}

impl BuildPlan {
    /// Computes the plan for a graph. Fails where
    /// [`DependencyGraph::validate`] would (missing deps, cycles); the
    /// single `topo_order` pass below is that validation.
    pub fn for_graph(graph: &DependencyGraph) -> Result<Self, GraphError> {
        // Longest-path layering: a package's layer is 1 + max layer of its
        // dependencies. Computed over the topological order, so every
        // dependency is already placed when its dependents are visited.
        let order = graph.topo_order()?;
        let mut depth: BTreeMap<&PackageId, usize> = BTreeMap::new();
        let mut layers: Vec<Vec<PackageId>> = Vec::new();
        for id in &order {
            let package = graph.get(id).expect("ordered ids exist");
            let level = package
                .deps
                .iter()
                .map(|dep| depth[dep] + 1)
                .max()
                .unwrap_or(0);
            depth.insert(id, level);
            if layers.len() <= level {
                layers.resize_with(level + 1, Vec::new);
            }
            layers[level].push(id.clone());
        }
        // Members arrive in topological (id-tie-broken) order; keep each
        // layer sorted by id for deterministic scheduling.
        for layer in &mut layers {
            layer.sort_unstable();
        }
        Ok(BuildPlan { order, layers })
    }

    /// The topological order the layering was computed over (dependencies
    /// before dependents, ties broken by id).
    pub fn order(&self) -> &[PackageId] {
        &self.order
    }

    /// The layers, dependencies strictly before dependents.
    pub fn layers(&self) -> &[Vec<PackageId>] {
        &self.layers
    }

    /// Number of layers (the critical-path length of the stack).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total number of packages scheduled.
    pub fn package_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Size of the widest layer — the maximum useful build parallelism.
    pub fn max_width(&self) -> usize {
        self.layers.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Package, PackageKind};
    use sp_env::Version;

    fn v1() -> Version {
        Version::new(1, 0, 0)
    }

    fn graph() -> DependencyGraph {
        DependencyGraph::from_packages([
            Package::new("base", v1(), PackageKind::Library),
            Package::new("mid-a", v1(), PackageKind::Library).dep("base"),
            Package::new("mid-b", v1(), PackageKind::Library).dep("base"),
            Package::new("top", v1(), PackageKind::Analysis)
                .dep("mid-a")
                .dep("mid-b"),
            Package::new("island", v1(), PackageKind::Tool),
        ])
        .unwrap()
    }

    #[test]
    fn layers_respect_dependencies() {
        let plan = BuildPlan::for_graph(&graph()).unwrap();
        assert_eq!(plan.layer_count(), 3);
        assert_eq!(plan.package_count(), 5);
        assert_eq!(
            plan.layers()[0],
            vec![PackageId::new("base"), PackageId::new("island")]
        );
        assert_eq!(
            plan.layers()[1],
            vec![PackageId::new("mid-a"), PackageId::new("mid-b")]
        );
        assert_eq!(plan.layers()[2], vec![PackageId::new("top")]);
        assert_eq!(plan.max_width(), 2);
    }

    #[test]
    fn invalid_graph_rejected() {
        let mut bad = DependencyGraph::new();
        bad.add(Package::new("a", v1(), PackageKind::Library).dep("b"))
            .unwrap();
        assert!(BuildPlan::for_graph(&bad).is_err());
    }

    #[test]
    fn empty_graph_is_an_empty_plan() {
        let plan = BuildPlan::for_graph(&DependencyGraph::new()).unwrap();
        assert_eq!(plan.layer_count(), 0);
        assert_eq!(plan.max_width(), 0);
    }
}
