//! Change-driven rebuild closures.
//!
//! The sp-system rebuilds "according to the current prescription of the
//! working environment" — but a nightly cron need not rebuild a hundred
//! packages when one header changed. A [`ChangeSet`] names what moved since
//! the last build (experiment packages, external software, the environment
//! itself) and [`rebuild_set`] answers the only question the scheduler
//! asks: *exactly which packages must be rebuilt?* — the changed packages
//! plus everything transitively depending on them, nothing more.

use std::collections::BTreeSet;

use crate::graph::{DependencyGraph, PackageId};

/// What changed since the previous build.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeSet {
    /// Experiment packages whose sources changed.
    pub changed_packages: Vec<PackageId>,
    /// External software packages that were upgraded or replaced.
    pub changed_externals: Vec<String>,
    /// Whether the environment itself (OS release, compiler) changed —
    /// which invalidates every artifact.
    pub environment_changed: bool,
}

impl ChangeSet {
    /// The empty change set: nothing to rebuild.
    pub fn none() -> Self {
        ChangeSet::default()
    }

    /// A change set naming source changes in the given packages.
    pub fn packages(ids: impl IntoIterator<Item = PackageId>) -> Self {
        ChangeSet {
            changed_packages: ids.into_iter().collect(),
            ..ChangeSet::none()
        }
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changed_packages.is_empty()
            && self.changed_externals.is_empty()
            && !self.environment_changed
    }
}

/// The exact set of packages that must be rebuilt for `changes`:
///
/// * an environment change invalidates the whole stack;
/// * a changed package invalidates itself and its transitive dependents;
/// * a changed external invalidates its direct users and *their* transitive
///   dependents (rebuilt code links the new external; dependents link the
///   rebuilt code).
///
/// Packages named in the change set but absent from the graph are ignored —
/// a change to software the stack no longer ships cannot force work.
pub fn rebuild_set(graph: &DependencyGraph, changes: &ChangeSet) -> BTreeSet<PackageId> {
    if changes.environment_changed {
        return graph.ids().cloned().collect();
    }

    let mut seeds: BTreeSet<PackageId> = changes
        .changed_packages
        .iter()
        .filter(|id| graph.contains(id))
        .cloned()
        .collect();
    if !changes.changed_externals.is_empty() {
        for package in graph.packages() {
            if changes
                .changed_externals
                .iter()
                .any(|name| package.uses_external(name))
            {
                seeds.insert(package.id.clone());
            }
        }
    }

    let roots: Vec<PackageId> = seeds.iter().cloned().collect();
    let mut rebuild = seeds;
    rebuild.extend(graph.dependents_closure(&roots));
    rebuild
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Package, PackageKind};
    use sp_env::{CodeTrait, Version, VersionReq};

    fn v1() -> Version {
        Version::new(1, 0, 0)
    }

    /// base <- mid <- top, plus rootuser (uses ROOT) <- rootdep, plus a
    /// free-standing island.
    fn graph() -> DependencyGraph {
        DependencyGraph::from_packages([
            Package::new("base", v1(), PackageKind::Library),
            Package::new("mid", v1(), PackageKind::Library).dep("base"),
            Package::new("top", v1(), PackageKind::Analysis).dep("mid"),
            Package::new("rootuser", v1(), PackageKind::Analysis).with_trait(
                CodeTrait::RequiresExternal {
                    name: "root".into(),
                    req: VersionReq::Any,
                },
            ),
            Package::new("rootdep", v1(), PackageKind::Tool).dep("rootuser"),
            Package::new("island", v1(), PackageKind::Tool),
        ])
        .unwrap()
    }

    fn ids(names: &[&str]) -> BTreeSet<PackageId> {
        names.iter().map(|n| PackageId::new(*n)).collect()
    }

    #[test]
    fn empty_change_set_rebuilds_nothing() {
        assert!(ChangeSet::none().is_empty());
        assert!(rebuild_set(&graph(), &ChangeSet::none()).is_empty());
    }

    #[test]
    fn package_change_rebuilds_exactly_the_dependent_closure() {
        let changes = ChangeSet::packages([PackageId::new("base")]);
        assert!(!changes.is_empty());
        assert_eq!(
            rebuild_set(&graph(), &changes),
            ids(&["base", "mid", "top"]),
            "the island and the ROOT branch are untouched"
        );
    }

    #[test]
    fn leaf_change_rebuilds_only_itself() {
        let changes = ChangeSet::packages([PackageId::new("top")]);
        assert_eq!(rebuild_set(&graph(), &changes), ids(&["top"]));
    }

    #[test]
    fn external_change_rebuilds_users_and_their_dependents() {
        let changes = ChangeSet {
            changed_externals: vec!["root".into()],
            ..ChangeSet::none()
        };
        assert_eq!(
            rebuild_set(&graph(), &changes),
            ids(&["rootuser", "rootdep"])
        );
    }

    #[test]
    fn environment_change_rebuilds_everything() {
        let changes = ChangeSet {
            environment_changed: true,
            ..ChangeSet::none()
        };
        assert_eq!(rebuild_set(&graph(), &changes).len(), graph().len());
    }

    #[test]
    fn unknown_packages_are_ignored() {
        let changes = ChangeSet::packages([PackageId::new("ghost")]);
        assert!(rebuild_set(&graph(), &changes).is_empty());
    }

    #[test]
    fn combined_changes_union() {
        let changes = ChangeSet {
            changed_packages: vec![PackageId::new("mid")],
            changed_externals: vec!["root".into()],
            environment_changed: false,
        };
        assert_eq!(
            rebuild_set(&graph(), &changes),
            ids(&["mid", "top", "rootuser", "rootdep"])
        );
    }
}
