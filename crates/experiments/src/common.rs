//! Shared experiment-construction helpers.

use std::collections::BTreeMap;

use sp_build::{DependencyGraph, Package, PackageId, PackageKind};
use sp_core::{PreservationLevel, TestKind, TestSuite, ValidationTest};
use sp_env::Version;
use sp_exec::ChainDef;

/// Figure-3 process group for a package kind.
pub fn group_for(kind: PackageKind) -> &'static str {
    match kind {
        PackageKind::Library => "core libraries",
        PackageKind::Generator => "MC generation",
        PackageKind::Simulation => "simulation",
        PackageKind::Reconstruction => "reconstruction",
        PackageKind::Analysis => "physics analysis",
        PackageKind::Tool => "tools",
    }
}

/// A declarative chain description: name, events, and stage→package pairs.
pub struct ChainSpec<'a> {
    /// Chain name (`nc-dis`).
    pub name: &'a str,
    /// Head-of-chain event count (before campaign scaling).
    pub events: usize,
    /// Stage name → implementing package, for the six standard stages.
    pub stages: [(&'a str, &'a str); 6],
}

impl<'a> ChainSpec<'a> {
    /// The standard six-stage mapping.
    pub fn standard(
        name: &'a str,
        events: usize,
        generator: &'a str,
        simulation: &'a str,
        dst: &'a str,
        microdst: &'a str,
        analysis: &'a str,
    ) -> Self {
        ChainSpec {
            name,
            events,
            stages: [
                ("mcgen", generator),
                ("sim", simulation),
                ("dst", dst),
                ("microdst", microdst),
                ("analysis", analysis),
                ("validation", analysis),
            ],
        }
    }
}

/// Builds the full validation suite for a stack, following the Figure-2
/// structure: one compilation test per package, `unit_checks` quick checks
/// per package, the listed standalone executables, and the analysis chains.
pub fn build_suite(
    experiment: &str,
    level: PreservationLevel,
    graph: &DependencyGraph,
    unit_checks: u32,
    standalone: &[(&str, usize)],
    chains: &[ChainSpec<'_>],
) -> TestSuite {
    let mut suite = TestSuite::new(experiment, level);

    for package in graph.packages() {
        suite
            .add(ValidationTest::new(
                format!("{experiment}/compile/{}", package.id),
                experiment,
                "compilation",
                TestKind::Compile {
                    package: package.id.clone(),
                },
            ))
            .expect("unique compile test ids");
        for check in 0..unit_checks {
            suite
                .add(ValidationTest::new(
                    format!("{experiment}/unit/{}-{check}", package.id),
                    experiment,
                    group_for(package.kind),
                    TestKind::UnitCheck {
                        package: package.id.clone(),
                        check_index: check,
                    },
                ))
                .expect("unique unit test ids");
        }
    }

    for (package, events) in standalone {
        let kind = graph
            .get(&PackageId::new(*package))
            .map(|p| p.kind)
            .unwrap_or(PackageKind::Tool);
        suite
            .add(ValidationTest::new(
                format!("{experiment}/standalone/{package}"),
                experiment,
                group_for(kind),
                TestKind::Standalone {
                    package: PackageId::new(*package),
                    events: *events,
                },
            ))
            .expect("unique standalone test ids");
    }

    for chain in chains {
        let stage_packages: BTreeMap<String, PackageId> = chain
            .stages
            .iter()
            .map(|(stage, pkg)| (stage.to_string(), PackageId::new(*pkg)))
            .collect();
        suite
            .add(ValidationTest::new(
                format!("{experiment}/chain/{}", chain.name),
                experiment,
                "analysis chains",
                TestKind::Chain {
                    chain: ChainDef::full_analysis_chain(chain.name),
                    stage_packages,
                    events: chain.events,
                },
            ))
            .expect("unique chain test ids");
    }

    suite
}

/// Number of tests a suite produces once chains are expanded into their
/// per-stage results — the number the paper's "up to 500 tests" counts.
pub fn expanded_test_count(suite: &TestSuite) -> usize {
    suite
        .tests()
        .iter()
        .map(|t| match &t.kind {
            TestKind::Chain { chain, .. } => chain.len(),
            _ => 1,
        })
        .sum()
}

/// Terse package constructor used by the stack definitions.
pub fn pkg(
    name: &str,
    version: (u16, u16, u16),
    kind: PackageKind,
    kloc: u32,
    deps: &[&str],
) -> Package {
    let mut package =
        Package::new(name, Version::new(version.0, version.1, version.2), kind).size_kloc(kloc);
    for dep in deps {
        package = package.dep(*dep);
    }
    package
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::TestCategory;

    fn small_graph() -> DependencyGraph {
        DependencyGraph::from_packages([
            pkg("base", (1, 0, 0), PackageKind::Library, 20, &[]),
            pkg("gen", (1, 0, 0), PackageKind::Generator, 30, &["base"]),
            pkg("sim", (1, 0, 0), PackageKind::Simulation, 40, &["base"]),
            pkg("ana", (1, 0, 0), PackageKind::Analysis, 25, &["base"]),
        ])
        .unwrap()
    }

    #[test]
    fn suite_structure() {
        let graph = small_graph();
        let chains = [ChainSpec::standard(
            "nc", 1000, "gen", "sim", "ana", "ana", "ana",
        )];
        let suite = build_suite(
            "t",
            PreservationLevel::FullSoftware,
            &graph,
            2,
            &[("ana", 200)],
            &chains,
        );
        let breakdown = suite.breakdown();
        assert_eq!(breakdown.count(TestCategory::Compilation), 4);
        assert_eq!(breakdown.count(TestCategory::UnitCheck), 8);
        assert_eq!(breakdown.count(TestCategory::StandaloneExecutable), 1);
        // 4 compiles + 8 units + 1 standalone + 1 chain = 14 defined tests;
        // expanded, the chain contributes its 6 stages.
        assert_eq!(suite.len(), 14);
        assert_eq!(expanded_test_count(&suite), 19);
    }

    #[test]
    fn groups_follow_package_kinds() {
        assert_eq!(group_for(PackageKind::Generator), "MC generation");
        assert_eq!(group_for(PackageKind::Analysis), "physics analysis");
    }
}
