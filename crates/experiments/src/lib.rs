//! # sp-experiments — the HERA experiment definitions
//!
//! Synthetic but structurally faithful stand-ins for the three HERA
//! experiments whose validation campaigns Figure 3 of the paper summarises:
//!
//! * [`h1`] — H1 (blue): a full Level-4 programme with ~100 packages and,
//!   once chains are expanded to their stages, close to 500 tests
//!   (Figure 2).
//! * [`zeus`] — ZEUS (orange): a mid-sized Level-4 stack.
//! * [`hermes`] — HERMES (red): a smaller, cleaner stack.
//!
//! Code traits are assigned to *specific named packages* so the campaign
//! reproduces the qualitative findings of §3.3 deterministically:
//!
//! | Package (experiment) | Trait | Surfaces on |
//! |---|---|---|
//! | `h1bank` (H1), `zcal` (ZEUS) | pointer-size assumption | any 64-bit image (the "long-standing bugs") |
//! | `h1disp` (H1), `zevis` (ZEUS) | legacy /proc interface | SL7 |
//! | `h1fpack` (H1), `zgana` (ZEUS) | g77 Fortran dialect | warnings ≥ gcc 4.4, errors on SL7 |
//! | `h1oo`, `h1micro` (H1), `zdis` (ZEUS), `hana` (HERMES) | ROOT 5 API (CINT) | ROOT 6 images |
//! | CERNLIB users | external requirement | SL7 (no CERNLIB distribution) |
//!
//! ## Example
//!
//! ```
//! let experiments = sp_experiments::hera_experiments();
//! let names: Vec<&str> = experiments.iter().map(|e| e.name.as_str()).collect();
//! assert_eq!(names, ["zeus", "h1", "hermes"]);
//! assert!(experiments.iter().all(|e| e.package_count() > 0));
//! ```

pub mod common;
pub mod h1;
pub mod hermes;
pub mod zeus;

pub use h1::h1_experiment;
pub use hermes::hermes_experiment;
pub use zeus::zeus_experiment;

use sp_core::ExperimentDef;

/// All three HERA experiments, in the Figure-3 band order (ZEUS top, H1
/// middle, HERMES bottom).
pub fn hera_experiments() -> Vec<ExperimentDef> {
    vec![zeus_experiment(), h1_experiment(), hermes_experiment()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_experiments_with_paper_colours() {
        let experiments = hera_experiments();
        assert_eq!(experiments.len(), 3);
        let colours: Vec<(&str, &str)> = experiments
            .iter()
            .map(|e| (e.name.as_str(), e.color))
            .collect();
        assert_eq!(
            colours,
            vec![("zeus", "orange"), ("h1", "blue"), ("hermes", "red")]
        );
    }

    #[test]
    fn all_graphs_validate() {
        for experiment in hera_experiments() {
            assert!(
                experiment.graph.validate().is_ok(),
                "graph of {} invalid",
                experiment.name
            );
        }
    }

    #[test]
    fn h1_matches_figure2_scale() {
        let h1 = h1_experiment();
        // "the compilation of approximately 100 individual H1 software
        // packages"
        assert!(
            (95..=105).contains(&h1.package_count()),
            "H1 has {} packages",
            h1.package_count()
        );
        // "expected to comprise of up to 500 tests in total" — counting
        // each chain stage as the paper counts chain tests.
        let expanded = common::expanded_test_count(&h1.suite);
        assert!(
            (400..=500).contains(&expanded),
            "H1 suite expands to {expanded} tests"
        );
    }

    #[test]
    fn stacks_have_distinct_scales() {
        let h1 = h1_experiment();
        let zeus = zeus_experiment();
        let hermes = hermes_experiment();
        assert!(h1.package_count() > zeus.package_count());
        assert!(zeus.package_count() > hermes.package_count());
    }
}
