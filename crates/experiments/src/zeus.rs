//! The ZEUS experiment: the orange band of Figure 3.

use sp_build::{DependencyGraph, Language, Package, PackageKind};
use sp_core::{ExperimentDef, PreservationLevel};
use sp_env::{CodeTrait, Version, VersionReq};

use crate::common::{build_suite, pkg, ChainSpec};

/// Builds the ZEUS experiment definition (~45 packages, Level 4).
pub fn zeus_experiment() -> ExperimentDef {
    let graph = DependencyGraph::from_packages(zeus_packages()).expect("ZEUS stack is coherent");
    let standalone: &[(&str, usize)] = &[
        ("zevis", 120),
        ("zmon", 150),
        ("zvalid", 250),
        ("zcheck", 150),
        ("orange", 400),
        ("zhq", 300),
        ("zstat", 120),
        ("zprod", 300),
    ];
    let chains = [
        ChainSpec::standard(
            "nc-dis", 2600, "amadeus", "mozart", "zdstw", "zmicro", "zncana",
        ),
        ChainSpec::standard(
            "cc-dis", 2000, "zlepto", "mozart", "zdstw", "zmicro", "zccana",
        ),
    ];
    let suite = build_suite(
        "zeus",
        PreservationLevel::FullSoftware,
        &graph,
        2,
        standalone,
        &chains,
    );
    ExperimentDef {
        name: "zeus".into(),
        color: "orange",
        graph,
        suite,
        entry_points: vec![],
    }
}

fn needs_cernlib() -> CodeTrait {
    CodeTrait::RequiresExternal {
        name: "cernlib".into(),
        req: VersionReq::Any,
    }
}

/// The ZEUS packages.
fn zeus_packages() -> Vec<Package> {
    use PackageKind::*;
    let mut packages = vec![
        // ---- core libraries --------------------------------------------
        pkg("zlib0", (3, 0, 0), Library, 35, &[]).lang(Language::Fortran),
        pkg("zutil", (2, 5, 0), Library, 28, &["zlib0"]).lang(Language::Fortran),
        pkg("zbos", (2, 2, 0), Library, 50, &["zlib0"]).lang(Language::Fortran),
        pkg("zgeom", (4, 1, 0), Library, 45, &["zutil"]).lang(Language::Fortran),
        pkg("zdb", (3, 0, 0), Library, 30, &["zutil"]).lang(Language::C),
        // The ZEUS counterpart of the 64-bit pointer bug.
        pkg("zcal", (5, 2, 0), Library, 65, &["zgeom", "zdb"])
            .lang(Language::Fortran)
            .with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 6.0 }),
        pkg("ztrack", (4, 4, 0), Library, 70, &["zgeom", "zmag"]).lang(Language::Fortran),
        pkg("zmag", (1, 8, 0), Library, 15, &["zutil"]).lang(Language::Fortran),
        pkg("zgana", (2, 1, 0), Library, 20, &["zutil"])
            .lang(Language::Fortran)
            .with_trait(CodeTrait::Fortran77Extensions)
            .with_trait(needs_cernlib()),
        pkg("zsteer", (1, 3, 0), Library, 10, &["zutil"]).lang(Language::C),
        // ---- generators --------------------------------------------------
        pkg("amadeus", (2, 0, 0), Generator, 40, &["zsteer"]).lang(Language::Fortran),
        pkg("herades", (1, 2, 0), Generator, 25, &["zsteer"]).lang(Language::Fortran),
        pkg("zpythia", (6, 2, 0), Generator, 60, &["zsteer"]).lang(Language::Fortran),
        pkg("zlepto", (6, 5, 0), Generator, 30, &["zsteer"]).lang(Language::Fortran),
        pkg("zdjangoh", (1, 6, 0), Generator, 35, &["zsteer", "zgana"])
            .lang(Language::Fortran)
            .with_trait(needs_cernlib()),
        pkg("zgrape", (1, 1, 0), Generator, 20, &["zsteer"]).lang(Language::Fortran),
        // ---- simulation ---------------------------------------------------
        pkg(
            "mozart",
            (5, 3, 0),
            Simulation,
            110,
            &["zgeom", "zcal", "ztrack"],
        )
        .lang(Language::Fortran)
        .with_trait(needs_cernlib()),
        pkg("zgeant", (3, 21, 0), Simulation, 80, &["zgeom"])
            .lang(Language::Fortran)
            .with_trait(needs_cernlib()),
        pkg("zdigi", (3, 0, 0), Simulation, 35, &["mozart"]).lang(Language::Fortran),
        pkg("ztrig", (2, 4, 0), Simulation, 30, &["zdb"]).lang(Language::Fortran),
        pkg("zsmear", (1, 7, 0), Simulation, 20, &["zcal"]).lang(Language::Fortran),
        // ---- reconstruction ------------------------------------------------
        pkg(
            "zephyr",
            (7, 0, 0),
            Reconstruction,
            130,
            &["zcal", "ztrack", "ztrig"],
        )
        .lang(Language::Fortran),
        pkg("zcalrec", (4, 2, 0), Reconstruction, 50, &["zephyr"]).lang(Language::Fortran),
        pkg("ztrackrec", (5, 0, 0), Reconstruction, 60, &["zephyr"]).lang(Language::Fortran),
        pkg("zvertex", (2, 3, 0), Reconstruction, 25, &["ztrackrec"]).lang(Language::Fortran),
        pkg("zke", (2, 0, 0), Reconstruction, 22, &["zephyr"]).lang(Language::Fortran),
        pkg(
            "zeflow",
            (1, 9, 0),
            Reconstruction,
            28,
            &["zcalrec", "ztrackrec"],
        )
        .lang(Language::Fortran),
        pkg("zdstw", (3, 1, 0), Reconstruction, 40, &["zephyr", "zbos"]).lang(Language::Fortran),
        pkg("zqual", (1, 5, 0), Reconstruction, 18, &["zephyr"]).lang(Language::Fortran),
        // ---- analysis -------------------------------------------------------
        {
            // The Orange ntuple framework (ROOT 5 / CINT era).
            let mut p = pkg("orange", (4, 5, 0), Analysis, 90, &["zdstw"]).lang(Language::Cxx);
            p = p.with_trait(CodeTrait::RequiresExternal {
                name: "root".into(),
                req: VersionReq::AtLeast(Version::two(5, 26)),
            });
            p.with_trait(CodeTrait::UsesExternalApi {
                name: "root".into(),
                api_level: 5,
            })
        },
        {
            let mut p = pkg("zdis", (2, 2, 0), Analysis, 40, &["orange"]).lang(Language::Cxx);
            p = p.with_trait(CodeTrait::RequiresExternal {
                name: "root".into(),
                req: VersionReq::AtLeast(Version::two(5, 26)),
            });
            p.with_trait(CodeTrait::UsesExternalApi {
                name: "root".into(),
                api_level: 5,
            })
        },
        pkg("zmicro", (2, 0, 0), Analysis, 35, &["orange"]).lang(Language::Cxx),
        pkg("zhq", (1, 4, 0), Analysis, 25, &["zmicro"]).lang(Language::Cxx),
        pkg("zncana", (1, 6, 0), Analysis, 28, &["zmicro"]).lang(Language::Cxx),
        pkg("zccana", (1, 5, 0), Analysis, 26, &["zmicro"]).lang(Language::Cxx),
        pkg("zjets", (1, 2, 0), Analysis, 24, &["zmicro"]).lang(Language::Cxx),
        pkg("zheavy", (1, 1, 0), Analysis, 22, &["zmicro"]).lang(Language::Cxx),
        pkg("zfit", (1, 3, 0), Analysis, 20, &["zmicro"])
            .lang(Language::Cxx)
            .with_trait(CodeTrait::RequiresExternal {
                name: "gsl".into(),
                req: VersionReq::AtLeast(Version::new(1, 10, 0)),
            }),
        // ---- tools -----------------------------------------------------------
        pkg("zevis", (3, 2, 0), Tool, 55, &["zdstw"])
            .lang(Language::Cxx)
            .with_trait(CodeTrait::LegacySyscall { breaks_at_abi: 7 }),
        pkg("zmon", (2, 1, 0), Tool, 20, &["zutil"]).lang(Language::C),
        pkg("zprod", (3, 0, 0), Tool, 30, &["zdstw", "zsteer"]).lang(Language::Fortran),
        pkg("zcheck", (1, 4, 0), Tool, 12, &["zdstw"]).lang(Language::Fortran),
        pkg("zvalid", (2, 2, 0), Tool, 25, &["zdstw"]).lang(Language::Fortran),
        pkg("zstat", (1, 1, 0), Tool, 10, &["zutil"]).lang(Language::Fortran),
        pkg("zarch", (1, 0, 0), Tool, 8, &["zbos"]).lang(Language::C),
    ];
    debug_assert_eq!(packages.len(), 45, "ZEUS ships ~45 packages");
    packages.sort_by(|a, b| a.id.cmp(&b.id));
    packages
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_build::PackageId;

    #[test]
    fn zeus_scale() {
        assert_eq!(zeus_packages().len(), 45);
        let exp = zeus_experiment();
        assert!(exp.graph.validate().is_ok());
        assert_eq!(exp.color, "orange");
    }

    #[test]
    fn zcal_bug_reaches_chains() {
        let exp = zeus_experiment();
        let traits = exp.effective_runtime_traits(&PackageId::new("zdstw"));
        assert!(traits
            .iter()
            .any(|t| matches!(t, CodeTrait::PointerSizeAssumption { .. })));
    }

    #[test]
    fn orange_is_a_root5_framework() {
        let exp = zeus_experiment();
        let orange = exp.graph.get(&PackageId::new("orange")).unwrap();
        assert!(orange.uses_external("root"));
    }
}
