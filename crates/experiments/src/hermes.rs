//! The HERMES experiment: the red band of Figure 3.
//!
//! The smallest of the three stacks, and deliberately the cleanest: HERMES
//! has no latent 64-bit bugs, so its bands stay green through the SL6
//! migration and only break where every experiment breaks (CERNLIB-less
//! SL7, ROOT 6).

use sp_build::{DependencyGraph, Language, Package, PackageKind};
use sp_core::{ExperimentDef, PreservationLevel};
use sp_env::{CodeTrait, Version, VersionReq};

use crate::common::{build_suite, pkg, ChainSpec};

/// Builds the HERMES experiment definition (~28 packages, Level 4).
pub fn hermes_experiment() -> ExperimentDef {
    let graph =
        DependencyGraph::from_packages(hermes_packages()).expect("HERMES stack is coherent");
    let standalone: &[(&str, usize)] = &[
        ("hmon", 150),
        ("hvalid", 200),
        ("hana", 300),
        ("hdisana", 250),
        ("hfit", 100),
    ];
    let chains = [ChainSpec::standard(
        "dis", 2000, "hmc", "hsim", "hdst", "hmicro", "hana",
    )];
    let suite = build_suite(
        "hermes",
        PreservationLevel::FullSoftware,
        &graph,
        2,
        standalone,
        &chains,
    );
    ExperimentDef {
        name: "hermes".into(),
        color: "red",
        graph,
        suite,
        entry_points: vec![],
    }
}

/// The HERMES packages.
fn hermes_packages() -> Vec<Package> {
    use PackageKind::*;
    let needs_cernlib = || CodeTrait::RequiresExternal {
        name: "cernlib".into(),
        req: VersionReq::Any,
    };
    let mut packages = vec![
        // ---- core libraries --------------------------------------------
        pkg("hutil", (2, 4, 0), Library, 25, &[]).lang(Language::Fortran),
        pkg("hbos", (1, 9, 0), Library, 35, &["hutil"]).lang(Language::Fortran),
        pkg("hgeom", (3, 0, 0), Library, 30, &["hutil"]).lang(Language::Fortran),
        pkg("hdb", (2, 1, 0), Library, 22, &["hutil"]).lang(Language::C),
        pkg("hcal", (3, 2, 0), Library, 40, &["hgeom", "hdb"]).lang(Language::Fortran),
        pkg("htrack", (3, 5, 0), Library, 45, &["hgeom", "hmag"]).lang(Language::Fortran),
        pkg("hmag", (1, 2, 0), Library, 12, &["hutil"]).lang(Language::Fortran),
        pkg("hsteer", (1, 1, 0), Library, 8, &["hutil"]).lang(Language::C),
        // ---- generators ---------------------------------------------------
        pkg("hmc", (2, 3, 0), Generator, 35, &["hsteer"])
            .lang(Language::Fortran)
            .with_trait(needs_cernlib()),
        pkg("hpythia", (6, 2, 0), Generator, 50, &["hsteer"]).lang(Language::Fortran),
        pkg("disng", (1, 4, 0), Generator, 20, &["hsteer"]).lang(Language::Fortran),
        pkg("hradgen", (1, 0, 0), Generator, 15, &["hsteer"]).lang(Language::Fortran),
        // ---- simulation -----------------------------------------------------
        pkg(
            "hsim",
            (4, 1, 0),
            Simulation,
            70,
            &["hgeom", "hcal", "htrack"],
        )
        .lang(Language::Fortran)
        .with_trait(needs_cernlib()),
        pkg("hdigi", (2, 0, 0), Simulation, 25, &["hsim"]).lang(Language::Fortran),
        pkg("hsmear", (1, 3, 0), Simulation, 15, &["hcal"]).lang(Language::Fortran),
        // ---- reconstruction --------------------------------------------------
        pkg("hrc", (5, 2, 0), Reconstruction, 85, &["hcal", "htrack"]).lang(Language::Fortran),
        pkg("hcalrec", (3, 0, 0), Reconstruction, 35, &["hrc"]).lang(Language::Fortran),
        pkg("htrackrec", (3, 4, 0), Reconstruction, 40, &["hrc"]).lang(Language::Fortran),
        pkg("hpid", (2, 2, 0), Reconstruction, 30, &["hrc"]).lang(Language::Fortran),
        pkg("hdst", (2, 5, 0), Reconstruction, 35, &["hrc", "hbos"]).lang(Language::Fortran),
        pkg("hqual", (1, 2, 0), Reconstruction, 14, &["hrc"]).lang(Language::Fortran),
        // ---- analysis ---------------------------------------------------------
        {
            let mut p = pkg("hana", (3, 1, 0), Analysis, 55, &["hdst"]).lang(Language::Cxx);
            p = p.with_trait(CodeTrait::RequiresExternal {
                name: "root".into(),
                req: VersionReq::AtLeast(Version::two(5, 26)),
            });
            p.with_trait(CodeTrait::UsesExternalApi {
                name: "root".into(),
                api_level: 5,
            })
        },
        pkg("hmicro", (1, 8, 0), Analysis, 25, &["hana"]).lang(Language::Cxx),
        pkg("hdisana", (1, 4, 0), Analysis, 22, &["hmicro"]).lang(Language::Cxx),
        pkg("hsemi", (1, 2, 0), Analysis, 20, &["hmicro"]).lang(Language::Cxx),
        pkg("hfit", (1, 1, 0), Analysis, 15, &["hmicro"])
            .lang(Language::Cxx)
            .with_trait(CodeTrait::RequiresExternal {
                name: "gsl".into(),
                req: VersionReq::AtLeast(Version::new(1, 10, 0)),
            }),
        // ---- tools -------------------------------------------------------------
        pkg("hmon", (1, 5, 0), Tool, 15, &["hutil"]).lang(Language::C),
        pkg("hvalid", (1, 3, 0), Tool, 18, &["hdst"]).lang(Language::Fortran),
    ];
    debug_assert_eq!(packages.len(), 28, "HERMES ships ~28 packages");
    packages.sort_by(|a, b| a.id.cmp(&b.id));
    packages
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_build::PackageId;

    #[test]
    fn hermes_scale() {
        assert_eq!(hermes_packages().len(), 28);
        let exp = hermes_experiment();
        assert!(exp.graph.validate().is_ok());
        assert_eq!(exp.color, "red");
    }

    #[test]
    fn hermes_has_no_latent_64bit_bugs() {
        let exp = hermes_experiment();
        for package in exp.graph.packages() {
            assert!(
                !package
                    .traits
                    .iter()
                    .any(|t| matches!(t, CodeTrait::PointerSizeAssumption { .. })),
                "{} carries a pointer bug",
                package.id
            );
        }
    }

    #[test]
    fn chain_is_fully_wired() {
        let exp = hermes_experiment();
        for pkg_name in ["hmc", "hsim", "hdst", "hmicro", "hana"] {
            assert!(
                exp.graph.get(&PackageId::new(pkg_name)).is_some(),
                "{pkg_name} missing"
            );
        }
    }
}
