//! The H1 experiment: a full Level-4 preservation programme.
//!
//! Figure 2 of the paper outlines the H1 validation tests: the compilation
//! of ~100 individual software packages (binaries conserved as tar-balls)
//! plus validation tests — quick checks, standalone executables run in
//! parallel, and several full analysis chains — adding up to "up to 500
//! tests in total".

use sp_build::{DependencyGraph, Language, Package, PackageKind};
use sp_core::{ExperimentDef, PreservationLevel};
use sp_env::{CodeTrait, Version, VersionReq};

use crate::common::{build_suite, pkg, ChainSpec};

/// Builds the H1 experiment definition (~100 packages, Level 4).
pub fn h1_experiment() -> ExperimentDef {
    let graph = DependencyGraph::from_packages(h1_packages()).expect("H1 stack is coherent");
    let standalone: &[(&str, usize)] = &[
        ("h1disp", 150),
        ("h1mon", 150),
        ("h1valid", 300),
        ("h1check", 200),
        ("h1dqm", 250),
        ("h1calib", 200),
        ("h1elan", 400),
        ("h1phys", 400),
        ("h1skim", 300),
        ("h1prod", 350),
        ("h1stat", 150),
        ("h1dump", 100),
    ];
    let chains = [
        ChainSpec::standard(
            "nc-dis", 3000, "django", "h1sim", "h1dst", "h1micro", "h1ncana",
        ),
        ChainSpec::standard(
            "cc-dis", 2200, "lepto", "h1sim", "h1dst", "h1micro", "h1ccana",
        ),
        ChainSpec::standard(
            "php", 2400, "pythia6", "h1sim", "h1dst", "h1micro", "h1phpana",
        ),
        ChainSpec::standard(
            "heavy-flavour",
            2200,
            "rapgap",
            "h1sim",
            "h1dst",
            "h1micro",
            "h1charm",
        ),
        ChainSpec::standard(
            "high-q2", 2600, "django", "h1fast", "h1dst", "h1micro", "h1highq2",
        ),
    ];
    let suite = build_suite(
        "h1",
        PreservationLevel::FullSoftware,
        &graph,
        3,
        standalone,
        &chains,
    );
    ExperimentDef {
        name: "h1".into(),
        color: "blue",
        graph,
        suite,
        entry_points: vec![],
    }
}

/// CERNLIB requirement shared by the Fortran legacy packages.
fn needs_cernlib() -> CodeTrait {
    CodeTrait::RequiresExternal {
        name: "cernlib".into(),
        req: VersionReq::Any,
    }
}

/// ROOT 5 usage: presence requirement plus the CINT-era API level.
fn uses_root5() -> [CodeTrait; 2] {
    [
        CodeTrait::RequiresExternal {
            name: "root".into(),
            req: VersionReq::AtLeast(Version::two(5, 26)),
        },
        CodeTrait::UsesExternalApi {
            name: "root".into(),
            api_level: 5,
        },
    ]
}

/// The ~100 H1 packages with their dependency structure and code traits.
fn h1_packages() -> Vec<Package> {
    use PackageKind::*;
    let mut packages = vec![
        // ---- core libraries --------------------------------------------
        pkg("h1util", (4, 2, 0), Library, 45, &[]).lang(Language::Fortran),
        pkg("h1io", (3, 1, 0), Library, 30, &["h1util"]).lang(Language::Fortran),
        pkg("h1bos", (2, 8, 0), Library, 60, &["h1util"]).lang(Language::Fortran),
        // The long-standing 64-bit bug of §3.3: pointers stored in INTEGER*4.
        pkg("h1bank", (5, 0, 1), Library, 80, &["h1bos"])
            .lang(Language::Fortran)
            .with_trait(CodeTrait::PointerSizeAssumption { shift_sigma: 5.0 }),
        pkg("h1fpack", (1, 9, 0), Library, 25, &["h1io"])
            .lang(Language::Fortran)
            .with_trait(CodeTrait::Fortran77Extensions),
        pkg("h1geom", (6, 3, 0), Library, 55, &["h1util", "h1db"]).lang(Language::Fortran),
        pkg("h1db", (4, 0, 0), Library, 40, &["h1util"]).lang(Language::C),
        pkg("h1cal", (7, 1, 0), Library, 70, &["h1geom", "h1db"]).lang(Language::Fortran),
        pkg("h1track", (5, 5, 0), Library, 90, &["h1geom", "h1mag"]).lang(Language::Fortran),
        pkg("h1mag", (2, 2, 0), Library, 20, &["h1util"]).lang(Language::Fortran),
        pkg("h1trig", (3, 3, 0), Library, 35, &["h1util", "h1db"]).lang(Language::Fortran),
        pkg("h1lumi", (2, 0, 0), Library, 15, &["h1util"]).lang(Language::Fortran),
        pkg("h1vertex", (3, 0, 0), Library, 30, &["h1track"]).lang(Language::Fortran),
        pkg("h1cern", (2006, 0, 0), Library, 10, &["h1util"])
            .lang(Language::Fortran)
            .with_trait(needs_cernlib()),
        pkg("h1steer", (1, 4, 0), Library, 12, &["h1util"]).lang(Language::C),
        pkg("h1hist", (2, 1, 0), Library, 22, &["h1util"]).lang(Language::Fortran),
        pkg("h1graph", (1, 8, 0), Library, 28, &["h1util"]).lang(Language::C),
        pkg("h1unpack", (3, 6, 0), Library, 33, &["h1io", "h1bank"]).lang(Language::Fortran),
        // ---- Monte Carlo generators ------------------------------------
        pkg(
            "django",
            (1, 4, 24),
            Generator,
            50,
            &["h1util", "h1steer", "h1cern"],
        )
        .lang(Language::Fortran)
        .with_trait(needs_cernlib()),
        pkg(
            "rapgap",
            (3, 1, 0),
            Generator,
            55,
            &["h1util", "h1steer", "h1cern"],
        )
        .lang(Language::Fortran)
        .with_trait(needs_cernlib()),
        pkg("pythia6", (6, 4, 24), Generator, 75, &["h1steer"]).lang(Language::Fortran),
        pkg("lepto", (6, 5, 1), Generator, 35, &["h1steer"]).lang(Language::Fortran),
        pkg("ariadne", (4, 12, 0), Generator, 30, &["h1steer"]).lang(Language::Fortran),
        pkg("herwig", (6, 5, 0), Generator, 70, &["h1steer"]).lang(Language::Fortran),
        pkg("grape", (1, 1, 0), Generator, 25, &["h1steer"]).lang(Language::Fortran),
        pkg("epcompt", (1, 0, 0), Generator, 15, &["h1steer"]).lang(Language::Fortran),
        pkg("phojet", (1, 12, 0), Generator, 40, &["h1steer"]).lang(Language::Fortran),
        pkg("dvcsgen", (1, 0, 0), Generator, 12, &["h1steer"]).lang(Language::Fortran),
        // ---- detector simulation ----------------------------------------
        pkg("h1gean", (3, 21, 0), Simulation, 95, &["h1geom", "h1cern"])
            .lang(Language::Fortran)
            .with_trait(needs_cernlib()),
        pkg(
            "h1sim",
            (8, 0, 0),
            Simulation,
            120,
            &["h1gean", "h1cal", "h1track"],
        )
        .lang(Language::Fortran),
        pkg("h1digi", (4, 2, 0), Simulation, 45, &["h1sim"]).lang(Language::Fortran),
        pkg("h1noise", (2, 0, 0), Simulation, 18, &["h1cal"]).lang(Language::Fortran),
        pkg(
            "h1fast",
            (2, 5, 0),
            Simulation,
            40,
            &["h1geom", "h1cal", "h1track"],
        )
        .lang(Language::Fortran),
        pkg("h1simdb", (1, 3, 0), Simulation, 15, &["h1db"]).lang(Language::C),
        pkg("h1align", (2, 1, 0), Simulation, 25, &["h1track", "h1db"]).lang(Language::Fortran),
        pkg("h1deadmat", (1, 1, 0), Simulation, 10, &["h1geom"]).lang(Language::Fortran),
        // ---- reconstruction ---------------------------------------------
        pkg(
            "h1rec",
            (10, 3, 0),
            Reconstruction,
            150,
            &["h1cal", "h1track", "h1trig"],
        )
        .lang(Language::Fortran),
        pkg(
            "h1calrec",
            (6, 0, 0),
            Reconstruction,
            65,
            &["h1cal", "h1rec"],
        )
        .lang(Language::Fortran),
        pkg(
            "h1trackrec",
            (7, 2, 0),
            Reconstruction,
            85,
            &["h1track", "h1rec"],
        )
        .lang(Language::Fortran),
        pkg(
            "h1vertexrec",
            (3, 1, 0),
            Reconstruction,
            35,
            &["h1vertex", "h1rec"],
        )
        .lang(Language::Fortran),
        pkg("h1muonrec", (4, 0, 0), Reconstruction, 45, &["h1rec"]).lang(Language::Fortran),
        pkg("h1jetrec", (3, 4, 0), Reconstruction, 40, &["h1calrec"]).lang(Language::Fortran),
        pkg("h1elecrec", (4, 2, 0), Reconstruction, 38, &["h1calrec"]).lang(Language::Fortran),
        pkg(
            "h1hfsrec",
            (2, 2, 0),
            Reconstruction,
            30,
            &["h1calrec", "h1trackrec"],
        )
        .lang(Language::Fortran),
        pkg("h1kine", (3, 0, 0), Reconstruction, 25, &["h1rec"]).lang(Language::Fortran),
        pkg("h1pid", (2, 6, 0), Reconstruction, 35, &["h1trackrec"]).lang(Language::Fortran),
        pkg("h1qual", (2, 0, 0), Reconstruction, 20, &["h1rec"]).lang(Language::Fortran),
        pkg(
            "h1dst",
            (5, 1, 0),
            Reconstruction,
            60,
            &["h1rec", "h1bank", "h1unpack"],
        )
        .lang(Language::Fortran),
        pkg("h1pot", (2, 3, 0), Reconstruction, 22, &["h1dst"]).lang(Language::Fortran),
        pkg("h1dmis", (1, 2, 0), Reconstruction, 14, &["h1rec"]).lang(Language::Fortran),
        // Level-4/5 trigger reconstruction; pre-C99 code.
        pkg("h1l45", (3, 0, 0), Reconstruction, 55, &["h1trig", "h1rec"])
            .lang(Language::C)
            .with_trait(CodeTrait::ImplicitFunctionDecl),
        pkg("h1clas", (2, 1, 0), Reconstruction, 26, &["h1rec"]).lang(Language::Fortran),
        // ---- analysis / OO layer ----------------------------------------
        {
            let mut p = pkg("h1oo", (4, 0, 4), Analysis, 200, &["h1dst"]).lang(Language::Cxx);
            for t in uses_root5() {
                p = p.with_trait(t);
            }
            p
        },
        {
            let mut p = pkg("h1micro", (3, 2, 0), Analysis, 70, &["h1oo"]).lang(Language::Cxx);
            for t in uses_root5() {
                p = p.with_trait(t);
            }
            p
        },
        pkg("h1skim", (2, 0, 0), Analysis, 30, &["h1micro"]).lang(Language::Cxx),
        pkg("h1phys", (3, 1, 0), Analysis, 55, &["h1micro"]).lang(Language::Cxx),
        // Legacy analysis framework with pre-standard C++ headers.
        pkg("h1elan", (8, 2, 0), Analysis, 90, &["h1dst", "h1hist"])
            .lang(Language::Cxx)
            .with_trait(CodeTrait::PreStandardCxx),
        pkg("h1hqsel", (1, 5, 0), Analysis, 25, &["h1micro"]).lang(Language::Cxx),
        pkg("h1jetsel", (1, 3, 0), Analysis, 22, &["h1micro"]).lang(Language::Cxx),
        pkg("h1diffsel", (1, 2, 0), Analysis, 20, &["h1micro"]).lang(Language::Cxx),
        pkg("h1lowq2", (2, 0, 0), Analysis, 28, &["h1micro"]).lang(Language::Cxx),
        pkg("h1highq2", (2, 1, 0), Analysis, 30, &["h1micro"]).lang(Language::Cxx),
        pkg("h1ccana", (1, 8, 0), Analysis, 32, &["h1micro"]).lang(Language::Cxx),
        pkg("h1ncana", (1, 9, 0), Analysis, 34, &["h1micro"]).lang(Language::Cxx),
        pkg("h1phpana", (1, 4, 0), Analysis, 26, &["h1micro"]).lang(Language::Cxx),
        pkg("h1fldet", (1, 0, 0), Analysis, 15, &["h1micro"]).lang(Language::Cxx),
        pkg("h1alphas", (1, 1, 0), Analysis, 18, &["h1jetsel"]).lang(Language::Cxx),
        pkg("h1pdf", (1, 2, 0), Analysis, 24, &["h1ncana"]).lang(Language::Cxx),
        pkg("h1charm", (1, 6, 0), Analysis, 28, &["h1micro"]).lang(Language::Cxx),
        pkg("h1beauty", (1, 3, 0), Analysis, 26, &["h1charm"]).lang(Language::Cxx),
        pkg("h1tau", (1, 0, 0), Analysis, 16, &["h1micro"]).lang(Language::Cxx),
        pkg("h1spec", (1, 1, 0), Analysis, 14, &["h1micro"]).lang(Language::Cxx),
        // Fitting package; the only GSL user in the stack.
        pkg("h1fit", (2, 2, 0), Analysis, 35, &["h1hist"])
            .lang(Language::Cxx)
            .with_trait(CodeTrait::RequiresExternal {
                name: "gsl".into(),
                req: VersionReq::AtLeast(Version::new(1, 10, 0)),
            }),
        pkg("h1unfold", (1, 4, 0), Analysis, 20, &["h1fit"]).lang(Language::Cxx),
        pkg("h1syst", (1, 2, 0), Analysis, 18, &["h1fit"]).lang(Language::Cxx),
        pkg("h1plot", (2, 0, 0), Analysis, 22, &["h1hist", "h1graph"]).lang(Language::Cxx),
        // ---- tools --------------------------------------------------------
        // Event display reading a private /proc interface; dies on SL7.
        pkg("h1disp", (5, 2, 0), Tool, 65, &["h1graph", "h1dst"])
            .lang(Language::Cxx)
            .with_trait(CodeTrait::LegacySyscall { breaks_at_abi: 7 }),
        pkg("h1mon", (3, 0, 0), Tool, 25, &["h1util", "h1hist"]).lang(Language::C),
        pkg("h1prod", (4, 1, 0), Tool, 40, &["h1dst", "h1steer"]).lang(Language::Fortran),
        pkg("h1batch", (2, 2, 0), Tool, 18, &["h1steer"]).lang(Language::C),
        pkg("h1copy", (1, 5, 0), Tool, 10, &["h1io"]).lang(Language::C),
        pkg("h1check", (2, 0, 0), Tool, 15, &["h1dst"]).lang(Language::Fortran),
        pkg("h1valid", (3, 3, 0), Tool, 30, &["h1dst", "h1hist"]).lang(Language::Fortran),
        pkg("h1dqm", (2, 4, 0), Tool, 28, &["h1hist", "h1db"]).lang(Language::Cxx),
        pkg("h1calib", (3, 1, 0), Tool, 35, &["h1cal", "h1db"]).lang(Language::Fortran),
        pkg("h1webmon", (1, 2, 0), Tool, 12, &["h1mon"]).lang(Language::C),
        pkg("h1log", (1, 0, 0), Tool, 8, &["h1util"]).lang(Language::C),
        pkg("h1stat", (1, 4, 0), Tool, 14, &["h1hist"]).lang(Language::Fortran),
        pkg("h1trans", (1, 1, 0), Tool, 12, &["h1io"]).lang(Language::Fortran),
        pkg("h1merge", (1, 3, 0), Tool, 10, &["h1io"]).lang(Language::Fortran),
        pkg("h1split", (1, 1, 0), Tool, 9, &["h1io"]).lang(Language::Fortran),
        pkg("h1index", (1, 0, 0), Tool, 11, &["h1io", "h1db"]).lang(Language::C),
        pkg("h1cat", (1, 0, 0), Tool, 6, &["h1io"]).lang(Language::C),
        pkg("h1dump", (1, 2, 0), Tool, 8, &["h1bank"]).lang(Language::Fortran),
        pkg("h1diff", (1, 1, 0), Tool, 9, &["h1io"]).lang(Language::C),
        pkg("h1conv", (1, 0, 0), Tool, 10, &["h1io"]).lang(Language::Fortran),
        pkg("h1arch", (1, 1, 0), Tool, 12, &["h1io"]).lang(Language::C),
        pkg("h1tape", (2, 0, 0), Tool, 14, &["h1io"]).lang(Language::Fortran),
        pkg("h1grid", (1, 2, 0), Tool, 16, &["h1batch"]).lang(Language::C),
        pkg("h1doc", (1, 0, 0), Tool, 5, &["h1util"]).lang(Language::C),
    ];
    debug_assert_eq!(packages.len(), 100, "H1 ships ~100 packages");
    packages.sort_by(|a, b| a.id.cmp(&b.id));
    packages
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_build::PackageId;
    use sp_core::TestCategory;

    #[test]
    fn h1_has_100_packages() {
        assert_eq!(h1_packages().len(), 100);
    }

    #[test]
    fn graph_is_coherent() {
        let exp = h1_experiment();
        assert!(exp.graph.validate().is_ok());
    }

    #[test]
    fn figure2_structure() {
        let exp = h1_experiment();
        let breakdown = exp.suite.breakdown();
        assert_eq!(breakdown.count(TestCategory::Compilation), 100);
        assert_eq!(breakdown.count(TestCategory::UnitCheck), 300);
        assert_eq!(breakdown.count(TestCategory::StandaloneExecutable), 12);
        assert_eq!(breakdown.count(TestCategory::AnalysisChain), 5);
    }

    #[test]
    fn latent_bug_reaches_the_dst_chain() {
        let exp = h1_experiment();
        // h1dst links h1bank; the 64-bit bug must flow into chain stages.
        let traits = exp.effective_runtime_traits(&PackageId::new("h1dst"));
        assert!(traits
            .iter()
            .any(|t| matches!(t, CodeTrait::PointerSizeAssumption { .. })));
        // And further up into the analysis layer.
        let traits = exp.effective_runtime_traits(&PackageId::new("h1ncana"));
        assert!(traits
            .iter()
            .any(|t| matches!(t, CodeTrait::PointerSizeAssumption { .. })));
    }

    #[test]
    fn cernlib_users_exist() {
        let exp = h1_experiment();
        let users: Vec<&str> = exp
            .graph
            .packages()
            .filter(|p| p.uses_external("cernlib"))
            .map(|p| p.id.as_str())
            .collect();
        assert!(users.contains(&"django"));
        assert!(users.contains(&"h1gean"));
    }

    #[test]
    fn root_users_are_the_oo_layer() {
        let exp = h1_experiment();
        let users: Vec<&str> = exp
            .graph
            .packages()
            .filter(|p| p.uses_external("root"))
            .map(|p| p.id.as_str())
            .collect();
        assert_eq!(users, vec!["h1micro", "h1oo"]);
    }
}
