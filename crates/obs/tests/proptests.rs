//! Property-based tests for the run-history query engine.
//!
//! The contract under test: for any run log, the **warm-restored** history
//! (loaded from the persisted `index.spws` snapshot) must answer every
//! query **byte-identically** to the **cold** history rebuilt from the
//! SPRL records — same results, same order, same encoding — and both must
//! agree with a plain scan of the replayed records.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sp_obs::{CellQuery, HistorySource, RunHistory};
use sp_store::{CellRecord, OsFs, RunLog, StoreFs};

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sp-obs-prop-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Strategy for one cell outcome drawn from a small vocabulary, so the
/// generated queries below actually select non-trivial subsets.
fn cell_strategy() -> impl Strategy<Value = CellRecord> {
    (
        1u64..4,                // campaign
        0u32..3,                // experiment index
        0u32..3,                // image index
        0u32..3,                // repetition
        0u32..4,                // status
        0u32..50,               // passed
        0u32..5,                // failed
        (0u64..1_000, 0u32..3), // timestamp, worker index
    )
        .prop_map(
            |(campaign, exp, img, repetition, status, passed, failed, (timestamp, worker))| {
                CellRecord {
                    campaign,
                    experiment: format!("exp-{exp}"),
                    group: String::new(),
                    image_label: format!("img-{img}"),
                    repetition,
                    run_id: 0, // assigned uniquely per record below
                    status: status as u8,
                    passed,
                    failed,
                    skipped: 0,
                    timestamp,
                    worker: format!("w-{worker}"),
                    lease_token: 1 + campaign,
                }
            },
        )
}

proptest! {
    /// Cold rebuild vs warm restore: for any record set and any query in
    /// a covering family (full scan, each single-key filter, a time
    /// window, and a conjunction), the warm-restored history returns
    /// byte-identical results to the cold rebuild — and matches a plain
    /// linear scan of the replayed log.
    #[test]
    fn warm_restore_answers_every_query_byte_identically(
        mut cells in prop::collection::vec(cell_strategy(), 0..24),
        since in 0u64..1_000,
        span in 0u64..500,
    ) {
        for (i, cell) in cells.iter_mut().enumerate() {
            cell.run_id = 1 + i as u64;
        }
        let dir = temp_dir("query");
        let log = RunLog::open(&dir).expect("open run log");
        log.append_batch(&cells).expect("append generated cells");

        let cold = RunHistory::rebuild(&log);
        let os_fs: Arc<dyn StoreFs> = Arc::new(OsFs);
        cold.save_warm(&log, os_fs.as_ref()).expect("persist warm index");
        let warm = RunHistory::open(&log);
        prop_assert_eq!(warm.source(), HistorySource::Warm, "warm index must be trusted");

        let queries = vec![
            CellQuery::all(),
            CellQuery::all().experiment("exp-0"),
            CellQuery::all().experiment("exp-7"),
            CellQuery::all().image("img-1"),
            CellQuery::all().status(CellRecord::STATUS_FAIL),
            CellQuery::all().campaign(2),
            CellQuery::all().window(since, since + span),
            CellQuery::all()
                .experiment("exp-1")
                .status(CellRecord::STATUS_PASS)
                .window(since, since + span),
        ];
        for query in &queries {
            let cold_results = cold.query(query);
            let warm_results = warm.query(query);
            prop_assert_eq!(
                RunHistory::encode_results(&cold_results),
                RunHistory::encode_results(&warm_results),
                "cold and warm results must be byte-identical"
            );
            // Both must equal the plain scan oracle, in log order.
            let scanned: Vec<&CellRecord> = cold
                .records()
                .iter()
                .filter(|(_, r)| query.matches(r))
                .map(|(_, r)| r)
                .collect();
            prop_assert_eq!(
                RunHistory::encode_results(&cold_results),
                RunHistory::encode_results(&scanned),
                "indexed query must equal the linear-scan oracle"
            );
        }
        prop_assert_eq!(cold.summary(), warm.summary());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The persisted warm index survives a byte flip anywhere in the file
    /// only by falling back to a cold rebuild — it never loads a damaged
    /// index as warm truth.
    #[test]
    fn damaged_warm_index_falls_back_to_cold(
        mut cells in prop::collection::vec(cell_strategy(), 1..10),
        flip_frac in 0.0f64..1.0,
    ) {
        for (i, cell) in cells.iter_mut().enumerate() {
            cell.run_id = 1 + i as u64;
        }
        let dir = temp_dir("damage");
        let log = RunLog::open(&dir).expect("open run log");
        log.append_batch(&cells).expect("append generated cells");
        let cold = RunHistory::rebuild(&log);
        let os_fs: Arc<dyn StoreFs> = Arc::new(OsFs);
        cold.save_warm(&log, os_fs.as_ref()).expect("persist warm index");

        let index_path = dir.join(sp_obs::query::WARM_INDEX_FILE);
        let mut bytes = std::fs::read(&index_path).expect("warm index bytes");
        let flip = (flip_frac * bytes.len() as f64) as usize % bytes.len();
        bytes[flip] ^= 0xff;
        std::fs::write(&index_path, &bytes).expect("damage warm index");

        let reloaded = RunHistory::open(&log);
        prop_assert_eq!(
            reloaded.source(),
            HistorySource::Cold,
            "a damaged index must never be trusted"
        );
        let all = CellQuery::all();
        prop_assert_eq!(
            RunHistory::encode_results(&reloaded.query(&all)),
            RunHistory::encode_results(&cold.query(&all)),
            "the fallback rebuild must equal the original cold history"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
