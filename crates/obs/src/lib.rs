//! # sp-obs — observability for the sp-system
//!
//! Ozerov & South's §3.3 validation interface needs more than the
//! current state of each cell: operators drilling into "did anything
//! change since the last migration?" need the run *history*, and a fleet
//! under chaos testing needs live visibility into what its schedulers,
//! queues and caches are doing. This crate is that layer:
//!
//! * [`metrics`] — a cheap process-wide registry of named monotonic
//!   counters, gauges and fixed-bucket latency histograms, with
//!   [`MetricsSnapshot`] carrying the same snapshot/merge/wire-codec
//!   posture as the fleet's `WorkerStats`.
//! * [`trace`] — the [`TraceSink`] span/event API the instrumented
//!   components emit into: null by default (one relaxed atomic load per
//!   disabled call site), ring-buffered in memory for drivers and tests.
//! * [`query`] — [`RunHistory`], the read-optimized query engine over
//!   the durable `SPRL` run log (`sp_store::run_log`): secondary indexes
//!   by experiment, image, status and time window, summary dashboards,
//!   single-cell drill-down and regression timelines, restoring
//!   warm-index snapshots byte-identically across restarts.
//!
//! Dependency direction: this crate sits directly above `sp-store` and
//! below everything that does work (`sp-exec`, `sp-core`, `sp-report`).
//! Store-internal components therefore never push here; their existing
//! stats structs are *sampled* into the registry via [`instrument`] from
//! the fleet call sites that can see both.

pub mod metrics;
pub mod query;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use query::{open_history, CellQuery, HistorySource, HistorySummary, RunHistory, StatusChange};
pub use trace::{MemSink, NullSink, Span, TraceEvent, TraceSink};

/// The process-wide metrics registry every instrumented component bumps.
/// Tests that need isolation construct their own [`MetricsRegistry`].
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Sampling adapters mirroring store-internal stats structs into a
/// registry as gauges. The store cannot depend on this crate, so the
/// fleet components that hold both a queue/cache handle and the registry
/// call these at natural sampling points (poll rounds, drain ends).
pub mod instrument {
    use super::metrics::MetricsRegistry;
    use sp_store::digest_cache::DigestCacheStats;
    use sp_store::wq::QueueStats;

    /// Mirrors a [`QueueStats`] reading into `store.wq.*` gauges.
    pub fn sample_queue_stats(registry: &MetricsRegistry, stats: &QueueStats) {
        registry
            .gauge("store.wq.submissions")
            .set(stats.submissions as i64);
        registry
            .gauge("store.wq.completed")
            .set(stats.completed as i64);
        registry
            .gauge("store.wq.leases_issued")
            .set(stats.leases_issued as i64);
        registry
            .gauge("store.wq.reclaims")
            .set(stats.reclaims as i64);
        registry
            .gauge("store.wq.corrupt_dropped")
            .set(stats.corrupt_dropped as i64);
        registry
            .gauge("store.wq.poisoned")
            .set(stats.poisoned as i64);
        registry
            .gauge("store.wq.quarantined")
            .set(stats.quarantined as i64);
    }

    /// Mirrors a memo/cache hit-rate reading into `<prefix>.{hits,misses,
    /// entries}` gauges (prefix e.g. `store.memo.chain`).
    pub fn sample_cache_stats(registry: &MetricsRegistry, prefix: &str, stats: &DigestCacheStats) {
        registry
            .gauge(&format!("{prefix}.hits"))
            .set(stats.hits as i64);
        registry
            .gauge(&format!("{prefix}.misses"))
            .set(stats.misses as i64);
        registry
            .gauge(&format!("{prefix}.entries"))
            .set(stats.entries as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_samplers_mirror_stats() {
        global().counter("lib.test.counter").add(2);
        assert!(global().snapshot().counter("lib.test.counter") >= 2);

        let registry = MetricsRegistry::new();
        let queue_stats = sp_store::wq::QueueStats {
            submissions: 4,
            completed: 3,
            leases_issued: 5,
            reclaims: 1,
            corrupt_dropped: 2,
            poisoned: 1,
            quarantined: 2,
        };
        instrument::sample_queue_stats(&registry, &queue_stats);
        let cache_stats = sp_store::digest_cache::DigestCacheStats {
            hits: 9,
            misses: 3,
            entries: 6,
        };
        instrument::sample_cache_stats(&registry, "store.memo.chain", &cache_stats);
        let snap = registry.snapshot();
        assert_eq!(snap.gauges["store.wq.reclaims"], 1);
        assert_eq!(snap.gauges["store.wq.quarantined"], 2);
        assert_eq!(snap.gauges["store.memo.chain.hits"], 9);
        assert_eq!(snap.gauges["store.memo.chain.misses"], 3);
    }
}
