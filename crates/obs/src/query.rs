//! The read-optimized query engine over the `SPRL` run log.
//!
//! [`RunHistory`] holds the deduplicated cell records of one run log in
//! memory together with secondary indexes — by experiment, by image
//! label, by status, and time-ordered — so the §3.3 "did anything change
//! since the last migration?" questions are answered without rescanning
//! the log: summary dashboards, single-cell drill-down, and regression
//! timelines.
//!
//! ## Cold vs warm, byte-identically
//!
//! A history can always be rebuilt **cold** with [`RunHistory::rebuild`]
//! (replay the log, build indexes). [`RunHistory::save_warm`] conserves
//! the records *and* the index postings into the store's digest-guarded
//! `SPWS` snapshot format next to the log; [`RunHistory::open`] restores
//! them without a rebuild. The warm path is trusted only when every entry
//! digest validates, the postings are structurally sound, and the saved
//! high-water mark matches the log on disk — anything else falls back to
//! a cold rebuild. Query results over a warm-restored history are
//! byte-identical to the cold rebuild (property-tested in this crate).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use sp_store::run_log::{CellRecord, RunLog};
use sp_store::snapshot::{wire, Snapshot, SnapshotSection};
use sp_store::vfs::StoreFs;

/// File name of the warm index snapshot inside the run-log directory.
pub const WARM_INDEX_FILE: &str = "index.spws";

const SECTION_RECORDS: &str = "runlog-records";
const SECTION_POSTINGS: &str = "runlog-postings";
const SECTION_META: &str = "runlog-meta";

/// Filter over the history. Empty query matches everything; filled
/// fields conjoin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellQuery {
    /// Match this experiment name.
    pub experiment: Option<String>,
    /// Match this image label.
    pub image_label: Option<String>,
    /// Match this status code (see [`CellRecord::STATUS_PASS`] etc.).
    pub status: Option<u8>,
    /// Match this campaign sequence.
    pub campaign: Option<u64>,
    /// Match cells with `timestamp >= since`.
    pub since: Option<u64>,
    /// Match cells with `timestamp <= until`.
    pub until: Option<u64>,
}

impl CellQuery {
    /// The match-everything query.
    pub fn all() -> CellQuery {
        CellQuery::default()
    }

    /// Restricts to one experiment.
    pub fn experiment(mut self, name: &str) -> CellQuery {
        self.experiment = Some(name.to_string());
        self
    }

    /// Restricts to one image label.
    pub fn image(mut self, label: &str) -> CellQuery {
        self.image_label = Some(label.to_string());
        self
    }

    /// Restricts to one status code.
    pub fn status(mut self, status: u8) -> CellQuery {
        self.status = Some(status);
        self
    }

    /// Restricts to one campaign.
    pub fn campaign(mut self, seq: u64) -> CellQuery {
        self.campaign = Some(seq);
        self
    }

    /// Restricts to a time window (inclusive bounds; pass `u64::MAX` /
    /// `0` for open ends).
    pub fn window(mut self, since: u64, until: u64) -> CellQuery {
        self.since = Some(since);
        self.until = Some(until);
        self
    }

    /// Whether `record` satisfies every set filter (the conjunction the
    /// indexed [`RunHistory::query`] must agree with on a linear scan).
    pub fn matches(&self, record: &CellRecord) -> bool {
        self.experiment
            .as_deref()
            .is_none_or(|e| record.experiment == e)
            && self
                .image_label
                .as_deref()
                .is_none_or(|i| record.image_label == i)
            && self.status.is_none_or(|s| record.status == s)
            && self.campaign.is_none_or(|c| record.campaign == c)
            && self.since.is_none_or(|t| record.timestamp >= t)
            && self.until.is_none_or(|t| record.timestamp <= t)
    }
}

/// One status transition in a cell's timeline (see
/// [`RunHistory::regressions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusChange {
    /// Experiment of the cell.
    pub experiment: String,
    /// Validation group of the cell.
    pub group: String,
    /// Image label of the cell.
    pub image_label: String,
    /// The earlier record.
    pub from: CellRecord,
    /// The later record whose status differs.
    pub to: CellRecord,
}

impl StatusChange {
    /// True when the transition worsened (pass → warnings → fail →
    /// not-run; status codes are ordered by severity).
    pub fn is_regression(&self) -> bool {
        self.to.status > self.from.status
    }
}

/// Aggregate view for the summary dashboard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistorySummary {
    /// Cell records in the history (post-dedup).
    pub cells: usize,
    /// Distinct campaigns seen.
    pub campaigns: usize,
    /// Distinct experiments seen.
    pub experiments: usize,
    /// Distinct image labels seen.
    pub images: usize,
    /// Distinct workers that published outcomes.
    pub workers: usize,
    /// Cells per status code, indexed by the code.
    pub by_status: [usize; 4],
    /// Earliest cell timestamp, when any.
    pub first_timestamp: Option<u64>,
    /// Latest cell timestamp, when any.
    pub last_timestamp: Option<u64>,
    /// Corrupt records dropped at replay (cold) or conserved from the
    /// replay that built the warm index.
    pub corrupt_dropped: usize,
    /// Duplicate records collapsed by the dedup rule.
    pub duplicates_dropped: usize,
}

/// How a history instance came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistorySource {
    /// Rebuilt by replaying the log.
    Cold,
    /// Restored from a validated warm index snapshot.
    Warm,
}

/// In-memory, indexed run history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHistory {
    /// (log sequence, record) in log order — the canonical result order
    /// of every query.
    records: Vec<(u64, CellRecord)>,
    by_experiment: BTreeMap<String, Vec<u32>>,
    by_image: BTreeMap<String, Vec<u32>>,
    by_status: BTreeMap<u8, Vec<u32>>,
    /// (timestamp, record index) sorted — the time-window index.
    by_time: Vec<(u64, u32)>,
    corrupt_dropped: usize,
    duplicates_dropped: usize,
    source: HistorySource,
}

impl RunHistory {
    /// Builds a history (with indexes) from already-deduplicated
    /// `(log seq, record)` pairs in log order.
    pub fn from_records(records: Vec<(u64, CellRecord)>) -> RunHistory {
        let mut history = RunHistory {
            records,
            by_experiment: BTreeMap::new(),
            by_image: BTreeMap::new(),
            by_status: BTreeMap::new(),
            by_time: Vec::new(),
            corrupt_dropped: 0,
            duplicates_dropped: 0,
            source: HistorySource::Cold,
        };
        history.build_indexes();
        history
    }

    /// Cold path: replays the log and builds every index.
    pub fn rebuild(log: &RunLog) -> RunHistory {
        let replay = log.replay();
        let mut history = RunHistory::from_records(replay.records);
        history.corrupt_dropped = replay.corrupt_dropped;
        history.duplicates_dropped = replay.duplicates_dropped;
        history
    }

    /// Opens the history over `log`: restores the warm index snapshot
    /// when present, validated, and exactly as fresh as the log on disk;
    /// otherwise rebuilds cold. Use [`source`](Self::source) to see which
    /// path ran.
    pub fn open(log: &RunLog) -> RunHistory {
        RunHistory::open_with(log, Arc::new(sp_store::vfs::OsFs))
    }

    /// [`open`](Self::open) over an explicit [`StoreFs`].
    pub fn open_with(log: &RunLog, fs: Arc<dyn StoreFs>) -> RunHistory {
        let path = log.root().join(WARM_INDEX_FILE);
        if let Ok(bytes) = fs.read(&path) {
            if let Some(history) = RunHistory::decode_warm(&bytes, log.max_seq()) {
                return history;
            }
        }
        RunHistory::rebuild(log)
    }

    /// Conserves the records and index postings as a digest-guarded warm
    /// snapshot next to the log, durably and atomically.
    pub fn save_warm(&self, log: &RunLog, fs: &dyn StoreFs) -> std::io::Result<()> {
        self.to_snapshot()
            .write_durable(fs, &log.root().join(WARM_INDEX_FILE))
    }

    /// Whether this instance was restored warm or rebuilt cold.
    pub fn source(&self) -> HistorySource {
        self.source
    }

    /// The full record list in log order.
    pub fn records(&self) -> &[(u64, CellRecord)] {
        &self.records
    }

    /// Runs a query; results come back in log order (deterministic for a
    /// given log, cold or warm).
    pub fn query(&self, query: &CellQuery) -> Vec<&CellRecord> {
        // Pick the most selective posting list available, then filter the
        // survivors against the whole conjunction.
        let candidates: Vec<u32> = if let Some(exp) = query.experiment.as_deref() {
            self.by_experiment.get(exp).cloned().unwrap_or_default()
        } else if let Some(img) = query.image_label.as_deref() {
            self.by_image.get(img).cloned().unwrap_or_default()
        } else if let Some(status) = query.status {
            self.by_status.get(&status).cloned().unwrap_or_default()
        } else if query.since.is_some() || query.until.is_some() {
            let lo = query.since.unwrap_or(0);
            let hi = query.until.unwrap_or(u64::MAX);
            let start = self.by_time.partition_point(|(ts, _)| *ts < lo);
            let mut hits: Vec<u32> = self.by_time[start..]
                .iter()
                .take_while(|(ts, _)| *ts <= hi)
                .map(|(_, idx)| *idx)
                .collect();
            hits.sort_unstable();
            hits
        } else {
            (0..self.records.len() as u32).collect()
        };
        candidates
            .into_iter()
            .map(|idx| &self.records[idx as usize].1)
            .filter(|record| query.matches(record))
            .collect()
    }

    /// Single-cell drill-down: the full timeline of one (experiment,
    /// group, image) cell, ordered by (timestamp, campaign, repetition).
    pub fn cell_timeline(&self, experiment: &str, group: &str, image: &str) -> Vec<&CellRecord> {
        let mut timeline: Vec<&CellRecord> = self
            .by_experiment
            .get(experiment)
            .map(|postings| {
                postings
                    .iter()
                    .map(|idx| &self.records[*idx as usize].1)
                    .filter(|r| r.group == group && r.image_label == image)
                    .collect()
            })
            .unwrap_or_default();
        timeline.sort_by_key(|r| (r.timestamp, r.campaign, r.repetition, r.run_id));
        timeline
    }

    /// Every status transition, cell by cell, across the whole history —
    /// the regression timeline. Transitions are ordered by cell identity
    /// then time; filter with [`StatusChange::is_regression`] for the
    /// strictly-worsening ones.
    pub fn status_changes(&self) -> Vec<StatusChange> {
        let mut by_cell: BTreeMap<(&str, &str, &str), Vec<&CellRecord>> = BTreeMap::new();
        for (_, record) in &self.records {
            by_cell
                .entry((&record.experiment, &record.group, &record.image_label))
                .or_default()
                .push(record);
        }
        let mut changes = Vec::new();
        for ((experiment, group, image_label), mut timeline) in by_cell {
            timeline.sort_by_key(|r| (r.timestamp, r.campaign, r.repetition, r.run_id));
            for pair in timeline.windows(2) {
                if pair[0].status != pair[1].status {
                    changes.push(StatusChange {
                        experiment: experiment.to_string(),
                        group: group.to_string(),
                        image_label: image_label.to_string(),
                        from: pair[0].clone(),
                        to: pair[1].clone(),
                    });
                }
            }
        }
        changes
    }

    /// The strictly-worsening subset of [`status_changes`](Self::status_changes).
    pub fn regressions(&self) -> Vec<StatusChange> {
        self.status_changes()
            .into_iter()
            .filter(StatusChange::is_regression)
            .collect()
    }

    /// Aggregates the history for the summary dashboard.
    pub fn summary(&self) -> HistorySummary {
        let mut summary = HistorySummary {
            cells: self.records.len(),
            campaigns: self
                .records
                .iter()
                .map(|(_, r)| r.campaign)
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            experiments: self.by_experiment.len(),
            images: self.by_image.len(),
            workers: self
                .records
                .iter()
                .map(|(_, r)| r.worker.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            corrupt_dropped: self.corrupt_dropped,
            duplicates_dropped: self.duplicates_dropped,
            ..HistorySummary::default()
        };
        for (_, record) in &self.records {
            summary.by_status[(record.status.min(3)) as usize] += 1;
            let ts = record.timestamp;
            summary.first_timestamp = Some(summary.first_timestamp.map_or(ts, |t| t.min(ts)));
            summary.last_timestamp = Some(summary.last_timestamp.map_or(ts, |t| t.max(ts)));
        }
        summary
    }

    /// Canonical byte encoding of a query result — the byte-identity
    /// oracle for cold-vs-warm equivalence: count, then each record's
    /// framed `SPRL` bytes.
    pub fn encode_results(results: &[&CellRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u32(&mut out, results.len() as u32);
        for record in results {
            wire::put_bytes(&mut out, &record.encode());
        }
        out
    }

    // ---- warm persistence -------------------------------------------

    fn build_indexes(&mut self) {
        self.by_experiment.clear();
        self.by_image.clear();
        self.by_status.clear();
        self.by_time.clear();
        for (idx, (_, record)) in self.records.iter().enumerate() {
            let idx = idx as u32;
            self.by_experiment
                .entry(record.experiment.clone())
                .or_default()
                .push(idx);
            self.by_image
                .entry(record.image_label.clone())
                .or_default()
                .push(idx);
            self.by_status.entry(record.status).or_default().push(idx);
            self.by_time.push((record.timestamp, idx));
        }
        self.by_time.sort_unstable();
    }

    fn to_snapshot(&self) -> Snapshot {
        let mut records = SnapshotSection::new(SECTION_RECORDS);
        for (seq, record) in &self.records {
            records.push(seq.to_le_bytes().to_vec(), record.encode());
        }
        let mut postings = SnapshotSection::new(SECTION_POSTINGS);
        for (name, list) in &self.by_experiment {
            postings.push(format!("exp/{name}").into_bytes(), encode_postings(list));
        }
        for (name, list) in &self.by_image {
            postings.push(format!("img/{name}").into_bytes(), encode_postings(list));
        }
        for (status, list) in &self.by_status {
            postings.push(
                format!("status/{status}").into_bytes(),
                encode_postings(list),
            );
        }
        let mut time = Vec::with_capacity(self.by_time.len() * 12);
        for (ts, idx) in &self.by_time {
            wire::put_u64(&mut time, *ts);
            wire::put_u32(&mut time, *idx);
        }
        postings.push(b"time".to_vec(), time);

        let mut meta = SnapshotSection::new(SECTION_META);
        let mut counts = Vec::new();
        wire::put_u64(&mut counts, self.records.len() as u64);
        wire::put_u64(
            &mut counts,
            self.records.last().map(|(seq, _)| *seq).unwrap_or(0),
        );
        wire::put_u64(&mut counts, self.corrupt_dropped as u64);
        wire::put_u64(&mut counts, self.duplicates_dropped as u64);
        meta.push(b"counts".to_vec(), counts);

        Snapshot {
            sections: vec![records, postings, meta],
        }
    }

    /// Restores a history from warm-index bytes. `None` on *any* doubt —
    /// dropped entries, structural damage, postings out of range, or a
    /// high-water mark that disagrees with the live log (`log_max_seq`) —
    /// in which case the caller rebuilds cold.
    fn decode_warm(bytes: &[u8], log_max_seq: Option<u64>) -> Option<RunHistory> {
        let (snapshot, report) = Snapshot::decode(bytes).ok()?;
        if report.entries_dropped != 0 {
            return None;
        }
        let meta = snapshot.section(SECTION_META)?;
        let counts = &meta.entries.iter().find(|(k, _)| k == b"counts")?.1;
        let mut cursor = wire::Cursor::new(counts);
        let record_count = cursor.take_u64()? as usize;
        let max_seq = cursor.take_u64()?;
        let corrupt_dropped = cursor.take_u64()? as usize;
        let duplicates_dropped = cursor.take_u64()? as usize;
        if !cursor.finished() || log_max_seq.unwrap_or(0) != max_seq {
            return None;
        }

        let records_section = snapshot.section(SECTION_RECORDS)?;
        if records_section.entries.len() != record_count {
            return None;
        }
        let mut records = Vec::with_capacity(record_count);
        for (key, value) in &records_section.entries {
            let seq = u64::from_le_bytes(key.as_slice().try_into().ok()?);
            records.push((seq, CellRecord::decode(value)?));
        }

        let postings_section = snapshot.section(SECTION_POSTINGS)?;
        let n = records.len() as u32;
        let mut history = RunHistory {
            records,
            by_experiment: BTreeMap::new(),
            by_image: BTreeMap::new(),
            by_status: BTreeMap::new(),
            by_time: Vec::new(),
            corrupt_dropped,
            duplicates_dropped,
            source: HistorySource::Warm,
        };
        for (key, value) in &postings_section.entries {
            let key = std::str::from_utf8(key).ok()?;
            if key == "time" {
                let mut cursor = wire::Cursor::new(value);
                while !cursor.finished() {
                    let ts = cursor.take_u64()?;
                    let idx = cursor.take_u32()?;
                    (idx < n).then_some(())?;
                    history.by_time.push((ts, idx));
                }
            } else {
                let list = decode_postings(value, n)?;
                if let Some(name) = key.strip_prefix("exp/") {
                    history.by_experiment.insert(name.to_string(), list);
                } else if let Some(name) = key.strip_prefix("img/") {
                    history.by_image.insert(name.to_string(), list);
                } else if let Some(status) = key.strip_prefix("status/") {
                    history.by_status.insert(status.parse().ok()?, list);
                } else {
                    return None;
                }
            }
        }
        Some(history)
    }
}

/// Restores the history for a run log rooted at `dir` (convenience for
/// drivers and report CLIs).
pub fn open_history(dir: &Path) -> std::io::Result<RunHistory> {
    let log = RunLog::open(dir)?;
    Ok(RunHistory::open(&log))
}

fn encode_postings(list: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(list.len() * 4);
    for idx in list {
        wire::put_u32(&mut out, *idx);
    }
    out
}

fn decode_postings(bytes: &[u8], n: u32) -> Option<Vec<u32>> {
    let mut cursor = wire::Cursor::new(bytes);
    let mut list = Vec::with_capacity(bytes.len() / 4);
    while !cursor.finished() {
        let idx = cursor.take_u32()?;
        (idx < n).then_some(())?;
        list.push(idx);
    }
    Some(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sp-obs-query-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(
        campaign: u64,
        experiment: &str,
        image: &str,
        run_id: u64,
        status: u8,
        ts: u64,
    ) -> CellRecord {
        CellRecord {
            campaign,
            experiment: experiment.into(),
            group: "reco".into(),
            image_label: image.into(),
            repetition: 0,
            run_id,
            status,
            passed: 5,
            failed: u32::from(status == CellRecord::STATUS_FAIL),
            skipped: 0,
            timestamp: ts,
            worker: "w0".into(),
            lease_token: 1,
        }
    }

    fn sample_history() -> RunHistory {
        RunHistory::from_records(vec![
            (1, record(1, "h1", "sl5", 1, CellRecord::STATUS_PASS, 100)),
            (2, record(1, "zeus", "sl5", 2, CellRecord::STATUS_PASS, 110)),
            (3, record(2, "h1", "sl6", 3, CellRecord::STATUS_FAIL, 200)),
            (
                4,
                record(2, "zeus", "sl6", 4, CellRecord::STATUS_WARNINGS, 210),
            ),
            (5, record(3, "h1", "sl6", 5, CellRecord::STATUS_PASS, 300)),
        ])
    }

    #[test]
    fn queries_filter_and_preserve_log_order() {
        let history = sample_history();
        let all = history.query(&CellQuery::all());
        assert_eq!(all.len(), 5);
        assert_eq!(
            history
                .query(&CellQuery::all().experiment("h1"))
                .iter()
                .map(|r| r.run_id)
                .collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(history.query(&CellQuery::all().image("sl6")).len(), 3);
        assert_eq!(
            history
                .query(&CellQuery::all().status(CellRecord::STATUS_FAIL))
                .iter()
                .map(|r| r.run_id)
                .collect::<Vec<_>>(),
            vec![3]
        );
        assert_eq!(history.query(&CellQuery::all().campaign(2)).len(), 2);
        assert_eq!(
            history
                .query(&CellQuery::all().window(110, 210))
                .iter()
                .map(|r| r.run_id)
                .collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Conjunction across index and filter.
        assert_eq!(
            history
                .query(
                    &CellQuery::all()
                        .experiment("h1")
                        .image("sl6")
                        .window(0, 250)
                )
                .iter()
                .map(|r| r.run_id)
                .collect::<Vec<_>>(),
            vec![3]
        );
        assert!(history
            .query(&CellQuery::all().experiment("cdf"))
            .is_empty());
    }

    #[test]
    fn drill_down_timeline_and_regressions() {
        let history = sample_history();
        let timeline = history.cell_timeline("h1", "reco", "sl6");
        assert_eq!(
            timeline.iter().map(|r| r.run_id).collect::<Vec<_>>(),
            vec![3, 5]
        );
        let changes = history.status_changes();
        // h1/sl6 fail→pass (recovery), plus no same-status transitions.
        assert_eq!(changes.len(), 1);
        assert!(!changes[0].is_regression());
        assert!(history.regressions().is_empty());

        let summary = history.summary();
        assert_eq!(summary.cells, 5);
        assert_eq!(summary.campaigns, 3);
        assert_eq!(summary.experiments, 2);
        assert_eq!(summary.images, 2);
        assert_eq!(summary.by_status[CellRecord::STATUS_PASS as usize], 3);
        assert_eq!(summary.by_status[CellRecord::STATUS_FAIL as usize], 1);
        assert_eq!(summary.first_timestamp, Some(100));
        assert_eq!(summary.last_timestamp, Some(300));
    }

    #[test]
    fn warm_restore_is_byte_identical_and_distrustful() {
        let dir = temp_dir("warm");
        let log = RunLog::open(&dir).unwrap();
        for (_, record) in sample_history().records() {
            log.append(record).unwrap();
        }
        let cold = RunHistory::rebuild(&log);
        cold.save_warm(&log, &sp_store::vfs::OsFs).unwrap();

        let warm = RunHistory::open(&log);
        assert_eq!(warm.source(), HistorySource::Warm);
        for query in [
            CellQuery::all(),
            CellQuery::all().experiment("h1"),
            CellQuery::all().status(CellRecord::STATUS_WARNINGS),
            CellQuery::all().window(150, 250),
        ] {
            assert_eq!(
                RunHistory::encode_results(&cold.query(&query)),
                RunHistory::encode_results(&warm.query(&query)),
            );
        }

        // A log that moved past the warm index invalidates it.
        log.append(&record(4, "h1", "sl7", 9, CellRecord::STATUS_PASS, 400))
            .unwrap();
        let reopened = RunHistory::open(&log);
        assert_eq!(reopened.source(), HistorySource::Cold);
        assert_eq!(reopened.records().len(), 6);

        // A flipped byte in a fresh warm file falls back to cold, never
        // trusts.
        reopened.save_warm(&log, &sp_store::vfs::OsFs).unwrap();
        assert_eq!(RunHistory::open(&log).source(), HistorySource::Warm);
        let path = dir.join(WARM_INDEX_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(RunHistory::open(&log).source(), HistorySource::Cold);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
