//! Trace spans and events.
//!
//! A [`TraceSink`] receives a flat stream of [`TraceEvent`]s from
//! instrumented components: the lane scheduler's `ProgressHook` points,
//! the work-stealing pool, the work queue's lease/publish/quarantine
//! transitions, worker/coordinator lifecycle, and retry/backoff loops.
//! The default sink is a null sink and event construction is guarded by
//! an atomic flag, so a process that never installs a sink pays one
//! relaxed load per call site and builds no strings.
//!
//! [`span`] returns a guard that, on drop, records the elapsed wall time
//! into a latency histogram of the global registry (`<scope>.<name>.us`)
//! and — when a sink is installed — emits a `TraceEvent` carrying the
//! duration. That gives every instrumented region both a cheap always-on
//! aggregate and an optional fine-grained timeline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use parking_lot::{Mutex, RwLock};

/// One trace record: a point event or a completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Wall-clock microseconds since the Unix epoch at emission.
    pub ts_us: u64,
    /// Component that emitted the event (`"sched"`, `"wq"`, `"worker"`, ...).
    pub scope: &'static str,
    /// Event name within the scope (`"lease"`, `"publish"`, `"retry"`, ...).
    pub name: &'static str,
    /// Free-form detail (ids, counts); empty when the site has none.
    pub detail: String,
    /// Span duration in microseconds; `None` for point events.
    pub duration_us: Option<u64>,
}

/// Receiver of trace events. Implementations must be cheap and
/// non-blocking — sinks run inline on scheduler and queue hot paths.
pub trait TraceSink: Send + Sync {
    /// Delivers one event.
    fn event(&self, event: TraceEvent);
}

/// Sink that drops everything (the default).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&self, _event: TraceEvent) {}
}

/// Bounded in-memory ring of recent events — the sink used by drivers and
/// tests to inspect what the fleet did.
#[derive(Debug)]
pub struct MemSink {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl MemSink {
    /// A ring that retains the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        MemSink {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns the retained events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.events.lock().drain(..).collect()
    }
}

impl TraceSink for MemSink {
    fn event(&self, event: TraceEvent) {
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }
}

struct SinkSlot {
    sink: RwLock<Arc<dyn TraceSink>>,
    active: AtomicBool,
}

fn slot() -> &'static SinkSlot {
    static SLOT: std::sync::OnceLock<SinkSlot> = std::sync::OnceLock::new();
    SLOT.get_or_init(|| SinkSlot {
        sink: RwLock::new(Arc::new(NullSink)),
        active: AtomicBool::new(false),
    })
}

/// Installs the process-wide trace sink. Passing a [`NullSink`] (or any
/// sink) replaces the previous one; events emitted concurrently may still
/// reach the old sink.
pub fn set_sink(sink: Arc<dyn TraceSink>) {
    let s = slot();
    *s.sink.write() = sink;
    s.active.store(true, Ordering::Release);
}

/// Restores the default null sink and re-arms the cheap disabled path.
pub fn clear_sink() {
    let s = slot();
    s.active.store(false, Ordering::Release);
    *s.sink.write() = Arc::new(NullSink);
}

/// True when a sink is installed — call sites use this to skip building
/// detail strings on the disabled path.
pub fn enabled() -> bool {
    slot().active.load(Ordering::Acquire)
}

fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

fn deliver(scope: &'static str, name: &'static str, detail: String, duration_us: Option<u64>) {
    let sink = slot().sink.read().clone();
    sink.event(TraceEvent {
        ts_us: now_us(),
        scope,
        name,
        detail,
        duration_us,
    });
}

/// Emits a point event with no detail. One relaxed load when no sink is
/// installed.
pub fn emit(scope: &'static str, name: &'static str) {
    if enabled() {
        deliver(scope, name, String::new(), None);
    }
}

/// Emits a point event whose detail string is built lazily — the closure
/// runs only when a sink is installed.
pub fn emit_with<F: FnOnce() -> String>(scope: &'static str, name: &'static str, detail: F) {
    if enabled() {
        deliver(scope, name, detail(), None);
    }
}

/// A span guard: measures wall time from construction to drop, records it
/// into the global registry histogram `<scope>.<name>.us`, and emits a
/// span event when a sink is installed.
#[derive(Debug)]
pub struct Span {
    scope: &'static str,
    name: &'static str,
    start: Instant,
    detail: String,
}

impl Span {
    /// Attaches detail text shown on the span-close event.
    pub fn with_detail(mut self, detail: String) -> Span {
        self.detail = detail;
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        crate::global()
            .histogram(&format!("{}.{}.us", self.scope, self.name))
            .observe(elapsed);
        if enabled() {
            deliver(
                self.scope,
                self.name,
                std::mem::take(&mut self.detail),
                Some(elapsed.as_micros().min(u64::MAX as u128) as u64),
            );
        }
    }
}

/// Opens a span over the enclosing region; see [`Span`].
pub fn span(scope: &'static str, name: &'static str) -> Span {
    Span {
        scope,
        name,
        start: Instant::now(),
        detail: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink slot is process-global, so exercise every behaviour in a
    // single test to avoid cross-test interference under parallel runs.
    #[test]
    fn sink_lifecycle_events_and_spans() {
        assert!(!enabled());
        // Disabled path: closure must not run.
        emit_with("test", "skipped", || panic!("detail built while disabled"));

        let sink = Arc::new(MemSink::new(4));
        set_sink(sink.clone());
        assert!(enabled());

        emit("test", "point");
        emit_with("test", "detailed", || "seq=7".to_string());
        {
            let _span = span("test", "region").with_detail("campaign=3".into());
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "point");
        assert_eq!(events[0].duration_us, None);
        assert_eq!(events[1].detail, "seq=7");
        let closed = &events[2];
        assert_eq!((closed.scope, closed.name), ("test", "region"));
        assert_eq!(closed.detail, "campaign=3");
        assert!(closed.duration_us.is_some());
        // The span also landed in the global registry histogram.
        let snap = crate::global().snapshot();
        assert_eq!(snap.histograms["test.region.us"].count, 1);

        // Ring keeps only the most recent `capacity` events.
        for _ in 0..10 {
            emit("test", "flood");
        }
        assert_eq!(sink.len(), 4);
        assert!(sink.events().iter().all(|e| e.name == "flood"));
        assert_eq!(sink.drain().len(), 4);
        assert!(sink.is_empty());

        clear_sink();
        assert!(!enabled());
        emit("test", "after-clear");
        assert!(sink.is_empty(), "cleared sink receives nothing");
    }
}
