//! The process-wide metrics registry.
//!
//! The fleet's existing accounting ([`sp_core::WorkerStats`]-style structs)
//! is end-of-run aggregate state: counters are carried in locals, merged at
//! the end, and say nothing while the run is in flight. This module adds
//! the orthogonal, always-on layer: a cheap process-wide registry of named
//! **monotonic counters**, **gauges** and **fixed-bucket latency
//! histograms** that any component may bump from any thread, snapshot at
//! any instant, and ship across processes with the same snapshot/merge/
//! wire-codec posture as `WorkerStats`.
//!
//! Cost model: a handle ([`Counter`], [`Gauge`], [`Histogram`]) is an
//! `Arc` around atomics — one relaxed RMW per bump, no lock. The registry
//! map is only locked when a handle is first created (or a snapshot is
//! taken), so instrumented hot paths cache their handles.
//!
//! The wire codec follows the store conventions: magic `SPMS`, version,
//! body, SHA-256 over all of it — a snapshot read back from disk or a
//! queue blob is dropped, never trusted, on any mismatch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use sp_store::sha256::Sha256;
use sp_store::snapshot::wire;

/// Snapshot-file / blob magic for an encoded [`MetricsSnapshot`].
pub const METRICS_MAGIC: [u8; 4] = *b"SPMS";

/// Current wire version of encoded snapshots.
pub const METRICS_VERSION: u32 = 1;

/// Upper bounds (microseconds) of the fixed histogram buckets; the last
/// bucket is the overflow bucket (everything above the last bound). The
/// spacing is the usual 1-2-5 latency ladder from 10 µs to 5 s.
pub const BUCKET_BOUNDS_US: [u64; 16] = [
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000,
    2_000_000, 5_000_000,
];

/// Buckets per histogram: one per bound plus the overflow bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A monotonic counter handle. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that goes up and down (queue depths, cache
/// sizes, hit counters mirrored from another subsystem).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram handle.
#[derive(Debug)]
pub struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// A shared fixed-bucket latency histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one observation from a [`Duration`].
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Snapshot of this histogram alone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum_us: self.0.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

/// The registry: named counters, gauges and histograms with process-wide
/// sharing. Instrumented components obtain their handles once and bump
/// atomics thereafter.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry (tests and scoped consumers; production
    /// instrumentation goes through [`crate::global`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Freezes every metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A frozen, mergeable, wire-codable view of a registry — the shape one
/// process publishes and another merges into a fleet-wide digest, exactly
/// like `WorkerStats`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges another snapshot: counters and histograms add, gauges take
    /// the other side's value when present (last writer wins, as with the
    /// worker-stats blobs).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serialises the snapshot: magic, version, body, SHA-256 digest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&METRICS_MAGIC);
        wire::put_u32(&mut out, METRICS_VERSION);
        wire::put_u32(&mut out, self.counters.len() as u32);
        for (name, value) in &self.counters {
            wire::put_str(&mut out, name);
            wire::put_u64(&mut out, *value);
        }
        wire::put_u32(&mut out, self.gauges.len() as u32);
        for (name, value) in &self.gauges {
            wire::put_str(&mut out, name);
            wire::put_u64(&mut out, *value as u64);
        }
        wire::put_u32(&mut out, self.histograms.len() as u32);
        for (name, hist) in &self.histograms {
            wire::put_str(&mut out, name);
            wire::put_u64(&mut out, hist.count);
            wire::put_u64(&mut out, hist.sum_us);
            wire::put_u32(&mut out, hist.buckets.len() as u32);
            for bucket in &hist.buckets {
                wire::put_u64(&mut out, *bucket);
            }
        }
        let mut hasher = Sha256::new();
        hasher.update(&out);
        let digest = hasher.finalize();
        out.extend_from_slice(&digest);
        out
    }

    /// Parses an encoded snapshot. `None` on any structural or digest
    /// mismatch — dropped, never trusted.
    pub fn decode(bytes: &[u8]) -> Option<MetricsSnapshot> {
        if bytes.len() < 44 || bytes[..4] != METRICS_MAGIC {
            return None;
        }
        let (framed, digest) = bytes.split_at(bytes.len() - 32);
        let mut hasher = Sha256::new();
        hasher.update(framed);
        if hasher.finalize() != digest {
            return None;
        }
        let mut cursor = wire::Cursor::new(&framed[4..]);
        if cursor.take_u32()? != METRICS_VERSION {
            return None;
        }
        let mut snapshot = MetricsSnapshot::default();
        for _ in 0..cursor.take_u32()? {
            let name = cursor.take_str()?;
            let value = cursor.take_u64()?;
            snapshot.counters.insert(name, value);
        }
        for _ in 0..cursor.take_u32()? {
            let name = cursor.take_str()?;
            let value = cursor.take_u64()? as i64;
            snapshot.gauges.insert(name, value);
        }
        for _ in 0..cursor.take_u32()? {
            let name = cursor.take_str()?;
            let count = cursor.take_u64()?;
            let sum_us = cursor.take_u64()?;
            let buckets = (0..cursor.take_u32()?)
                .map(|_| cursor.take_u64())
                .collect::<Option<Vec<u64>>>()?;
            snapshot.histograms.insert(
                name,
                HistogramSnapshot {
                    buckets,
                    count,
                    sum_us,
                },
            );
        }
        cursor.finished().then_some(snapshot)
    }

    /// Renders the snapshot as sorted `name value` lines — the dump format
    /// the chaos drivers print after a scenario.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} mean_us={:.1}\n",
                hist.count,
                hist.mean_us()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_and_snapshot() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("sp.test.counter");
        c.incr();
        c.add(4);
        // A second lookup shares the same atomic.
        registry.counter("sp.test.counter").incr();
        registry.gauge("sp.test.gauge").set(-3);
        let h = registry.histogram("sp.test.us");
        h.observe_us(5);
        h.observe_us(150);
        h.observe(Duration::from_secs(60)); // overflow bucket

        let snap = registry.snapshot();
        assert_eq!(snap.counter("sp.test.counter"), 6);
        assert_eq!(snap.gauges["sp.test.gauge"], -3);
        let hist = &snap.histograms["sp.test.us"];
        assert_eq!(hist.count, 3);
        assert_eq!(hist.buckets[0], 1, "5 µs lands in the first bucket");
        assert_eq!(hist.buckets[BUCKETS - 1], 1, "60 s overflows");
        assert_eq!(snap.counter("sp.absent"), 0);
    }

    #[test]
    fn snapshots_merge_like_worker_stats() {
        let a = MetricsRegistry::new();
        a.counter("shared").add(2);
        a.counter("only_a").add(1);
        a.histogram("lat").observe_us(10);
        let b = MetricsRegistry::new();
        b.counter("shared").add(3);
        b.gauge("depth").set(7);
        b.histogram("lat").observe_us(600_000);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("shared"), 5);
        assert_eq!(merged.counter("only_a"), 1);
        assert_eq!(merged.gauges["depth"], 7);
        let hist = &merged.histograms["lat"];
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum_us, 600_010);
    }

    #[test]
    fn wire_round_trip_and_tamper_rejection() {
        let registry = MetricsRegistry::new();
        registry.counter("a.b").add(42);
        registry.gauge("g").set(-9);
        registry.histogram("h.us").observe_us(123);
        let snap = registry.snapshot();
        let bytes = snap.encode();
        assert_eq!(MetricsSnapshot::decode(&bytes), Some(snap.clone()));

        // Truncation and bit flips are dropped, never trusted.
        assert_eq!(MetricsSnapshot::decode(&bytes[..bytes.len() - 1]), None);
        assert_eq!(MetricsSnapshot::decode(b""), None);
        for i in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert_eq!(MetricsSnapshot::decode(&flipped), None, "flip at {i}");
        }
        assert!(snap.render_text().contains("counter a.b 42"));
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let registry = std::sync::Arc::clone(&registry);
            handles.push(std::thread::spawn(move || {
                let c = registry.counter("hot");
                let h = registry.histogram("hot.us");
                for i in 0..1_000 {
                    c.incr();
                    h.observe_us(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hot"), 4_000);
        assert_eq!(snap.histograms["hot.us"].count, 4_000);
    }
}
