//! Property-based tests for the execution substrate.

use proptest::prelude::*;
use sp_exec::cron::CivilTime;
use sp_exec::{ChainDef, CronSchedule, JobPool, JobResult, JobSpec, JobStatus, StageDef};

proptest! {
    /// `next_after` always returns a strictly later, minute-aligned time
    /// that the schedule matches.
    #[test]
    fn cron_next_after_is_future_and_aligned(
        after in 0u64..2_000_000_000,
        minute in 0u32..60,
        hour in 0u32..24,
    ) {
        let expr = format!("{minute} {hour} * * *");
        let cron = CronSchedule::parse(&expr).expect("valid expression");
        let fire = cron.next_after(after).expect("daily schedules always fire");
        prop_assert!(fire > after);
        prop_assert_eq!(fire % 60, 0);
        let civil = CivilTime::from_unix(fire);
        prop_assert_eq!(civil.minute, minute);
        prop_assert_eq!(civil.hour, hour);
        // Firing is within the next 24h + 1min for a daily schedule.
        prop_assert!(fire - after <= 86_400 + 60);
    }

    /// Civil-time decomposition is self-consistent: reconstructing the day
    /// offset from (hour, minute, second) matches the original timestamp.
    #[test]
    fn civil_time_time_of_day(ts in 0u64..4_000_000_000u64) {
        let civil = CivilTime::from_unix(ts);
        prop_assert!(civil.hour < 24 && civil.minute < 60 && civil.second < 60);
        prop_assert!((1..=12).contains(&civil.month));
        prop_assert!((1..=31).contains(&civil.day));
        prop_assert!(civil.weekday < 7);
        let within_day =
            civil.hour as u64 * 3600 + civil.minute as u64 * 60 + civil.second as u64;
        prop_assert_eq!(ts % 86_400, within_day);
    }

    /// Consecutive days advance the weekday by one (mod 7).
    #[test]
    fn weekdays_cycle(day_index in 0u64..40_000) {
        let a = CivilTime::from_unix(day_index * 86_400);
        let b = CivilTime::from_unix((day_index + 1) * 86_400);
        prop_assert_eq!((a.weekday + 1) % 7, b.weekday);
    }

    /// `fires_between` output is sorted, strictly increasing, in range and
    /// consistent with repeated `next_after` stepping.
    #[test]
    fn fires_between_consistent(
        start in 0u64..1_000_000_000,
        span_hours in 1u64..72,
        step in 1u32..30,
    ) {
        let cron = CronSchedule::parse(&format!("*/{step} * * * *")).unwrap();
        let end = start + span_hours * 3600;
        let fires = cron.fires_between(start, end);
        for pair in fires.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        for f in &fires {
            prop_assert!(*f > start && *f <= end);
        }
    }

    /// The job pool runs every job exactly once and returns results sorted
    /// by id, independent of thread count.
    #[test]
    fn job_pool_complete_and_sorted(
        n in 0usize..60,
        threads in 1usize..8,
    ) {
        let specs: Vec<JobSpec> = (0..n as u64)
            .map(|i| JobSpec {
                id: sp_exec::JobId(i),
                name: format!("job-{i}"),
                tag: String::new(),
                image_label: String::new(),
                submitted_at: 0,
                inputs: vec![],
            })
            .collect();
        let results = JobPool::new(threads).run_batch(specs, |s| JobResult {
            id: s.id,
            status: JobStatus::Succeeded,
            log: String::new(),
            outputs: vec![],
            started_at: 0,
            finished_at: 0,
        });
        prop_assert_eq!(results.len(), n);
        for (i, r) in results.iter().enumerate() {
            prop_assert_eq!(r.id.0, i as u64);
        }
    }

    /// Chain execution: one result per stage; a failing stage's transitive
    /// dependents are all skipped; unrelated stages still run.
    #[test]
    fn chain_failure_propagation(fail_stage in 0usize..6) {
        let chain = ChainDef::full_analysis_chain("prop");
        let fail_name = chain.stages()[fail_stage].name.clone();
        let report = chain.execute(|stage, _| {
            if stage.name == fail_name {
                Err("injected".to_string())
            } else {
                Ok(())
            }
        });
        prop_assert_eq!(report.stages.len(), 6);
        // The linear chain: everything after the failing stage is skipped.
        for (i, (_, status)) in report.stages.iter().enumerate() {
            let failed = matches!(status, sp_exec::StageStatus::Failed(_));
            let skipped = matches!(status, sp_exec::StageStatus::Skipped { .. });
            match i.cmp(&fail_stage) {
                std::cmp::Ordering::Less => prop_assert!(status.succeeded()),
                std::cmp::Ordering::Equal => prop_assert!(failed),
                std::cmp::Ordering::Greater => prop_assert!(skipped),
            }
        }
        prop_assert_eq!(report.skipped_count(), 5 - fail_stage);
    }

    /// Arbitrary DAG construction: declaring stages in dependency order
    /// always validates, and execution visits every stage.
    #[test]
    fn random_dag_chains_execute(edges in prop::collection::vec((1usize..8, 0usize..8), 0..16)) {
        let n = 8;
        let mut stages: Vec<StageDef> = (0..n)
            .map(|i| StageDef::new(format!("s{i}"), &[]))
            .collect();
        for (to, from) in edges {
            // Only forward edges (from < to) keep the graph acyclic.
            if from < to {
                let need = format!("s{from}");
                if !stages[to].needs.contains(&need) {
                    stages[to].needs.push(need);
                }
            }
        }
        let chain = ChainDef::new("dag", stages).expect("forward edges are acyclic");
        let report = chain.execute(|_, _| Ok(1u32));
        prop_assert!(report.all_succeeded());
        prop_assert_eq!(report.outputs.len(), n);
    }
}
