//! Polling primitives for pull-model workers.
//!
//! The paper's clients *pull*: a cron job on each machine wakes up, asks
//! the common storage for work, does it, and goes back to sleep (§3.1).
//! Between cron firings a draining worker needs a finer-grained loop —
//! poll the queue, back off while it is empty, quit once the backlog has
//! been drained and stayed drained. This module provides that loop:
//!
//! * [`Backoff`] — bounded exponential backoff with deterministic jitter,
//!   so a fleet of workers polling one shared directory does not hammer
//!   it in lockstep;
//! * [`PollLoop`] — drives a step closure until it reports `Stop` or has
//!   been `Idle` for a configurable number of consecutive polls.
//!
//! The sleep between polls is injected (`PollLoop::run` takes the sleeper
//! as a closure), so unit tests run the whole loop without waiting on a
//! wall clock while real workers pass `std::thread::sleep`.

use std::time::Duration;

/// Bounded exponential backoff with deterministic jitter.
///
/// Delays start at `base` and double per consecutive idle attempt up to
/// `max`; each delay is then jittered by up to ±25% using an xorshift
/// stream seeded per worker, which de-synchronises workers that went idle
/// at the same instant. [`reset`](Self::reset) drops back to `base` after
/// useful work.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Creates a backoff. `seed` individualises the jitter stream (use a
    /// hash of the worker name); zero is mapped to a fixed non-zero seed.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Self {
        Backoff {
            base: base.max(Duration::from_millis(1)),
            max: max.max(base),
            attempt: 0,
            rng: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// A backoff suitable for draining a shared on-disk queue: 10 ms
    /// base, 500 ms ceiling.
    pub fn for_queue(seed: u64) -> Self {
        Backoff::new(Duration::from_millis(10), Duration::from_millis(500), seed)
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The next idle delay: exponential growth, clamped, jittered.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let nominal = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max)
            .as_millis() as u64;
        // Jitter in [-25%, +25%] of the nominal delay, at least 1 ms.
        let quarter = (nominal / 4).max(1);
        let jitter = self.next_random() % (2 * quarter + 1);
        Duration::from_millis(nominal.saturating_sub(quarter) + jitter)
    }

    /// Resets the exponential growth after a successful poll.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Bounded retry for transient I/O faults, reusing [`Backoff`] for the
/// inter-attempt delays.
///
/// A preservation fleet lives on imperfect disks: an `EINTR`/`EAGAIN`-class
/// hiccup on a queue read must degrade to a short retry, not to a fenced
/// campaign or — worse — a durable poison mark on valid work. This policy
/// classifies errors ([`is_transient`](Self::is_transient)), retries the
/// transient ones a bounded number of times with backoff, and surfaces
/// everything else (and exhausted retries) to the caller untouched.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    backoff: Backoff,
    max_attempts: u32,
    retries: u64,
}

impl RetryPolicy {
    /// Creates a policy performing at most `max_attempts` attempts per
    /// operation (minimum 1; retries = attempts − 1).
    pub fn new(backoff: Backoff, max_attempts: u32) -> Self {
        RetryPolicy {
            backoff,
            max_attempts: max_attempts.max(1),
            retries: 0,
        }
    }

    /// A policy suited to on-disk queue operations: 1 ms base delay,
    /// 50 ms ceiling, 8 attempts. `seed` individualises the jitter.
    pub fn for_disk(seed: u64) -> Self {
        RetryPolicy::new(
            Backoff::new(Duration::from_millis(1), Duration::from_millis(50), seed),
            8,
        )
    }

    /// Whether an I/O error is transient — worth retrying in place.
    /// `Interrupted` (EINTR), `WouldBlock` (EAGAIN) and `TimedOut` are;
    /// hard faults (ENOSPC, EIO, corruption observed as decode failure)
    /// are not.
    pub fn is_transient(error: &std::io::Error) -> bool {
        matches!(
            error.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        )
    }

    /// Total retries performed over this policy's lifetime (for fleet
    /// accounting).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Runs `op`, retrying transient failures with backoff, sleeping
    /// through `sleep` (injected so tests retry without a wall clock).
    pub fn run_with_sleep<T>(
        &mut self,
        mut op: impl FnMut() -> std::io::Result<T>,
        mut sleep: impl FnMut(Duration),
    ) -> std::io::Result<T> {
        self.backoff.reset();
        let mut attempt = 1;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(error) if Self::is_transient(&error) && attempt < self.max_attempts => {
                    attempt += 1;
                    self.retries += 1;
                    let delay = self.backoff.next_delay();
                    let registry = sp_obs::global();
                    registry.counter("exec.retry.retries").incr();
                    registry.histogram("exec.retry.backoff_us").observe(delay);
                    sp_obs::trace::emit_with("retry", "transient", || {
                        format!(
                            "kind={:?} attempt={attempt} delay_ms={}",
                            error.kind(),
                            delay.as_millis()
                        )
                    });
                    sleep(delay);
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// [`run_with_sleep`](Self::run_with_sleep) sleeping on the OS clock.
    pub fn run<T>(&mut self, op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        self.run_with_sleep(op, std::thread::sleep)
    }
}

/// What one poll step observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// Work was found and done: poll again immediately, backoff reset.
    Worked,
    /// Nothing to do right now: sleep per backoff, then poll again.
    Idle,
    /// The loop should terminate now (backlog drained, shutdown signal).
    Stop,
}

/// Accounting of one [`PollLoop::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Steps that did work.
    pub worked: u64,
    /// Steps that found nothing.
    pub idle: u64,
    /// Total time slept between idle polls.
    pub slept: Duration,
}

/// Drives a polling worker until it stops or stays idle too long.
#[derive(Debug, Clone)]
pub struct PollLoop {
    backoff: Backoff,
    max_idle_polls: u32,
}

impl PollLoop {
    /// Creates a loop that gives up after `max_idle_polls` *consecutive*
    /// idle polls (minimum 1); any successful poll resets the count.
    pub fn new(backoff: Backoff, max_idle_polls: u32) -> Self {
        PollLoop {
            backoff,
            max_idle_polls: max_idle_polls.max(1),
        }
    }

    /// Runs `step` until it returns [`PollOutcome::Stop`] or the idle
    /// budget runs out, sleeping through `sleep` between idle polls.
    pub fn run(
        &mut self,
        mut step: impl FnMut() -> PollOutcome,
        mut sleep: impl FnMut(Duration),
    ) -> PollStats {
        let mut stats = PollStats::default();
        let mut consecutive_idle = 0u32;
        loop {
            match step() {
                PollOutcome::Worked => {
                    stats.worked += 1;
                    consecutive_idle = 0;
                    self.backoff.reset();
                }
                PollOutcome::Idle => {
                    stats.idle += 1;
                    consecutive_idle += 1;
                    if consecutive_idle >= self.max_idle_polls {
                        return stats;
                    }
                    let delay = self.backoff.next_delay();
                    stats.slept += delay;
                    sleep(delay);
                }
                PollOutcome::Stop => return stats,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_is_bounded() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(200);
        let mut backoff = Backoff::new(base, max, 42);
        let mut last = Duration::ZERO;
        for _ in 0..20 {
            let delay = backoff.next_delay();
            // ±25% jitter around a nominal clamped to [base, max].
            assert!(delay >= base / 2, "{delay:?}");
            assert!(delay <= max + max / 4, "{delay:?}");
            last = delay;
        }
        // After many attempts the delay sits near the ceiling.
        assert!(last >= max - max / 4);
        backoff.reset();
        assert!(backoff.next_delay() <= base + base / 4 + Duration::from_millis(1));
    }

    #[test]
    fn jitter_streams_differ_per_seed() {
        let mk = |seed| {
            let mut b = Backoff::new(Duration::from_millis(100), Duration::from_millis(100), seed);
            (0..8).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2), "seeds de-synchronise workers");
        assert_eq!(mk(7), mk(7), "same seed is deterministic");
        // Seed zero is usable (mapped to a non-zero internal state).
        assert_ne!(mk(0), vec![Duration::from_millis(100); 8]);
    }

    #[test]
    fn loop_stops_after_consecutive_idles() {
        let mut outcomes = vec![
            PollOutcome::Idle,
            PollOutcome::Worked,
            PollOutcome::Idle,
            PollOutcome::Idle,
            PollOutcome::Idle,
        ]
        .into_iter();
        let mut slept = Vec::new();
        let stats = PollLoop::new(Backoff::for_queue(3), 3).run(
            || outcomes.next().unwrap_or(PollOutcome::Idle),
            |d| slept.push(d),
        );
        assert_eq!(stats.worked, 1);
        assert_eq!(stats.idle, 4, "stops at the third consecutive idle");
        assert_eq!(slept.len(), 3, "no sleep after the terminal idle");
        assert!(stats.slept > Duration::ZERO);
    }

    #[test]
    fn retry_policy_retries_transient_then_succeeds() {
        let mut policy = RetryPolicy::for_disk(11);
        let mut attempts = 0;
        let mut slept = Vec::new();
        let result = policy.run_with_sleep(
            || {
                attempts += 1;
                if attempts < 4 {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "EINTR",
                    ))
                } else {
                    Ok(attempts)
                }
            },
            |d| slept.push(d),
        );
        assert_eq!(result.unwrap(), 4);
        assert_eq!(policy.retries(), 3);
        assert_eq!(slept.len(), 3, "one sleep per retry");
    }

    #[test]
    fn retry_policy_surfaces_hard_faults_immediately() {
        let mut policy = RetryPolicy::for_disk(11);
        let mut attempts = 0;
        let result: std::io::Result<()> = policy.run_with_sleep(
            || {
                attempts += 1;
                Err(std::io::Error::from_raw_os_error(28)) // ENOSPC
            },
            |_| {},
        );
        assert_eq!(result.unwrap_err().raw_os_error(), Some(28));
        assert_eq!(attempts, 1, "hard faults are not retried");
        assert_eq!(policy.retries(), 0);
    }

    #[test]
    fn retry_policy_bounds_attempts() {
        let mut policy = RetryPolicy::new(Backoff::for_queue(5), 3);
        let mut attempts = 0;
        let result: std::io::Result<()> = policy.run_with_sleep(
            || {
                attempts += 1;
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "EAGAIN",
                ))
            },
            |_| {},
        );
        assert!(RetryPolicy::is_transient(&result.unwrap_err()));
        assert_eq!(attempts, 3, "bounded attempts, then surfaced");
        assert_eq!(policy.retries(), 2);
    }

    #[test]
    fn loop_honours_stop() {
        let mut polls = 0;
        let stats = PollLoop::new(Backoff::for_queue(1), 100).run(
            || {
                polls += 1;
                if polls < 5 {
                    PollOutcome::Worked
                } else {
                    PollOutcome::Stop
                }
            },
            |_| {},
        );
        assert_eq!(stats.worked, 4);
        assert_eq!(stats.idle, 0);
        assert_eq!(polls, 5);
    }
}
