//! Fair-share lane scheduling over one shared work-stealing pool.
//!
//! The [`crate::WorkStealingPool`] executes one indexed batch at a time;
//! multi-campaign operation needs one level above it: *several* logical
//! campaigns, each contributing lanes (ordered task sequences), sharing
//! one pool without any campaign starving the others. [`LaneScheduler`]
//! provides exactly that slice:
//!
//! * **fair-share dispatch** — lanes are interleaved round-robin across
//!   campaigns before they are seeded into the pool, so a campaign with
//!   many lanes cannot park a small campaign behind its whole backlog;
//! * **campaign-scoped cancellation** — every lane carries its campaign's
//!   [`CancellationToken`]; a lane whose token was cancelled is skipped on
//!   the worker (result `None`) instead of executing;
//! * **scheduling accounting** — dispatch rounds, executed and cancelled
//!   lanes, and the pool's local/stolen split accumulate in
//!   [`LaneSchedulerStats`] across rounds, which is what the report layer
//!   surfaces as the scheduler digest.
//!
//! The scheduler is deliberately ignorant of what a "campaign" *is* —
//! `sp-core` builds the actual [`CampaignScheduler`] on top of this by
//! submitting per-repetition experiment lanes and collecting validated
//! runs; the admission policy (which campaigns are active at all) also
//! lives there, next to the domain knowledge it needs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::pool::WorkStealingPool;

/// Identifier of one campaign within a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId(pub u64);

impl std::fmt::Display for CampaignId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmp-{:03}", self.0)
    }
}

/// A shareable cancellation flag scoped to one campaign: cancelling it
/// stops that campaign's not-yet-started lanes without touching any other
/// campaign sharing the pool.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    /// Creates a live (not cancelled) token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Requests cancellation. Lanes already executing finish; lanes not
    /// yet started are skipped.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// Where in the execution a [`ProgressHook`] tick was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressPoint {
    /// A lane is about to execute on a pool worker.
    Dispatch,
    /// One task within a lane finished executing.
    Task,
    /// A repetition barrier completed: every lane of the round joined
    /// and the round's results were committed.
    Barrier,
}

/// In-flight liveness signal from the executor to whoever owns the work.
///
/// Long campaigns execute for arbitrary wall time inside one
/// [`LaneScheduler::dispatch`]-driven loop; anything that leases work
/// (the fleet worker) must prove it is still alive *during* that loop,
/// not just between work items. The scheduler raises
/// [`ProgressPoint::Dispatch`] ticks from pool workers as lanes start;
/// the loop above it raises [`ProgressPoint::Task`] and
/// [`ProgressPoint::Barrier`] as tasks and repetition barriers complete.
/// Implementations are called from multiple threads concurrently and
/// must be cheap — a tick is an opportunity to renew a lease, not an
/// obligation to do work.
pub trait ProgressHook: Sync {
    /// Signals that execution reached `point` and the caller is alive.
    fn tick(&self, point: ProgressPoint);
}

/// [`ProgressHook`] adapter that turns the existing liveness ticks into
/// observability: every tick bumps an `exec.progress.*` counter in the
/// global metrics registry and emits a point event to the installed
/// [`sp_obs::TraceSink`], then forwards to the wrapped hook (if any) so
/// lease renewal keeps working unchanged. Handles are resolved once at
/// construction — a tick is three relaxed atomic ops when no sink is
/// installed.
pub struct TracingProgressHook<'a> {
    inner: Option<&'a dyn ProgressHook>,
    dispatch: sp_obs::Counter,
    task: sp_obs::Counter,
    barrier: sp_obs::Counter,
}

impl<'a> TracingProgressHook<'a> {
    /// A hook that only records (no forwarding).
    pub fn new() -> Self {
        Self::wrap_opt(None)
    }

    /// Wraps an existing hook, recording and forwarding every tick.
    pub fn wrap(inner: &'a dyn ProgressHook) -> Self {
        Self::wrap_opt(Some(inner))
    }

    /// [`wrap`](Self::wrap) over an optional inner hook.
    pub fn wrap_opt(inner: Option<&'a dyn ProgressHook>) -> Self {
        let registry = sp_obs::global();
        TracingProgressHook {
            inner,
            dispatch: registry.counter("exec.progress.dispatch"),
            task: registry.counter("exec.progress.task"),
            barrier: registry.counter("exec.progress.barrier"),
        }
    }
}

impl Default for TracingProgressHook<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressHook for TracingProgressHook<'_> {
    fn tick(&self, point: ProgressPoint) {
        match point {
            ProgressPoint::Dispatch => {
                self.dispatch.incr();
                sp_obs::trace::emit("progress", "dispatch");
            }
            ProgressPoint::Task => {
                self.task.incr();
                sp_obs::trace::emit("progress", "task");
            }
            ProgressPoint::Barrier => {
                self.barrier.incr();
                sp_obs::trace::emit("progress", "barrier");
            }
        }
        if let Some(inner) = self.inner {
            inner.tick(point);
        }
    }
}

/// One schedulable lane: a campaign tag, the campaign's cancellation
/// token, and an opaque payload (the task sequence, for `sp-core`).
#[derive(Debug)]
pub struct Lane<T> {
    /// Which campaign this lane belongs to.
    pub campaign: CampaignId,
    /// The campaign's cancellation token.
    pub token: CancellationToken,
    /// Scheduler-opaque lane payload.
    pub payload: T,
}

/// Counters describing everything a scheduler dispatched so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneSchedulerStats {
    /// Dispatch rounds executed.
    pub rounds: u64,
    /// Lanes handed to the pool and executed.
    pub lanes_executed: u64,
    /// Lanes skipped because their campaign was cancelled.
    pub lanes_cancelled: u64,
    /// Lanes executed from a worker's own queue (pool accounting).
    pub local: u64,
    /// Lanes executed after being stolen from a peer (pool accounting).
    pub stolen: u64,
}

impl LaneSchedulerStats {
    /// Accumulates another scheduler's counters into this one. Every
    /// field is a disjoint event count owned by exactly one scheduler, so
    /// summing per-worker snapshots yields a fleet total without double
    /// counting (saturating, so a corrupt snapshot cannot wrap the sum).
    pub fn merge(&mut self, other: &LaneSchedulerStats) {
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.lanes_executed = self.lanes_executed.saturating_add(other.lanes_executed);
        self.lanes_cancelled = self.lanes_cancelled.saturating_add(other.lanes_cancelled);
        self.local = self.local.saturating_add(other.local);
        self.stolen = self.stolen.saturating_add(other.stolen);
    }
}

/// The fair-share lane dispatcher over one shared [`WorkStealingPool`].
pub struct LaneScheduler {
    pool: WorkStealingPool,
    rounds: AtomicU64,
    lanes_executed: AtomicU64,
    lanes_cancelled: AtomicU64,
    local: AtomicU64,
    stolen: AtomicU64,
}

impl LaneScheduler {
    /// Creates a scheduler whose shared pool has `workers` threads
    /// (minimum 1).
    pub fn new(workers: usize) -> Self {
        LaneScheduler {
            pool: WorkStealingPool::new(workers),
            rounds: AtomicU64::new(0),
            lanes_executed: AtomicU64::new(0),
            lanes_cancelled: AtomicU64::new(0),
            local: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        }
    }

    /// Worker threads of the shared pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Dispatches one round of lanes over the shared pool.
    ///
    /// Lanes are re-ordered fair-share — round-robin across campaigns in
    /// first-appearance order — before being seeded, then executed by the
    /// work-stealing pool. Results come back **in the order the lanes
    /// were passed in**, with `None` for lanes whose campaign was
    /// cancelled before the lane started. `f` must be pure per lane (it
    /// may read shared state), which keeps results independent of worker
    /// count and steal interleaving.
    pub fn dispatch<T, R, F>(&self, lanes: Vec<Lane<T>>, f: F) -> Vec<Option<R>>
    where
        T: Send,
        R: Send,
        F: Fn(CampaignId, T) -> R + Sync,
    {
        self.dispatch_hooked(lanes, None, f)
    }

    /// [`dispatch`](Self::dispatch) with an optional [`ProgressHook`]:
    /// the hook receives a [`ProgressPoint::Dispatch`] tick from the pool
    /// worker as each live lane starts, so a lease holder renews its
    /// liveness even while every thread is busy executing. Cancelled
    /// lanes do not tick — skipping work is not progress.
    pub fn dispatch_hooked<T, R, F>(
        &self,
        lanes: Vec<Lane<T>>,
        hook: Option<&dyn ProgressHook>,
        f: F,
    ) -> Vec<Option<R>>
    where
        T: Send,
        R: Send,
        F: Fn(CampaignId, T) -> R + Sync,
    {
        if lanes.is_empty() {
            return Vec::new();
        }
        let _round_span = sp_obs::trace::span("sched", "round");
        self.rounds.fetch_add(1, Ordering::Relaxed);

        // Fair-share interleave: one lane per campaign per turn, campaigns
        // in first-appearance order, lane order preserved within each
        // campaign. `order[fair_index] = original_index` scatters results
        // back afterwards.
        let order = fair_share_order(&lanes);
        let mut slots: Vec<Option<Lane<T>>> = lanes.into_iter().map(Some).collect();
        let fair: Vec<(usize, Lane<T>)> = order
            .iter()
            .map(|&original| (original, slots[original].take().expect("each lane once")))
            .collect();

        let (results, pool_stats) = self.pool.run_with_stats(fair, |_, (original, lane)| {
            if lane.token.is_cancelled() {
                self.lanes_cancelled.fetch_add(1, Ordering::Relaxed);
                return (original, None);
            }
            if let Some(hook) = hook {
                hook.tick(ProgressPoint::Dispatch);
            }
            self.lanes_executed.fetch_add(1, Ordering::Relaxed);
            (original, Some(f(lane.campaign, lane.payload)))
        });
        self.local
            .fetch_add(pool_stats.local as u64, Ordering::Relaxed);
        self.stolen
            .fetch_add(pool_stats.stolen as u64, Ordering::Relaxed);

        let executed = results.iter().filter(|(_, r)| r.is_some()).count() as u64;
        let cancelled = results.len() as u64 - executed;
        let registry = sp_obs::global();
        registry.counter("exec.sched.rounds").incr();
        registry.counter("exec.sched.lanes_executed").add(executed);
        registry
            .counter("exec.sched.lanes_cancelled")
            .add(cancelled);
        sp_obs::trace::emit_with("sched", "round_done", || {
            format!("executed={executed} cancelled={cancelled}")
        });

        let mut out: Vec<Option<R>> = (0..results.len()).map(|_| None).collect();
        for (original, result) in results {
            out[original] = result;
        }
        out
    }

    /// Snapshot of the accumulated scheduling counters.
    pub fn stats(&self) -> LaneSchedulerStats {
        LaneSchedulerStats {
            rounds: self.rounds.load(Ordering::Relaxed),
            lanes_executed: self.lanes_executed.load(Ordering::Relaxed),
            lanes_cancelled: self.lanes_cancelled.load(Ordering::Relaxed),
            local: self.local.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
        }
    }
}

/// Round-robin interleaving order across campaigns: indices into `lanes`
/// such that consecutive positions cycle through the campaigns (in first
/// appearance order), preserving lane order within each campaign.
fn fair_share_order<T>(lanes: &[Lane<T>]) -> Vec<usize> {
    let mut campaigns: Vec<CampaignId> = Vec::new();
    let mut per_campaign: Vec<Vec<usize>> = Vec::new();
    for (index, lane) in lanes.iter().enumerate() {
        match campaigns.iter().position(|c| *c == lane.campaign) {
            Some(slot) => per_campaign[slot].push(index),
            None => {
                campaigns.push(lane.campaign);
                per_campaign.push(vec![index]);
            }
        }
    }
    let mut order = Vec::with_capacity(lanes.len());
    let mut turn = 0;
    while order.len() < lanes.len() {
        for queue in &per_campaign {
            if let Some(&index) = queue.get(turn) {
                order.push(index);
            }
        }
        turn += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(campaign: u64, token: &CancellationToken, payload: u32) -> Lane<u32> {
        Lane {
            campaign: CampaignId(campaign),
            token: token.clone(),
            payload,
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let sched = LaneScheduler::new(4);
        let token = CancellationToken::new();
        let lanes: Vec<Lane<u32>> = (0..32).map(|i| lane(i % 3, &token, i as u32)).collect();
        let results = sched.dispatch(lanes, |_, payload| payload * 2);
        let expected: Vec<Option<u32>> = (0..32).map(|i| Some(i * 2)).collect();
        assert_eq!(results, expected);
        let stats = sched.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.lanes_executed, 32);
        assert_eq!(stats.local + stats.stolen, 32);
    }

    #[test]
    fn fair_share_interleaves_campaigns() {
        let token = CancellationToken::new();
        // Campaign 1 contributes 4 lanes, campaign 2 contributes 2.
        let lanes: Vec<Lane<u32>> = vec![
            lane(1, &token, 0),
            lane(1, &token, 1),
            lane(1, &token, 2),
            lane(1, &token, 3),
            lane(2, &token, 4),
            lane(2, &token, 5),
        ];
        let order = fair_share_order(&lanes);
        // One lane per campaign per turn: 1a 2a 1b 2b 1c 1d.
        assert_eq!(order, vec![0, 4, 1, 5, 2, 3]);
    }

    #[test]
    fn cancellation_skips_only_the_cancelled_campaign() {
        let sched = LaneScheduler::new(2);
        let live = CancellationToken::new();
        let doomed = CancellationToken::new();
        doomed.cancel();
        assert!(doomed.is_cancelled());
        let lanes = vec![
            lane(1, &live, 10),
            lane(2, &doomed, 20),
            lane(1, &live, 30),
            lane(2, &doomed, 40),
        ];
        let results = sched.dispatch(lanes, |_, payload| payload);
        assert_eq!(results, vec![Some(10), None, Some(30), None]);
        let stats = sched.stats();
        assert_eq!(stats.lanes_executed, 2);
        assert_eq!(stats.lanes_cancelled, 2);
    }

    #[test]
    fn empty_round_is_free() {
        let sched = LaneScheduler::new(2);
        let results: Vec<Option<u32>> = sched.dispatch(Vec::<Lane<u32>>::new(), |_, p| p);
        assert!(results.is_empty());
        assert_eq!(sched.stats().rounds, 0);
    }

    #[test]
    fn merged_stats_equal_one_scheduler_doing_all_the_work() {
        // Two schedulers each run part of the workload; merging their
        // snapshots must equal one scheduler having run everything.
        let token = CancellationToken::new();
        let part_a = LaneScheduler::new(2);
        let part_b = LaneScheduler::new(2);
        let whole = LaneScheduler::new(2);
        part_a.dispatch(vec![lane(1, &token, 1), lane(1, &token, 2)], |_, p| p);
        part_b.dispatch(vec![lane(2, &token, 3)], |_, p| p);
        whole.dispatch(vec![lane(1, &token, 1), lane(1, &token, 2)], |_, p| p);
        whole.dispatch(vec![lane(2, &token, 3)], |_, p| p);
        let mut merged = part_a.stats();
        merged.merge(&part_b.stats());
        let expected = whole.stats();
        assert_eq!(merged.rounds, expected.rounds);
        assert_eq!(merged.lanes_executed, expected.lanes_executed);
        assert_eq!(merged.lanes_cancelled, expected.lanes_cancelled);
        assert_eq!(
            merged.local + merged.stolen,
            expected.local + expected.stolen,
            "every lane is counted exactly once"
        );
        // Merging an empty snapshot changes nothing.
        let before = merged;
        merged.merge(&LaneSchedulerStats::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn progress_hook_ticks_once_per_executed_lane() {
        struct Counter(AtomicU64);
        impl ProgressHook for Counter {
            fn tick(&self, point: ProgressPoint) {
                assert_eq!(point, ProgressPoint::Dispatch);
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let sched = LaneScheduler::new(3);
        let live = CancellationToken::new();
        let doomed = CancellationToken::new();
        doomed.cancel();
        let lanes = vec![
            lane(1, &live, 1),
            lane(2, &doomed, 2),
            lane(1, &live, 3),
            lane(1, &live, 4),
        ];
        let counter = Counter(AtomicU64::new(0));
        let results = sched.dispatch_hooked(lanes, Some(&counter), |_, p| p);
        assert_eq!(results, vec![Some(1), None, Some(3), Some(4)]);
        // Cancelled lanes are skipped work, not progress: no tick.
        assert_eq!(counter.0.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn stats_accumulate_across_rounds() {
        let sched = LaneScheduler::new(2);
        let token = CancellationToken::new();
        for _ in 0..3 {
            sched.dispatch(vec![lane(1, &token, 1), lane(2, &token, 2)], |_, p| p);
        }
        let stats = sched.stats();
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.lanes_executed, 6);
    }
}
