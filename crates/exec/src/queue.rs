//! The parallel job pool.
//!
//! Standalone validation tests "are run in parallel" (§3.2). The pool takes
//! a batch of job specifications and a pure job function, executes them on
//! `threads` workers via a crossbeam channel, and returns results sorted by
//! job id so downstream bookkeeping is deterministic regardless of
//! scheduling order.

use crossbeam::channel;

use crate::job::{JobResult, JobSpec};

/// A fixed-width worker pool for running job batches.
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// Creates a pool with `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        JobPool {
            threads: threads.max(1),
        }
    }

    /// Runs every job in `specs` through `run`, in parallel, returning the
    /// results sorted by job id.
    ///
    /// `run` must be pure per job spec (it may read shared state); results
    /// are then independent of scheduling order.
    pub fn run_batch<F>(&self, specs: Vec<JobSpec>, run: F) -> Vec<JobResult>
    where
        F: Fn(&JobSpec) -> JobResult + Sync,
    {
        if specs.is_empty() {
            return Vec::new();
        }
        let (spec_tx, spec_rx) = channel::unbounded::<JobSpec>();
        let (result_tx, result_rx) = channel::unbounded::<JobResult>();
        let n = specs.len();
        for spec in specs {
            spec_tx.send(spec).expect("open channel");
        }
        drop(spec_tx);

        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads {
                let spec_rx = spec_rx.clone();
                let result_tx = result_tx.clone();
                let run = &run;
                scope.spawn(move |_| {
                    while let Ok(spec) = spec_rx.recv() {
                        let result = run(&spec);
                        result_tx.send(result).expect("open channel");
                    }
                });
            }
        })
        .expect("worker panicked");
        drop(result_tx);

        let mut results: Vec<JobResult> = result_rx.iter().collect();
        assert_eq!(results.len(), n, "every job must produce a result");
        results.sort_by_key(|r| r.id);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobStatus};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("job-{id}"),
            tag: "test".into(),
            image_label: "SL6/64bit gcc4.4".into(),
            submitted_at: 0,
            inputs: vec![],
        }
    }

    fn echo_result(s: &JobSpec) -> JobResult {
        JobResult {
            id: s.id,
            status: if s.id.0.is_multiple_of(7) {
                JobStatus::Failed(1)
            } else {
                JobStatus::Succeeded
            },
            log: format!("ran {}", s.name),
            outputs: vec![],
            started_at: 0,
            finished_at: 1,
        }
    }

    #[test]
    fn batch_runs_every_job_exactly_once() {
        let pool = JobPool::new(4);
        let specs: Vec<JobSpec> = (1..=50).map(spec).collect();
        let results = pool.run_batch(specs, echo_result);
        assert_eq!(results.len(), 50);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, JobId(i as u64 + 1), "sorted by id");
        }
    }

    #[test]
    fn results_deterministic_across_thread_counts() {
        let specs: Vec<JobSpec> = (1..=30).map(spec).collect();
        let one = JobPool::new(1).run_batch(specs.clone(), echo_result);
        let eight = JobPool::new(8).run_batch(specs, echo_result);
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_batch_is_fine() {
        let results = JobPool::new(4).run_batch(vec![], echo_result);
        assert!(results.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let results = JobPool::new(0).run_batch(vec![spec(1)], echo_result);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn pool_actually_parallelises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let specs: Vec<JobSpec> = (1..=16).map(spec).collect();
        JobPool::new(8).run_batch(specs, |s| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            concurrent.fetch_sub(1, Ordering::SeqCst);
            echo_result(s)
        });
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "at least two jobs must overlap"
        );
    }
}
