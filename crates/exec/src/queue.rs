//! The parallel job pool.
//!
//! Standalone validation tests "are run in parallel" (§3.2). [`JobPool`] is
//! the job-batch façade over the generic work-stealing scheduler in
//! [`crate::pool`]: it takes a batch of job specifications and a pure job
//! function, executes them on `threads` workers, and returns results sorted
//! by job id so downstream bookkeeping is deterministic regardless of
//! scheduling order.

use crate::job::{JobResult, JobSpec};
use crate::pool::WorkStealingPool;

/// A fixed-width worker pool for running job batches.
pub struct JobPool {
    pool: WorkStealingPool,
}

impl JobPool {
    /// Creates a pool with `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        JobPool {
            pool: WorkStealingPool::new(threads),
        }
    }

    /// Runs every job in `specs` through `run`, in parallel, returning the
    /// results sorted by job id.
    ///
    /// `run` must be pure per job spec (it may read shared state); results
    /// are then independent of scheduling order.
    pub fn run_batch<F>(&self, specs: Vec<JobSpec>, run: F) -> Vec<JobResult>
    where
        F: Fn(&JobSpec) -> JobResult + Sync,
    {
        let mut results = self.pool.run(specs, |_, spec| run(&spec));
        results.sort_by_key(|r| r.id);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobStatus};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("job-{id}"),
            tag: "test".into(),
            image_label: "SL6/64bit gcc4.4".into(),
            submitted_at: 0,
            inputs: vec![],
        }
    }

    fn echo_result(s: &JobSpec) -> JobResult {
        JobResult {
            id: s.id,
            status: if s.id.0.is_multiple_of(7) {
                JobStatus::Failed(1)
            } else {
                JobStatus::Succeeded
            },
            log: format!("ran {}", s.name),
            outputs: vec![],
            started_at: 0,
            finished_at: 1,
        }
    }

    #[test]
    fn batch_runs_every_job_exactly_once() {
        let pool = JobPool::new(4);
        let specs: Vec<JobSpec> = (1..=50).map(spec).collect();
        let results = pool.run_batch(specs, echo_result);
        assert_eq!(results.len(), 50);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, JobId(i as u64 + 1), "sorted by id");
        }
    }

    #[test]
    fn results_deterministic_across_thread_counts() {
        let specs: Vec<JobSpec> = (1..=30).map(spec).collect();
        let one = JobPool::new(1).run_batch(specs.clone(), echo_result);
        let eight = JobPool::new(8).run_batch(specs, echo_result);
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_batch_is_fine() {
        let results = JobPool::new(4).run_batch(vec![], echo_result);
        assert!(results.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let results = JobPool::new(0).run_batch(vec![spec(1)], echo_result);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn pool_actually_parallelises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let specs: Vec<JobSpec> = (1..=16).map(spec).collect();
        JobPool::new(8).run_batch(specs, |s| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            concurrent.fetch_sub(1, Ordering::SeqCst);
            echo_result(s)
        });
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "at least two jobs must overlap"
        );
    }
}
