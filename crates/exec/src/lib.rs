//! # sp-exec — the job execution substrate
//!
//! The sp-system runs its regular builds and validation tests as jobs on
//! client machines: "new client machines (as a virtual machine or a normal
//! physical machine like a batch or grid worker node) can easily be added.
//! The only requirement of a new machine is to have access to the common
//! sp-system storage … as well as the ability to run a cron-job on the
//! client." (§3.1)
//!
//! * [`clock`] — the virtual clock providing the Unix timestamps of §3.3.
//! * [`cron`] — cron expressions and next-fire computation.
//! * [`job`] — job specifications, unique job ids, job results.
//! * [`client`] — client machines and the two joining requirements.
//! * [`poll`] — pull-model polling primitives: jittered exponential
//!   backoff and the idle-bounded poll loop fleet workers drain a shared
//!   queue with.
//! * [`pool`] — the generic work-stealing scheduler: per-worker deques,
//!   oldest-first stealing, results in task-index order.
//! * [`sched`] — fair-share lane dispatch over one shared pool:
//!   round-robin interleaving across campaigns, campaign-scoped
//!   cancellation tokens, scheduling counters.
//! * [`queue`] — the job-batch façade over the pool, with deterministic
//!   result collection by job id.
//! * [`chain`] — DAG-structured analysis chains: "some of these tests …
//!   are run in parallel, many are run sequentially and form discrete parts
//!   in one of several full analysis chains" (§3.2).
//!
//! ## Example
//!
//! ```
//! use sp_exec::{CronSchedule, VirtualClock};
//!
//! let clock = VirtualClock::starting_at(1_356_998_400); // 2013-01-01 00:00 UTC
//! let nightly = CronSchedule::nightly();
//! let next = nightly.next_after(clock.now()).unwrap();
//! assert!(next > clock.now());
//! clock.advance_to(next);
//! assert_eq!(clock.now(), next);
//! ```

pub mod chain;
pub mod client;
pub mod clock;
pub mod cron;
pub mod job;
pub mod poll;
pub mod pool;
pub mod queue;
pub mod sched;

pub use chain::{ChainDef, ChainError, ChainReport, StageDef, StageStatus};
pub use client::{Client, ClientError, ClientKind};
pub use clock::VirtualClock;
pub use cron::{CronError, CronSchedule};
pub use job::{JobId, JobIdGenerator, JobResult, JobSpec, JobStatus};
pub use poll::{Backoff, PollLoop, PollOutcome, PollStats, RetryPolicy};
pub use pool::{PoolStats, WorkStealingPool};
pub use queue::JobPool;
pub use sched::{
    CampaignId, CancellationToken, Lane, LaneScheduler, LaneSchedulerStats, ProgressHook,
    ProgressPoint, TracingProgressHook,
};
