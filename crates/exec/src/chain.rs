//! DAG-structured analysis chains.
//!
//! "Whereas some of these tests examine the results of stand alone
//! executables and are run in parallel, many are run sequentially and form
//! discrete parts in one of several full analysis chains: from MC
//! generation and simulation, through multi-level file production and
//! ending with a full physics analysis and subsequent validation of the
//! results." (§3.2)
//!
//! A [`ChainDef`] declares named stages with dependencies; the executor
//! runs stages in dependency order, feeding each stage the outputs of its
//! prerequisites and skipping everything downstream of a failure — the
//! behaviour a real multi-stage production exhibits when an intermediate
//! file is missing.

use std::collections::BTreeMap;

/// One stage of a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDef {
    /// Stage name, unique within the chain (`mcgen`, `sim`, `dst`, …).
    pub name: String,
    /// Names of stages whose outputs this stage consumes.
    pub needs: Vec<String>,
}

impl StageDef {
    /// Creates a stage with dependencies.
    pub fn new(name: impl Into<String>, needs: &[&str]) -> Self {
        StageDef {
            name: name.into(),
            needs: needs.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Errors validating a chain definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Two stages share a name.
    DuplicateStage(String),
    /// A stage needs an undeclared stage.
    UnknownStage {
        /// The declaring stage.
        stage: String,
        /// The missing prerequisite.
        needs: String,
    },
    /// The stage graph is cyclic.
    Cycle,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::DuplicateStage(s) => write!(f, "duplicate stage '{s}'"),
            ChainError::UnknownStage { stage, needs } => {
                write!(f, "stage '{stage}' needs unknown stage '{needs}'")
            }
            ChainError::Cycle => write!(f, "stage graph is cyclic"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A validated chain definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainDef {
    /// Chain name (`nc-dis-chain`).
    pub name: String,
    stages: Vec<StageDef>,
    /// Execution order (indices into `stages`), dependency-consistent.
    order: Vec<usize>,
}

impl ChainDef {
    /// Validates and builds a chain.
    pub fn new(name: impl Into<String>, stages: Vec<StageDef>) -> Result<Self, ChainError> {
        let mut index: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, stage) in stages.iter().enumerate() {
            if index.insert(stage.name.as_str(), i).is_some() {
                return Err(ChainError::DuplicateStage(stage.name.clone()));
            }
        }
        for stage in &stages {
            for need in &stage.needs {
                if !index.contains_key(need.as_str()) {
                    return Err(ChainError::UnknownStage {
                        stage: stage.name.clone(),
                        needs: need.clone(),
                    });
                }
            }
        }
        // Kahn's algorithm; stable order by declaration index.
        let n = stages.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, stage) in stages.iter().enumerate() {
            for need in &stage.needs {
                indegree[i] += 1;
                dependents[index[need.as_str()]].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&i) = ready.first() {
            ready.remove(0);
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                    ready.sort_unstable();
                }
            }
        }
        if order.len() != n {
            return Err(ChainError::Cycle);
        }
        Ok(ChainDef {
            name: name.into(),
            stages,
            order,
        })
    }

    /// The canonical H1-style full analysis chain of the paper:
    /// MC generation → detector simulation → (multi-level) file production
    /// → physics analysis → validation of the results.
    pub fn full_analysis_chain(name: impl Into<String>) -> Self {
        ChainDef::new(
            name,
            vec![
                StageDef::new("mcgen", &[]),
                StageDef::new("sim", &["mcgen"]),
                StageDef::new("dst", &["sim"]),
                StageDef::new("microdst", &["dst"]),
                StageDef::new("analysis", &["microdst"]),
                StageDef::new("validation", &["analysis"]),
            ],
        )
        .expect("static chain is valid")
    }

    /// Stages in declaration order.
    pub fn stages(&self) -> &[StageDef] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Executes the chain. For each stage in dependency order, `run_stage`
    /// receives the stage and the accumulated outputs of its prerequisites;
    /// it returns either a stage output value or an error string. Stages
    /// downstream of a failure are skipped.
    pub fn execute<T, F>(&self, mut run_stage: F) -> ChainReport<T>
    where
        T: Clone,
        F: FnMut(&StageDef, &BTreeMap<String, T>) -> Result<T, String>,
    {
        let mut outputs: BTreeMap<String, T> = BTreeMap::new();
        let mut statuses: Vec<(String, StageStatus)> = Vec::with_capacity(self.len());
        let mut failed: BTreeMap<String, String> = BTreeMap::new();

        for &idx in &self.order {
            let stage = &self.stages[idx];
            // If any prerequisite did not succeed, skip.
            if let Some(bad) = stage.needs.iter().find(|n| !outputs.contains_key(*n)) {
                let cause = failed
                    .get(bad.as_str())
                    .cloned()
                    .unwrap_or_else(|| "prerequisite skipped".to_string());
                statuses.push((
                    stage.name.clone(),
                    StageStatus::Skipped {
                        missing: bad.clone(),
                        cause,
                    },
                ));
                failed.insert(stage.name.clone(), format!("skipped: needs {bad}"));
                continue;
            }
            let needed: BTreeMap<String, T> = stage
                .needs
                .iter()
                .map(|n| (n.clone(), outputs[n.as_str()].clone()))
                .collect();
            match run_stage(stage, &needed) {
                Ok(value) => {
                    outputs.insert(stage.name.clone(), value);
                    statuses.push((stage.name.clone(), StageStatus::Succeeded));
                }
                Err(message) => {
                    failed.insert(stage.name.clone(), message.clone());
                    statuses.push((stage.name.clone(), StageStatus::Failed(message)));
                }
            }
        }

        // Report stages in declaration order.
        let by_name: BTreeMap<String, StageStatus> = statuses.into_iter().collect();
        let stage_status: Vec<(String, StageStatus)> = self
            .stages
            .iter()
            .map(|s| (s.name.clone(), by_name[s.name.as_str()].clone()))
            .collect();
        ChainReport {
            chain: self.name.clone(),
            stages: stage_status,
            outputs,
        }
    }
}

/// Status of one executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageStatus {
    /// Produced its output.
    Succeeded,
    /// Ran and failed with the given message.
    Failed(String),
    /// Not run: prerequisite `missing` unavailable.
    Skipped {
        /// Name of the missing prerequisite.
        missing: String,
        /// Why it was missing.
        cause: String,
    },
}

impl StageStatus {
    /// Whether the stage produced output.
    pub fn succeeded(&self) -> bool {
        matches!(self, StageStatus::Succeeded)
    }
}

/// Result of executing a chain.
#[derive(Debug, Clone)]
pub struct ChainReport<T> {
    /// Chain name.
    pub chain: String,
    /// Per-stage status in declaration order.
    pub stages: Vec<(String, StageStatus)>,
    /// Outputs of the successful stages.
    pub outputs: BTreeMap<String, T>,
}

impl<T> ChainReport<T> {
    /// Whether every stage succeeded.
    pub fn all_succeeded(&self) -> bool {
        self.stages.iter().all(|(_, s)| s.succeeded())
    }

    /// Name of the first failed stage, if any.
    pub fn first_failure(&self) -> Option<&str> {
        self.stages
            .iter()
            .find(|(_, s)| matches!(s, StageStatus::Failed(_)))
            .map(|(n, _)| n.as_str())
    }

    /// Number of skipped stages.
    pub fn skipped_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|(_, s)| matches!(s, StageStatus::Skipped { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_chain_has_six_stages() {
        let chain = ChainDef::full_analysis_chain("h1-nc");
        assert_eq!(chain.len(), 6);
        let names: Vec<&str> = chain.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["mcgen", "sim", "dst", "microdst", "analysis", "validation"]
        );
    }

    #[test]
    fn validation_rejects_duplicates_unknowns_cycles() {
        assert!(matches!(
            ChainDef::new("c", vec![StageDef::new("a", &[]), StageDef::new("a", &[])]),
            Err(ChainError::DuplicateStage(_))
        ));
        assert!(matches!(
            ChainDef::new("c", vec![StageDef::new("a", &["ghost"])]),
            Err(ChainError::UnknownStage { .. })
        ));
        assert!(matches!(
            ChainDef::new(
                "c",
                vec![StageDef::new("a", &["b"]), StageDef::new("b", &["a"])]
            ),
            Err(ChainError::Cycle)
        ));
    }

    #[test]
    fn execute_threads_outputs_through() {
        let chain = ChainDef::full_analysis_chain("h1-nc");
        let report = chain.execute(|stage, inputs| {
            let upstream: usize = inputs.values().sum();
            Ok(upstream + stage.name.len())
        });
        assert!(report.all_succeeded());
        // mcgen=5, sim=5+3=8, dst=8+3=11, microdst=11+8=19,
        // analysis=19+8=27, validation=27+10=37.
        assert_eq!(report.outputs["validation"], 37);
    }

    #[test]
    fn failure_skips_downstream_only() {
        let chain = ChainDef::new(
            "mixed",
            vec![
                StageDef::new("gen", &[]),
                StageDef::new("sim", &["gen"]),
                StageDef::new("ana", &["sim"]),
                StageDef::new("independent", &[]),
            ],
        )
        .unwrap();
        let report = chain.execute(|stage, _| {
            if stage.name == "sim" {
                Err("segfault in geometry init".to_string())
            } else {
                Ok(1)
            }
        });
        assert!(!report.all_succeeded());
        assert_eq!(report.first_failure(), Some("sim"));
        assert_eq!(report.skipped_count(), 1);
        let by_name: BTreeMap<&str, &StageStatus> =
            report.stages.iter().map(|(n, s)| (n.as_str(), s)).collect();
        assert!(by_name["gen"].succeeded());
        assert!(matches!(by_name["sim"], StageStatus::Failed(_)));
        assert!(matches!(by_name["ana"], StageStatus::Skipped { .. }));
        assert!(by_name["independent"].succeeded());
    }

    #[test]
    fn skip_cascades_transitively() {
        let chain = ChainDef::full_analysis_chain("h1-nc");
        let report = chain.execute(|stage, _| {
            if stage.name == "mcgen" {
                Err("generator license expired".to_string())
            } else {
                Ok(0)
            }
        });
        assert_eq!(report.skipped_count(), 5, "everything downstream skips");
    }

    #[test]
    fn diamond_dependencies() {
        let chain = ChainDef::new(
            "diamond",
            vec![
                StageDef::new("src", &[]),
                StageDef::new("left", &["src"]),
                StageDef::new("right", &["src"]),
                StageDef::new("merge", &["left", "right"]),
            ],
        )
        .unwrap();
        let report = chain.execute(|stage, inputs| {
            Ok(match stage.name.as_str() {
                "src" => 1,
                "merge" => inputs["left"] + inputs["right"],
                _ => inputs["src"] * 10,
            })
        });
        assert_eq!(report.outputs["merge"], 20);
    }

    #[test]
    fn empty_chain() {
        let chain = ChainDef::new("empty", vec![]).unwrap();
        let report = chain.execute(|_, _| Ok(0));
        assert!(report.all_succeeded());
        assert!(report.is_empty_report());
    }

    impl<T> ChainReport<T> {
        fn is_empty_report(&self) -> bool {
            self.stages.is_empty() && self.outputs.is_empty()
        }
    }
}
