//! Jobs and their bookkeeping.
//!
//! "Each test-job started in the sp-system is typically assigned a unique
//! ID, and all scripts and input files used in the test as well as all
//! output files are kept. … In addition to this unique ID, validation jobs
//! may be tagged with a description, indicating which software versions
//! were used, and the Unix time stamp of the execution to aid the
//! bookkeeping." (§3.3)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sp_store::ObjectId;

/// A unique job identifier (`sp-000042`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sp-{:06}", self.0)
    }
}

/// Thread-safe generator of unique, monotonically increasing job ids.
#[derive(Clone, Debug, Default)]
pub struct JobIdGenerator {
    next: Arc<AtomicU64>,
}

impl JobIdGenerator {
    /// Creates a generator starting at id 1.
    pub fn new() -> Self {
        JobIdGenerator {
            next: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Allocates the next id.
    pub fn allocate(&self) -> JobId {
        JobId(self.next.fetch_add(1, Ordering::SeqCst))
    }

    /// How many ids have been allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::SeqCst) - 1
    }
}

/// A job specification: everything needed to run and to re-run it later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Human-readable name (`compile/h1rec`, `chain/nc-dis/mcgen`).
    pub name: String,
    /// Description tag: "indicating which software versions were used".
    pub tag: String,
    /// Label of the image/configuration the job runs on.
    pub image_label: String,
    /// Unix timestamp of submission.
    pub submitted_at: u64,
    /// Content addresses of the input objects (scripts, steering files).
    pub inputs: Vec<(String, ObjectId)>,
}

/// Terminal status of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Exit code 0.
    Succeeded,
    /// Non-zero exit code.
    Failed(i32),
    /// Killed by signal / crashed.
    Crashed(String),
}

impl JobStatus {
    /// Whether the job completed successfully.
    pub fn is_success(&self) -> bool {
        matches!(self, JobStatus::Succeeded)
    }
}

/// The result of a completed job. Outputs are kept, by content address, in
/// the common storage ("all output files are kept").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The job's id.
    pub id: JobId,
    /// Terminal status.
    pub status: JobStatus,
    /// Captured log text.
    pub log: String,
    /// Named output objects.
    pub outputs: Vec<(String, ObjectId)>,
    /// Unix timestamp the job started.
    pub started_at: u64,
    /// Unix timestamp the job finished.
    pub finished_at: u64,
}

impl JobResult {
    /// Wall-clock duration in seconds.
    pub fn duration(&self) -> u64 {
        self.finished_at.saturating_sub(self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_the_paper() {
        assert_eq!(JobId(42).to_string(), "sp-000042");
        assert_eq!(JobId(1_000_000).to_string(), "sp-1000000");
    }

    #[test]
    fn generator_is_unique_and_monotonic() {
        let gen = JobIdGenerator::new();
        let a = gen.allocate();
        let b = gen.allocate();
        assert!(a < b);
        assert_eq!(gen.allocated(), 2);
    }

    #[test]
    fn generator_is_thread_safe() {
        let gen = JobIdGenerator::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = gen.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| g.allocate().0).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "no duplicate ids");
    }

    #[test]
    fn status_and_duration() {
        assert!(JobStatus::Succeeded.is_success());
        assert!(!JobStatus::Failed(1).is_success());
        assert!(!JobStatus::Crashed("SIGSEGV".into()).is_success());
        let result = JobResult {
            id: JobId(1),
            status: JobStatus::Succeeded,
            log: String::new(),
            outputs: vec![],
            started_at: 100,
            finished_at: 160,
        };
        assert_eq!(result.duration(), 60);
    }
}
