//! Client machines.
//!
//! "The sp-system is designed and constructed in a such a way that new
//! client machines (as a virtual machine or a normal physical machine like
//! a batch or grid worker node) can easily be added. The only requirement
//! of a new machine is to have access to the common sp-system storage …
//! as well as the ability to run a cron-job on the client." (§3.1)

use crate::cron::CronSchedule;

/// What kind of machine a client is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientKind {
    /// A hosted virtual machine running a named image configuration.
    VirtualMachine {
        /// Label of the image the VM boots.
        image_label: String,
    },
    /// A physical batch node.
    BatchNode,
    /// A grid worker node.
    GridWorker,
}

impl ClientKind {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            ClientKind::VirtualMachine { image_label } => format!("vm[{image_label}]"),
            ClientKind::BatchNode => "batch".to_string(),
            ClientKind::GridWorker => "grid".to_string(),
        }
    }
}

/// Why a client could not join the sp-system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The machine cannot mount the common storage.
    NoStorageAccess,
    /// The machine cannot run cron jobs.
    NoCron,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoStorageAccess => {
                write!(f, "client has no access to the common sp-system storage")
            }
            ClientError::NoCron => write!(f, "client cannot run a cron job"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A registered sp-system client.
#[derive(Debug, Clone, PartialEq)]
pub struct Client {
    /// Unique client name (`sp-vm-sl6-64`, `bird23.desy.de`).
    pub name: String,
    /// Machine kind.
    pub kind: ClientKind,
    /// The cron schedule driving its regular work.
    pub schedule: CronSchedule,
}

impl Client {
    /// Registers a client, enforcing the paper's two requirements.
    pub fn register(
        name: impl Into<String>,
        kind: ClientKind,
        schedule: CronSchedule,
        has_storage_access: bool,
        can_run_cron: bool,
    ) -> Result<Client, ClientError> {
        if !has_storage_access {
            return Err(ClientError::NoStorageAccess);
        }
        if !can_run_cron {
            return Err(ClientError::NoCron);
        }
        Ok(Client {
            name: name.into(),
            kind,
            schedule,
        })
    }

    /// All firing times of this client's cron in `(from, to]`.
    pub fn work_times(&self, from: u64, to: u64) -> Vec<u64> {
        self.schedule.fires_between(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_requires_storage_and_cron() {
        let schedule = CronSchedule::nightly();
        assert_eq!(
            Client::register("vm1", ClientKind::BatchNode, schedule.clone(), false, true)
                .unwrap_err(),
            ClientError::NoStorageAccess
        );
        assert_eq!(
            Client::register("vm1", ClientKind::BatchNode, schedule.clone(), true, false)
                .unwrap_err(),
            ClientError::NoCron
        );
        assert!(Client::register("vm1", ClientKind::BatchNode, schedule, true, true).is_ok());
    }

    #[test]
    fn any_machine_kind_can_join() {
        let schedule = CronSchedule::nightly();
        for kind in [
            ClientKind::VirtualMachine {
                image_label: "SL6/64bit gcc4.4".into(),
            },
            ClientKind::BatchNode,
            ClientKind::GridWorker,
        ] {
            assert!(
                Client::register("m", kind.clone(), schedule.clone(), true, true).is_ok(),
                "{kind:?} must be able to join"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            ClientKind::VirtualMachine {
                image_label: "SL5/32bit gcc4.1".into()
            }
            .label(),
            "vm[SL5/32bit gcc4.1]"
        );
        assert_eq!(ClientKind::GridWorker.label(), "grid");
    }

    #[test]
    fn work_times_follow_schedule() {
        let client = Client::register(
            "nightly-vm",
            ClientKind::BatchNode,
            CronSchedule::nightly(),
            true,
            true,
        )
        .unwrap();
        // Three days starting 2013-10-29 -> three nightly builds.
        let from = 1_383_004_800;
        let times = client.work_times(from, from + 3 * 86_400);
        assert_eq!(times.len(), 3);
    }
}
