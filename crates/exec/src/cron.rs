//! Cron expressions.
//!
//! Each sp-system client runs its work from a cron job (§3.1). The parser
//! supports the classic five-field syntax with `*`, lists, ranges and
//! steps; [`CronSchedule::next_after`] computes the next firing time from a
//! Unix timestamp using proper civil-calendar arithmetic.

use std::collections::BTreeSet;

/// Errors parsing a cron expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CronError {
    /// Wrong number of fields (expected 5).
    FieldCount(usize),
    /// A field failed to parse.
    BadField {
        /// Field name (`minute`, `hour`, …).
        field: &'static str,
        /// Offending text.
        text: String,
    },
    /// A value is outside the field's legal range.
    OutOfRange {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: u32,
    },
}

impl std::fmt::Display for CronError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CronError::FieldCount(n) => write!(f, "expected 5 cron fields, got {n}"),
            CronError::BadField { field, text } => {
                write!(f, "bad {field} field: '{text}'")
            }
            CronError::OutOfRange { field, value } => {
                write!(f, "{field} value {value} out of range")
            }
        }
    }
}

impl std::error::Error for CronError {}

/// A parsed five-field cron schedule (minute, hour, day-of-month, month,
/// day-of-week; 0 = Sunday).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CronSchedule {
    minutes: BTreeSet<u32>,
    hours: BTreeSet<u32>,
    days_of_month: BTreeSet<u32>,
    months: BTreeSet<u32>,
    days_of_week: BTreeSet<u32>,
    /// Whether the day-of-month field was `*` (affects the dom/dow OR rule).
    dom_is_wildcard: bool,
    /// Whether the day-of-week field was `*`.
    dow_is_wildcard: bool,
}

impl CronSchedule {
    /// Parses `"m h dom mon dow"`.
    pub fn parse(expr: &str) -> Result<Self, CronError> {
        let fields: Vec<&str> = expr.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(CronError::FieldCount(fields.len()));
        }
        Ok(CronSchedule {
            minutes: parse_field(fields[0], "minute", 0, 59)?,
            hours: parse_field(fields[1], "hour", 0, 23)?,
            days_of_month: parse_field(fields[2], "day-of-month", 1, 31)?,
            months: parse_field(fields[3], "month", 1, 12)?,
            days_of_week: parse_field(fields[4], "day-of-week", 0, 6)?,
            dom_is_wildcard: fields[2] == "*",
            dow_is_wildcard: fields[4] == "*",
        })
    }

    /// The nightly schedule the DESY deployment used for regular builds.
    pub fn nightly() -> Self {
        CronSchedule::parse("0 3 * * *").expect("static expression")
    }

    /// Whether the schedule matches the civil time components.
    fn matches(&self, minute: u32, hour: u32, dom: u32, month: u32, dow: u32) -> bool {
        if !self.minutes.contains(&minute)
            || !self.hours.contains(&hour)
            || !self.months.contains(&month)
        {
            return false;
        }
        // Vixie-cron rule: if both dom and dow are restricted, either may
        // match; if only one is restricted, it must match.
        let dom_ok = self.days_of_month.contains(&dom);
        let dow_ok = self.days_of_week.contains(&dow);
        match (self.dom_is_wildcard, self.dow_is_wildcard) {
            (true, true) => true,
            (false, true) => dom_ok,
            (true, false) => dow_ok,
            (false, false) => dom_ok || dow_ok,
        }
    }

    /// The next firing time strictly after `after` (Unix seconds), or
    /// `None` if none found within ~5 years (pathological schedules like
    /// Feb 30).
    pub fn next_after(&self, after: u64) -> Option<u64> {
        // Round up to the next whole minute.
        let mut t = (after / 60 + 1) * 60;
        let limit = after + 5 * 366 * 86_400;
        while t <= limit {
            let civil = CivilTime::from_unix(t);
            if self.matches(
                civil.minute,
                civil.hour,
                civil.day,
                civil.month,
                civil.weekday,
            ) {
                return Some(t);
            }
            t += 60;
        }
        None
    }

    /// All firing times in the half-open interval `(from, to]`.
    pub fn fires_between(&self, from: u64, to: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut t = from;
        while let Some(next) = self.next_after(t) {
            if next > to {
                break;
            }
            out.push(next);
            t = next;
        }
        out
    }
}

fn parse_field(
    text: &str,
    field: &'static str,
    lo: u32,
    hi: u32,
) -> Result<BTreeSet<u32>, CronError> {
    let mut out = BTreeSet::new();
    for part in text.split(',') {
        let (range_part, step) = match part.split_once('/') {
            Some((r, s)) => {
                let step: u32 = s.parse().map_err(|_| CronError::BadField {
                    field,
                    text: part.to_string(),
                })?;
                if step == 0 {
                    return Err(CronError::BadField {
                        field,
                        text: part.to_string(),
                    });
                }
                (r, step)
            }
            None => (part, 1),
        };
        let (start, end) = if range_part == "*" {
            (lo, hi)
        } else if let Some((a, b)) = range_part.split_once('-') {
            let a: u32 = a.parse().map_err(|_| CronError::BadField {
                field,
                text: part.to_string(),
            })?;
            let b: u32 = b.parse().map_err(|_| CronError::BadField {
                field,
                text: part.to_string(),
            })?;
            (a, b)
        } else {
            let v: u32 = range_part.parse().map_err(|_| CronError::BadField {
                field,
                text: part.to_string(),
            })?;
            (v, v)
        };
        if start < lo || end > hi || start > end {
            return Err(CronError::OutOfRange {
                field,
                value: if end > hi { end } else { start },
            });
        }
        let mut v = start;
        while v <= end {
            out.insert(v);
            v += step;
        }
    }
    Ok(out)
}

/// Civil (proleptic Gregorian, UTC) time components of a Unix timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilTime {
    /// Year.
    pub year: i64,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
    /// Hour 0–23.
    pub hour: u32,
    /// Minute 0–59.
    pub minute: u32,
    /// Second 0–59.
    pub second: u32,
    /// Day of week, 0 = Sunday.
    pub weekday: u32,
}

impl CivilTime {
    /// Decomposes a Unix timestamp (Howard Hinnant's `civil_from_days`).
    pub fn from_unix(ts: u64) -> CivilTime {
        let days = (ts / 86_400) as i64;
        let secs = ts % 86_400;
        // 1970-01-01 was a Thursday (weekday 4).
        let weekday = ((days + 4) % 7) as u32;

        let z = days + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097);
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
        let year = if m <= 2 { y + 1 } else { y };

        CivilTime {
            year,
            month: m,
            day: d,
            hour: (secs / 3600) as u32,
            minute: ((secs % 3600) / 60) as u32,
            second: (secs % 60) as u32,
            weekday,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_time_reference_dates() {
        // 1970-01-01 00:00 Thursday.
        let t = CivilTime::from_unix(0);
        assert_eq!((t.year, t.month, t.day, t.weekday), (1970, 1, 1, 4));
        // 2013-10-29 (the paper's arXiv date) was a Tuesday.
        // 1383004800 = 2013-10-29T00:00:00Z.
        let t = CivilTime::from_unix(1_383_004_800);
        assert_eq!((t.year, t.month, t.day, t.weekday), (2013, 10, 29, 2));
        // Leap day 2012-02-29.
        let t = CivilTime::from_unix(1_330_473_600);
        assert_eq!((t.year, t.month, t.day), (2012, 2, 29));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            CronSchedule::parse("* * * *"),
            Err(CronError::FieldCount(4))
        ));
        assert!(CronSchedule::parse("x * * * *").is_err());
        assert!(CronSchedule::parse("61 * * * *").is_err());
        assert!(CronSchedule::parse("*/0 * * * *").is_err());
        assert!(CronSchedule::parse("5-2 * * * *").is_err());
        assert!(CronSchedule::parse("* * * 13 *").is_err());
    }

    #[test]
    fn every_minute_fires_next_minute() {
        let cron = CronSchedule::parse("* * * * *").unwrap();
        assert_eq!(cron.next_after(0), Some(60));
        assert_eq!(cron.next_after(59), Some(60));
        assert_eq!(cron.next_after(60), Some(120));
    }

    #[test]
    fn nightly_build_at_three() {
        let cron = CronSchedule::nightly();
        // From midnight 2013-10-29, next fire is 03:00 the same day.
        let midnight = 1_383_004_800;
        let fire = cron.next_after(midnight).unwrap();
        let civil = CivilTime::from_unix(fire);
        assert_eq!((civil.hour, civil.minute), (3, 0));
        assert_eq!(civil.day, 29);
        // From 04:00, next fire is 03:00 the following day.
        let fire = cron.next_after(midnight + 4 * 3600).unwrap();
        let civil = CivilTime::from_unix(fire);
        assert_eq!((civil.day, civil.hour), (30, 3));
    }

    #[test]
    fn steps_and_lists() {
        let cron = CronSchedule::parse("*/15 8,20 * * *").unwrap();
        let fires = cron.fires_between(1_383_004_800, 1_383_004_800 + 86_400);
        // 4 quarter-hours x 2 hours = 8 fires per day.
        assert_eq!(fires.len(), 8);
        for f in &fires {
            let c = CivilTime::from_unix(*f);
            assert!(c.hour == 8 || c.hour == 20);
            assert_eq!(c.minute % 15, 0);
        }
    }

    #[test]
    fn weekday_restriction() {
        // Mondays at noon.
        let cron = CronSchedule::parse("0 12 * * 1").unwrap();
        let fire = cron.next_after(1_383_004_800).unwrap(); // Tue 29 Oct 2013
        let civil = CivilTime::from_unix(fire);
        assert_eq!(civil.weekday, 1);
        assert_eq!((civil.month, civil.day), (11, 4)); // next Monday
    }

    #[test]
    fn dom_dow_or_rule() {
        // "0 0 13 * 5" fires on the 13th OR on Fridays (vixie rule).
        let cron = CronSchedule::parse("0 0 13 * 5").unwrap();
        let from = 1_383_004_800; // Tue 29 Oct 2013
        let first = cron.next_after(from).unwrap();
        let civil = CivilTime::from_unix(first);
        // Next Friday is 1 Nov 2013, before the next 13th.
        assert_eq!((civil.month, civil.day, civil.weekday), (11, 1, 5));
    }

    #[test]
    fn impossible_date_returns_none() {
        // 30 February never exists.
        let cron = CronSchedule::parse("0 0 30 2 *").unwrap();
        assert_eq!(cron.next_after(0), None);
    }

    #[test]
    fn month_boundaries() {
        let cron = CronSchedule::parse("0 0 1 * *").unwrap();
        // From 2013-10-29, next month start is Nov 1.
        let fire = cron.next_after(1_383_004_800).unwrap();
        let civil = CivilTime::from_unix(fire);
        assert_eq!((civil.year, civil.month, civil.day), (2013, 11, 1));
    }

    #[test]
    fn fires_between_is_exclusive_inclusive() {
        let cron = CronSchedule::parse("* * * * *").unwrap();
        let fires = cron.fires_between(60, 180);
        assert_eq!(fires, vec![120, 180]);
    }
}
