//! The virtual clock.
//!
//! Validation jobs are tagged with "the Unix time stamp of the execution to
//! aid the bookkeeping" (§3.3). A real deployment reads the system clock;
//! the simulation uses a shared monotonic virtual clock so that campaigns
//! are reproducible and timestamps in reports are stable across reruns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable, monotonically advancing Unix-time source.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    seconds: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock starting at the Unix epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Creates a clock starting at `epoch_seconds`.
    pub fn starting_at(epoch_seconds: u64) -> Self {
        let clock = VirtualClock::new();
        clock.seconds.store(epoch_seconds, Ordering::SeqCst);
        clock
    }

    /// Current time (seconds since the Unix epoch).
    pub fn now(&self) -> u64 {
        self.seconds.load(Ordering::SeqCst)
    }

    /// Advances the clock by `secs`, returning the new time.
    pub fn advance(&self, secs: u64) -> u64 {
        self.seconds.fetch_add(secs, Ordering::SeqCst) + secs
    }

    /// Moves the clock forward to `target` (no-op if already past it —
    /// the clock never goes backwards).
    pub fn advance_to(&self, target: u64) -> u64 {
        self.seconds.fetch_max(target, Ordering::SeqCst).max(target)
    }
}

/// Retention policies prune by age; threading the virtual clock through
/// as the [`sp_store::TimeSource`] makes those decisions happen in
/// *simulated* time — a long-horizon simulation that advances the clock
/// across years prunes exactly what a real deployment would have pruned
/// at that point of the timeline.
impl sp_store::TimeSource for VirtualClock {
    fn now_secs(&self) -> u64 {
        self.now()
    }
}

/// The start of the paper's deployment era: 2013-01-01T00:00:00Z.
pub const ERA_2013: u64 = 1_356_998_400;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_where_told() {
        assert_eq!(VirtualClock::new().now(), 0);
        assert_eq!(VirtualClock::starting_at(ERA_2013).now(), ERA_2013);
    }

    #[test]
    fn advances() {
        let clock = VirtualClock::starting_at(100);
        assert_eq!(clock.advance(50), 150);
        assert_eq!(clock.now(), 150);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = VirtualClock::starting_at(1000);
        assert_eq!(clock.advance_to(500), 1000);
        assert_eq!(clock.now(), 1000);
        assert_eq!(clock.advance_to(2000), 2000);
        assert_eq!(clock.now(), 2000);
    }

    #[test]
    fn clock_is_a_time_source() {
        use sp_store::TimeSource;
        let clock = VirtualClock::starting_at(ERA_2013);
        assert_eq!(clock.now_secs(), ERA_2013);
        clock.advance(10);
        assert_eq!(clock.now_secs(), ERA_2013 + 10);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let clock = VirtualClock::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = clock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now(), 8000);
    }
}
