//! The work-stealing execution pool.
//!
//! [`WorkStealingPool`] generalises the channel-fed [`crate::queue::JobPool`]
//! into a reusable scheduler for *any* indexed task batch: tasks are seeded
//! round-robin into per-worker deques, each worker drains its own queue
//! first and then steals from its peers (oldest-first, so stolen work is the
//! work least likely to be cache-hot on its owner), and results are returned
//! **ordered by task index** regardless of which worker ran what. That
//! deterministic ordering is what lets the campaign engine in `sp-core`
//! guarantee byte-identical summaries across worker counts.
//!
//! The paper's deployment motivates the shape: ">300 runs over sets of
//! pre-defined tests have been performed within the sp-system by the HERA
//! experiments" (§3.3) — a grid of independent, unevenly sized tasks
//! (HERMES validates in a fraction of H1's wall time), which is exactly the
//! load profile work stealing handles well and a fixed pre-partition does
//! not.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Steal, Stealer, Worker};
use sp_store::sha256;

/// Counters describing how a batch was scheduled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed from a worker's own queue.
    pub local: usize,
    /// Tasks executed after being stolen from a peer.
    pub stolen: usize,
}

impl PoolStats {
    /// Total tasks executed.
    pub fn total(&self) -> usize {
        self.local + self.stolen
    }
}

/// A fixed-width work-stealing pool.
///
/// The pool itself is stateless between batches (workers are scoped threads
/// spawned per [`run`](Self::run)), so one instance can be reused across
/// campaign repetitions without carrying state over a barrier.
pub struct WorkStealingPool {
    workers: usize,
}

impl WorkStealingPool {
    /// Creates a pool with `workers` worker threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        WorkStealingPool {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every task, in parallel, returning results ordered by
    /// task index (`results[i]` is `f(i, tasks[i])`).
    ///
    /// `f` must be pure per task (it may read shared state): together with
    /// the index ordering this makes the output independent of scheduling,
    /// worker count and steal interleaving.
    pub fn run<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_with_stats(tasks, f).0
    }

    /// Hashes many independent byte slices over the pool's workers,
    /// returning one SHA-256 digest per input in order. Inputs are split
    /// into contiguous chunks (several per worker, so stealing evens out
    /// size skew) and each chunk runs through the 4-lane
    /// [`sha256::digest_batch`] — pool parallelism multiplied by lane
    /// parallelism. Small batches skip thread spawn entirely.
    pub fn digest_batch(&self, inputs: &[&[u8]]) -> Vec<[u8; 32]> {
        if self.workers == 1 || inputs.len() < 8 {
            return sha256::digest_batch(inputs);
        }
        // At least 4 inputs per chunk keeps every chunk on the multilane
        // path; several chunks per worker lets stealing balance skew.
        let chunk = (inputs.len().div_ceil(self.workers * 4)).max(4);
        let ranges: Vec<std::ops::Range<usize>> = (0..inputs.len())
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(inputs.len()))
            .collect();
        self.run(ranges, |_, range| sha256::digest_batch(&inputs[range]))
            .into_iter()
            .flatten()
            .collect()
    }

    /// [`run`](Self::run), additionally reporting scheduling counters.
    pub fn run_with_stats<T, R, F>(&self, tasks: Vec<T>, f: F) -> (Vec<R>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let total = tasks.len();
        if total == 0 {
            return (Vec::new(), PoolStats::default());
        }
        let _batch_span = sp_obs::trace::span("pool", "batch");
        let workers = self.workers.min(total);

        // Seed the per-worker queues round-robin so every worker starts
        // with a fair share; FIFO local ends keep index order as the
        // tendency, which helps the collected results arrive nearly sorted.
        let queues: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<(usize, T)>> = queues.iter().map(|q| q.stealer()).collect();
        for (index, task) in tasks.into_iter().enumerate() {
            queues[index % workers].push((index, task));
        }

        let local_count = AtomicUsize::new(0);
        let stolen_count = AtomicUsize::new(0);
        // A panicking task must not leave its peers spinning on a
        // completion count that will never be reached: the first panic is
        // parked here, every worker bails out, and it is re-raised on the
        // caller thread after the scope joins.
        let abort = std::sync::atomic::AtomicBool::new(false);
        let panic_slot: std::sync::Mutex<Option<Box<dyn std::any::Any + Send>>> =
            std::sync::Mutex::new(None);
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, R)>();

        crossbeam::thread::scope(|scope| {
            for (me, queue) in queues.into_iter().enumerate() {
                let stealers = &stealers;
                let local_count = &local_count;
                let stolen_count = &stolen_count;
                let abort = &abort;
                let panic_slot = &panic_slot;
                let result_tx = result_tx.clone();
                let f = &f;
                scope.spawn(move |_| {
                    let execute = |index: usize, task: T| -> bool {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                f(index, task)
                            }));
                        match outcome {
                            Ok(result) => {
                                if result_tx.send((index, result)).is_err() {
                                    unreachable!("result channel outlives the scope");
                                }
                                true
                            }
                            Err(payload) => {
                                let mut slot = panic_slot.lock().expect("panic slot");
                                slot.get_or_insert(payload);
                                abort.store(true, Ordering::SeqCst);
                                false
                            }
                        }
                    };
                    loop {
                        if abort.load(Ordering::SeqCst) {
                            break;
                        }
                        // 1. Own queue first.
                        if let Some((index, task)) = queue.pop() {
                            local_count.fetch_add(1, Ordering::Relaxed);
                            if !execute(index, task) {
                                break;
                            }
                            continue;
                        }
                        // 2. Steal from peers, scanning away from ourselves
                        //    so two idle workers don't hammer one victim.
                        let mut stole = None;
                        let mut contended = false;
                        for offset in 1..stealers.len() {
                            let victim = (me + offset) % stealers.len();
                            match stealers[victim].steal() {
                                Steal::Success(task) => {
                                    stole = Some(task);
                                    break;
                                }
                                Steal::Retry => contended = true,
                                Steal::Empty => {}
                            }
                        }
                        if let Some((index, task)) = stole {
                            stolen_count.fetch_add(1, Ordering::Relaxed);
                            if !execute(index, task) {
                                break;
                            }
                            continue;
                        }
                        // 3. Every queue (own + all peers) was observed
                        //    empty with no contention. Tasks cannot enqueue
                        //    further tasks, so no new work can ever appear:
                        //    whatever remains is in flight on other workers
                        //    and this worker is done. Only a contended
                        //    (locked) queue — which may still hold tasks —
                        //    warrants another sweep.
                        if !contended {
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }
        })
        .expect("pool scope");
        drop(result_tx);

        if let Some(payload) = panic_slot.into_inner().expect("panic slot") {
            std::panic::resume_unwind(payload);
        }

        let mut indexed: Vec<(usize, R)> = result_rx.iter().collect();
        assert!(
            indexed.len() == total,
            "every task must produce a result ({} of {total})",
            indexed.len()
        );
        indexed.sort_by_key(|(index, _)| *index);
        let results = indexed.into_iter().map(|(_, r)| r).collect();
        let stats = PoolStats {
            local: local_count.load(Ordering::Relaxed),
            stolen: stolen_count.load(Ordering::Relaxed),
        };
        let registry = sp_obs::global();
        registry.counter("exec.pool.batches").incr();
        registry
            .counter("exec.pool.tasks_local")
            .add(stats.local as u64);
        registry
            .counter("exec.pool.tasks_stolen")
            .add(stats.stolen as u64);
        (results, stats)
    }
}

/// Pool-parallel [`sha256::BatchDigester`]: storage import and snapshot
/// export hand their independent-object hashing here without `sp_store`
/// depending on an executor.
impl sha256::BatchDigester for WorkStealingPool {
    fn digest_all(&self, inputs: &[&[u8]]) -> Vec<[u8; 32]> {
        self.digest_batch(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_task_index() {
        let pool = WorkStealingPool::new(4);
        let tasks: Vec<u64> = (0..100).collect();
        let results = pool.run(tasks, |index, task| {
            assert_eq!(index as u64, task);
            task * 2
        });
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let tasks: Vec<u64> = (0..50).collect();
        let one = WorkStealingPool::new(1).run(tasks.clone(), |i, t| i as u64 + t);
        let eight = WorkStealingPool::new(8).run(tasks, |i, t| i as u64 + t);
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_batch_is_fine() {
        let results = WorkStealingPool::new(4).run(Vec::<u32>::new(), |_, t| t);
        assert!(results.is_empty());
        assert_eq!(WorkStealingPool::new(0).workers(), 1, "clamped");
    }

    #[test]
    fn uneven_tasks_are_stolen() {
        // One long task pins a worker; the rest must migrate to its peers.
        let mut tasks = vec![50u64];
        tasks.extend(std::iter::repeat_n(1u64, 63));
        let pool = WorkStealingPool::new(4);
        let (results, stats) = pool.run_with_stats(tasks, |_, millis| {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            millis
        });
        assert_eq!(results.len(), 64);
        assert_eq!(stats.total(), 64);
        assert!(
            stats.stolen > 0,
            "uneven load must trigger stealing: {stats:?}"
        );
    }

    #[test]
    fn pool_actually_parallelises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        WorkStealingPool::new(8).run((0..16).collect::<Vec<u32>>(), |_, t| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            concurrent.fetch_sub(1, Ordering::SeqCst);
            t
        });
        assert!(peak.load(Ordering::SeqCst) > 1);
    }

    #[test]
    fn pool_digests_match_scalar_hashing() {
        // Sizes straddle the small-batch cutoff and the chunking maths;
        // every digest must equal the one-shot scalar hash regardless of
        // worker count or chunk boundaries.
        let payloads: Vec<Vec<u8>> = (0..53)
            .map(|i| (0..i * 37).map(|b| (b % 251) as u8).collect())
            .collect();
        for workers in [1, 4] {
            let pool = WorkStealingPool::new(workers);
            for n in [0usize, 1, 7, 8, 9, 53] {
                let inputs: Vec<&[u8]> = payloads[..n].iter().map(|p| p.as_slice()).collect();
                let digests = pool.digest_batch(&inputs);
                assert_eq!(digests.len(), n);
                for (i, d) in digests.iter().enumerate() {
                    assert_eq!(
                        *d,
                        sha256::Sha256::digest_of(inputs[i]),
                        "workers {workers}, batch {n}, input {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn panics_in_tasks_propagate() {
        let outcome = std::panic::catch_unwind(|| {
            WorkStealingPool::new(2).run(vec![1u32, 2, 3], |_, t| {
                if t == 2 {
                    panic!("task failure");
                }
                t
            })
        });
        assert!(outcome.is_err());
    }
}
