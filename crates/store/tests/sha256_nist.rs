//! Verifies the in-crate SHA-256 implementation against the NIST test
//! vectors, as the `sp_store::sha256` module docs promise.
//!
//! Vectors come from FIPS 180-2 (appendix B examples) and the NIST
//! Cryptographic Algorithm Validation Program `SHA256ShortMsg.rsp` /
//! `SHA256LongMsg.rsp` response files.

use sp_store::sha256::{digest, to_hex, HashingWriter, Sha256};

fn hex_digest(data: &[u8]) -> String {
    to_hex(&digest(data))
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd-length hex string");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

/// FIPS 180-2 appendix B: the three worked examples.
#[test]
fn fips_180_2_worked_examples() {
    assert_eq!(
        hex_digest(b"abc"),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
    assert_eq!(
        hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
    assert_eq!(
        hex_digest(&vec![b'a'; 1_000_000]),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

/// CAVP SHA256ShortMsg.rsp: a spread of message lengths from 0 to 64
/// bytes, covering every padding regime of the 64-byte block.
#[test]
fn cavp_short_message_vectors() {
    // (message hex, expected digest hex)
    let vectors: &[(&str, &str)] = &[
        // Len = 0
        (
            "",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        // Len = 8
        (
            "d3",
            "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1",
        ),
        // Len = 16
        (
            "11af",
            "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98",
        ),
        // Len = 24
        (
            "b4190e",
            "dff2e73091f6c05e528896c4c831b9448653dc2ff043528f6769437bc7b975c2",
        ),
        // Len = 32
        (
            "74ba2521",
            "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e",
        ),
        // Len = 256 (32 bytes — one full hash-width message)
        (
            "294af4802e5e925eb1c6cc9c724f09dbc9c14ee0665fc6f3e90cc410082c5baa",
            "ec06475dc47e36abd9a25564fc823bf4486fb6cb6d0f391db1980fd36786ced1",
        ),
        // Len = 512 (64 bytes — exactly one block, padding spills over)
        (
            "3592ecfd1eac618fd390e7a9c24b656532509367c21a0eac1212ac83c0b20cd896eb72b801c4d212c5452bbbf09317b50c5c9fb1997553d2bbc29bb42f5748ad",
            "105a60865830ac3a371d3843324d4bb5fa8ec0e02ddaa389ad8da4f10215c454",
        ),
    ];
    for (msg_hex, want) in vectors {
        let msg = unhex(msg_hex);
        assert_eq!(&hex_digest(&msg), want, "message {msg_hex}");
    }
}

/// FIPS 180-2 appendix B.2-style long-message vectors: the 896-bit
/// two-block message (whose padding spills into a third block) and the
/// million-`a` message, each through the one-shot fast path *and* the
/// incremental interface.
#[test]
fn nist_long_message_vectors() {
    let two_block = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
    let want_two_block = "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1";
    assert_eq!(to_hex(&Sha256::digest_of(two_block)), want_two_block);
    let mut incremental = Sha256::new();
    incremental.update(&two_block[..64]);
    incremental.update(&two_block[64..]);
    assert_eq!(to_hex(&incremental.finalize()), want_two_block);

    let million = vec![b'a'; 1_000_000];
    let want_million = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
    assert_eq!(to_hex(&Sha256::digest_of(&million)), want_million);
    let mut incremental = Sha256::new();
    for chunk in million.chunks(997) {
        incremental.update(chunk);
    }
    assert_eq!(to_hex(&incremental.finalize()), want_million);
}

/// Multi-block boundary sweep: every length from 0 to 200 bytes agrees
/// between the one-shot fast path, the incremental hasher and the
/// streaming `HashingWriter`, covering both padding regimes of all three
/// final-block layouts.
#[test]
fn oneshot_incremental_and_writer_agree_on_every_boundary() {
    let data: Vec<u8> = (0u32..200).map(|i| (i * 131 % 251) as u8).collect();
    for len in 0..=data.len() {
        let oneshot = Sha256::digest_of(&data[..len]);
        let mut h = Sha256::new();
        h.update(&data[..len]);
        assert_eq!(h.finalize(), oneshot, "incremental at len {len}");
        let mut buf = Vec::new();
        let mut writer = HashingWriter::tee(&mut buf);
        writer.write(&data[..len]);
        assert_eq!(writer.finish(), oneshot, "writer at len {len}");
        assert_eq!(buf, &data[..len]);
    }
}

/// CAVP-style multi-block messages exercising the streaming interface: the
/// digest of a long message must not depend on how it is chunked.
#[test]
fn streaming_equals_one_shot_on_nist_lengths() {
    let message: Vec<u8> = (0u32..4096).map(|i| (i * 31 % 251) as u8).collect();
    let reference = digest(&message);
    for chunk in [1usize, 3, 55, 56, 63, 64, 65, 512, 1000] {
        let mut hasher = Sha256::new();
        for part in message.chunks(chunk) {
            hasher.update(part);
        }
        assert_eq!(hasher.finalize(), reference, "chunk size {chunk}");
    }
}

/// The monte-carlo style chained construction from the CAVP suite
/// (simplified): repeatedly hashing the previous digest must be stable.
#[test]
fn chained_digest_is_deterministic() {
    let mut seed = digest(b"sp-system");
    for _ in 0..1000 {
        seed = digest(&seed);
    }
    let mut again = digest(b"sp-system");
    for _ in 0..1000 {
        again = digest(&again);
    }
    assert_eq!(seed, again);
}
