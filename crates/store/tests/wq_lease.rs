//! Lease-table edge cases of the durable work queue.
//!
//! The fleet's crash-recovery guarantees live or die on exact lease
//! semantics: expiry inclusive at the heartbeat boundary, double release
//! as a protocol error (not a no-op), fencing-token rejection of commits
//! from expired or superseded leases, and the `SPWS` trust posture for
//! everything read off the shared medium — truncated or bit-flipped
//! queue files are dropped, never trusted.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sp_store::{Lease, TimeSource, WorkQueue, WqError};

/// A settable clock standing in for the wall clock a real fleet shares.
struct TestClock(AtomicU64);

impl TimeSource for TestClock {
    fn now_secs(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

fn queue(lease_secs: u64, tag: &str) -> (WorkQueue, Arc<TestClock>, PathBuf) {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sp-wq-lease-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::remove_dir_all(&dir).ok();
    let clock = Arc::new(TestClock(AtomicU64::new(50_000)));
    let q = WorkQueue::open_with_time(&dir, lease_secs, clock.clone()).unwrap();
    (q, clock, dir)
}

#[test]
fn expiry_is_inclusive_exactly_at_the_boundary() {
    let (q, clock, dir) = queue(30, "boundary");
    q.submit(b"work", 1, 1, 0).unwrap();
    let mut lease = q.lease_next("w1").unwrap().unwrap();
    assert_eq!(lease.expires_at, 50_030);

    // One second *before* the boundary the lease is alive: it can still
    // heartbeat, and nobody else can claim.
    clock.0.store(50_029, Ordering::SeqCst);
    assert!(q.lease_next("w2").unwrap().is_none());
    q.heartbeat(&mut lease).unwrap();
    assert_eq!(lease.expires_at, 50_029 + 30);

    // *At* the boundary the lease is dead — the heartbeat that lands on
    // `expires_at` is one second too late, and the work is reclaimable.
    clock.0.store(lease.expires_at, Ordering::SeqCst);
    assert!(matches!(
        q.heartbeat(&mut lease),
        Err(WqError::Expired { token: 1, .. })
    ));
    let reclaimed = q.lease_next("w2").unwrap().expect("boundary = expired");
    assert_eq!(reclaimed.token, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn double_release_is_a_protocol_error() {
    let (q, _clock, dir) = queue(60, "double-release");
    q.submit(b"work", 1, 1, 0).unwrap();
    let lease = q.lease_next("w1").unwrap().unwrap();
    q.publish_report(&lease, b"done").unwrap();
    q.release(&lease).unwrap();
    assert!(matches!(
        q.release(&lease),
        Err(WqError::AlreadyReleased { token: 1, .. })
    ));
    // Nor can a released lease heartbeat or publish.
    let mut stale = lease.clone();
    assert!(matches!(
        q.heartbeat(&mut stale),
        Err(WqError::AlreadyReleased { .. })
    ));
    assert!(matches!(
        q.publish_report(&lease, b"again"),
        Err(WqError::AlreadyReleased { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn commit_from_an_expired_lease_is_fenced() {
    let (q, clock, dir) = queue(30, "fencing");
    let seq = q.submit(b"work", 1, 1, 0).unwrap();
    let dead = q.lease_next("w1").unwrap().unwrap();

    // Expired but not yet superseded: the commit is rejected as expired —
    // the holder cannot sneak results in after its deadline.
    clock.0.fetch_add(30, Ordering::SeqCst);
    assert!(matches!(
        q.publish_report(&dead, b"late"),
        Err(WqError::Expired { token: 1, .. })
    ));
    assert!(q.report(seq).is_none());

    // Superseded by the next generation: rejected as stale, with both
    // tokens named.
    let fresh = q.lease_next("w2").unwrap().unwrap();
    match q.publish_report(&dead, b"stale") {
        Err(WqError::StaleLease { held, current, .. }) => {
            assert_eq!((held, current), (1, 2));
        }
        other => panic!("expected StaleLease, got {other:?}"),
    }
    // The live generation commits normally and its report is trusted.
    q.publish_report(&fresh, b"good").unwrap();
    q.release(&fresh).unwrap();
    assert_eq!(q.report(seq).unwrap(), b"good");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn releasing_a_lease_someone_else_reclaimed_is_rejected() {
    let (q, clock, dir) = queue(30, "foreign-release");
    q.submit(b"work", 1, 1, 0).unwrap();
    let dead = q.lease_next("w1").unwrap().unwrap();
    clock.0.fetch_add(30, Ordering::SeqCst);
    let fresh = q.lease_next("w2").unwrap().unwrap();
    // The zombie cannot release the work out from under the new holder.
    assert!(matches!(
        q.release(&dead),
        Err(WqError::StaleLease {
            held: 1,
            current: 2,
            ..
        })
    ));
    // A lease whose record names a different holder is not operable
    // either (an impersonated release is NotHeld, not honoured).
    let mut impostor = fresh.clone();
    impostor.holder = "w3".to_string();
    assert!(matches!(
        q.release(&impostor),
        Err(WqError::NotHeld { token: 2, .. })
    ));
    q.release(&fresh).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Renewal at the exact expiry boundary is one second too late: expiry
/// is inclusive, so `now == expires_at` means dead — renewal must fail
/// and must not extend the lease.
#[test]
fn renew_at_the_exact_expiry_boundary_fails() {
    let (q, clock, dir) = queue(30, "renew-boundary");
    q.submit(b"work", 1, 1, 0).unwrap();
    let mut lease = q.lease_next("w1").unwrap().unwrap();
    let boundary = lease.expires_at;
    clock.0.store(boundary, Ordering::SeqCst);
    assert!(matches!(
        q.renew(&mut lease),
        Err(WqError::Expired { token: 1, .. })
    ));
    // The failed renewal extended nothing: the caller's lease still
    // carries the old expiry, and the work is reclaimable right now.
    assert_eq!(lease.expires_at, boundary);
    assert!(q.lease_next("w2").unwrap().is_some());
    // One second earlier it renews, and the renewal reports the new
    // expiry the queue will actually judge by.
    let (q2, clock2, dir2) = queue(30, "renew-boundary-live");
    q2.submit(b"work", 1, 1, 0).unwrap();
    let mut live = q2.lease_next("w1").unwrap().unwrap();
    clock2.0.store(live.expires_at - 1, Ordering::SeqCst);
    let renewed_to = q2.renew(&mut live).unwrap();
    assert_eq!(renewed_to, live.expires_at);
    assert_eq!(renewed_to, clock2.0.load(Ordering::SeqCst) + 30);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

/// Renewal after fencing returns the fencing error — it can never
/// resurrect a lease whose work was re-issued to someone else.
#[test]
fn renew_after_fencing_returns_the_fencing_error() {
    let (q, clock, dir) = queue(30, "renew-fenced");
    q.submit(b"work", 1, 1, 0).unwrap();
    let mut zombie = q.lease_next("w1").unwrap().unwrap();
    clock.0.fetch_add(30, Ordering::SeqCst);
    let fresh = q.lease_next("w2").unwrap().unwrap();
    assert_eq!(fresh.token, 2);
    // The zombie's renewal is rejected with the fencing error naming
    // both tokens, and the live holder's lease is untouched by it.
    match q.renew(&mut zombie) {
        Err(WqError::StaleLease { held, current, .. }) => {
            assert_eq!((held, current), (1, 2));
        }
        other => panic!("expected StaleLease, got {other:?}"),
    }
    q.publish_report(&fresh, b"good").unwrap();
    q.release(&fresh).unwrap();
    assert_eq!(q.report(fresh.seq).unwrap(), b"good");
    std::fs::remove_dir_all(&dir).ok();
}

/// Renewal racing reclamation: whichever lands first, exactly one party
/// ends up holding the work. If the renewal lands before the claim, the
/// claimant finds a live lease and gets nothing; if the claim lands
/// first, the renewal is fenced.
#[test]
fn renewal_racing_reclamation_leaves_one_holder() {
    // Renewal first: the lease is alive again, the claim finds nothing.
    let (q, clock, dir) = queue(30, "renew-race-a");
    q.submit(b"work", 1, 1, 0).unwrap();
    let mut lease = q.lease_next("w1").unwrap().unwrap();
    clock.0.store(lease.expires_at - 1, Ordering::SeqCst);
    q.renew(&mut lease).unwrap();
    clock.0.fetch_add(15, Ordering::SeqCst); // past the *old* expiry
    assert!(q.lease_next("w2").unwrap().is_none(), "renewal won");
    std::fs::remove_dir_all(&dir).ok();

    // Claim first: the old holder's renewal is fenced, not honoured.
    let (q, clock, dir) = queue(30, "renew-race-b");
    q.submit(b"work", 1, 1, 0).unwrap();
    let mut old = q.lease_next("w1").unwrap().unwrap();
    clock.0.store(old.expires_at, Ordering::SeqCst);
    let claimed = q.lease_next("w2").unwrap().expect("claim won");
    assert!(matches!(
        q.renew(&mut old),
        Err(WqError::StaleLease {
            held: 1,
            current: 2,
            ..
        })
    ));
    q.release(&claimed).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// An abandoned-but-unexpired release makes the work immediately
/// reclaimable: releasing without a report is the polite "I can't do
/// this" hand-back, and the next claimant gets the next generation.
#[test]
fn release_without_report_requeues_the_work() {
    let (q, _clock, dir) = queue(3_600, "requeue");
    let seq = q.submit(b"work", 1, 1, 0).unwrap();
    let lease = q.lease_next("w1").unwrap().unwrap();
    q.release(&lease).unwrap();
    let again = q.lease_next("w2").unwrap().expect("requeued");
    assert_eq!(again.seq, seq);
    assert_eq!(again.token, 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn (half-written) report record reads as absent — never as a
/// trusted report — and the work it covered is simply re-leasable under
/// the next fencing generation, which can publish a fresh report.
#[test]
fn torn_report_reads_absent_and_the_work_re_leases() {
    let (q, clock, dir) = queue(30, "torn-report");
    let seq = q.submit(b"work", 1, 1, 0).unwrap();
    let lease = q.lease_next("w1").unwrap().unwrap();
    q.publish_report(&lease, b"the-report").unwrap();
    q.release(&lease).unwrap();
    assert_eq!(q.report(seq).as_deref(), Some(b"the-report".as_slice()));

    // The crash model's worst leftover: the record torn to a prefix.
    let reports = std::fs::read_dir(dir.join("reports"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect::<Vec<_>>();
    assert_eq!(reports.len(), 1);
    let bytes = std::fs::read(&reports[0]).unwrap();
    std::fs::write(&reports[0], &bytes[..bytes.len() / 2]).unwrap();

    // Detection, not trust; degradation, not abort.
    assert!(q.report(seq).is_none(), "a torn report must not be trusted");
    assert!(!q.drained(), "work without a trusted report is not drained");
    clock.0.fetch_add(31, Ordering::SeqCst);
    let recovery = q.lease_next("w2").unwrap().expect("re-leasable");
    assert_eq!(recovery.seq, seq);
    assert!(recovery.token > lease.token, "old generation stays burned");
    q.publish_report(&recovery, b"the-report").unwrap();
    q.release(&recovery).unwrap();
    assert_eq!(q.report(seq).as_deref(), Some(b"the-report".as_slice()));
    std::fs::remove_dir_all(&dir).ok();
}

/// Transient I/O faults surface as [`WqError::Io`] with a retryable kind
/// — never disguised as a lease-protocol verdict — so a retry policy can
/// tell "the disk hiccupped" from "the lease is gone" and the same
/// operation succeeds on the next attempt.
#[test]
fn transient_faults_surface_as_io_not_protocol_verdicts() {
    use sp_store::{FaultConfig, FaultFs, StoreFs, TimeSource};

    struct FixedTime;
    impl TimeSource for FixedTime {
        fn now_secs(&self) -> u64 {
            50_000
        }
    }

    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sp-wq-lease-transient-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::remove_dir_all(&dir).ok();
    let fault = Arc::new(FaultFs::over_os(FaultConfig::default()));
    let fault_fs: Arc<dyn StoreFs> = fault.clone();
    let q = WorkQueue::open_with(&dir, 60, Arc::new(FixedTime), fault_fs).unwrap();
    q.submit(b"work", 1, 1, 0).unwrap();
    let mut lease = q.lease_next("w1").unwrap().unwrap();

    // Arm one transient fault: the renew fails as Io(Interrupted)…
    fault.fail_next_write(sp_store::ForcedFault::Transient);
    match q.renew(&mut lease) {
        Err(WqError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        }
        other => panic!("transient fault must surface as WqError::Io, got {other:?}"),
    }
    // …and the very next attempt succeeds with the same token: the
    // fault proved nothing about the lease.
    q.renew(&mut lease).expect("retry succeeds");
    q.publish_report(&lease, b"done").unwrap();
    q.release(&lease).unwrap();
    assert!(q.drained());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lease_batch_claims_up_to_max_and_respects_the_filter() {
    let (q, _clock, dir) = queue(60, "batch-claim");
    let seqs: Vec<u64> = (0..5)
        .map(|i| {
            q.submit(format!("work-{i}").as_bytes(), 1 + i * 10, 1, 0)
                .unwrap()
        })
        .collect();

    // The filter models a worker's poisoned/completed caches.
    let skipped = seqs[1];
    let batch = q
        .try_lease_batch("w1", 3, |seq| seq != skipped)
        .expect("batch claim");
    let claimed: Vec<u64> = batch.iter().map(|l| l.seq).collect();
    assert_eq!(
        claimed,
        vec![seqs[0], seqs[2], seqs[3]],
        "max honoured, filter applied"
    );

    // Claimed work is invisible to a sibling; the remainder is not.
    let sibling = q.lease_batch("w2", 5).expect("sibling claim");
    let sibling_seqs: Vec<u64> = sibling.iter().map(|l| l.seq).collect();
    assert_eq!(sibling_seqs, vec![seqs[1], seqs[4]]);

    // Every batch-claimed lease speaks the full single-lease protocol.
    for lease in batch.iter().chain(sibling.iter()) {
        q.publish_report(lease, b"done").unwrap();
        q.release(lease).unwrap();
    }
    assert!(q.drained());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn expired_batch_is_fenced_per_item_and_reclaims_whole() {
    let (q, clock, dir) = queue(30, "batch-fence");
    let seqs: Vec<u64> = (0..3)
        .map(|i| {
            q.submit(format!("work-{i}").as_bytes(), 1 + i * 10, 1, 0)
                .unwrap()
        })
        .collect();
    let stale = q.lease_batch("w-slow", 3).expect("first claim");
    assert_eq!(stale.len(), 3);

    // The whole batch expires; a healthy sibling reclaims every item at
    // the next generation.
    clock.0.fetch_add(30, Ordering::SeqCst);
    let fresh = q.lease_batch("w-fresh", 3).expect("reclaim");
    assert_eq!(fresh.len(), 3);
    for (old, new) in stale.iter().zip(&fresh) {
        assert_eq!(old.seq, new.seq);
        assert!(new.token > old.token, "reclaim burns a new generation");
    }

    // The stale holder's batched flush is rejected item by item — the
    // fencing token keeps every one of its commits out, and the verdicts
    // stay index-aligned with the items.
    let payloads: Vec<(&Lease, &[u8])> = stale.iter().map(|l| (l, b"stale".as_slice())).collect();
    let verdicts = q.publish_and_release_batch(&payloads);
    assert_eq!(verdicts.len(), stale.len());
    for verdict in &verdicts {
        assert!(
            matches!(verdict, Err(WqError::StaleLease { .. })),
            "stale batch item must be fenced, got {verdict:?}"
        );
    }
    for seq in &seqs {
        assert!(q.report(*seq).is_none(), "no stale report may be trusted");
    }

    // The fresh holder's batch lands whole.
    let payloads: Vec<(&Lease, &[u8])> = fresh.iter().map(|l| (l, b"fresh".as_slice())).collect();
    for verdict in q.publish_and_release_batch(&payloads) {
        verdict.expect("current generation publishes");
    }
    for seq in &seqs {
        assert_eq!(q.report(*seq).as_deref(), Some(b"fresh".as_slice()));
    }
    assert!(q.drained());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partially_fenced_batch_commits_only_the_live_items() {
    let (q, clock, dir) = queue(30, "batch-partial");
    let a = q.submit(b"work-a", 1, 1, 0).unwrap();
    let b = q.submit(b"work-b", 11, 1, 0).unwrap();
    let batch = q.lease_batch("w1", 2).expect("claim both");
    let mut keep = batch[0].clone();

    // Renew only the first lease past the expiry horizon, then let the
    // second lapse and be re-leased by a sibling.
    clock.0.fetch_add(29, Ordering::SeqCst);
    q.renew(&mut keep).expect("still live");
    clock.0.fetch_add(1, Ordering::SeqCst);
    let reclaimed = q
        .try_lease(b, "w2")
        .expect("reclaim io")
        .expect("expired item reclaims");
    assert_eq!(reclaimed.seq, b);

    // The original batch flush: the renewed item commits, the superseded
    // one is fenced — one batch, two verdicts.
    let items: Vec<(&Lease, &[u8])> = vec![(&keep, b"kept"), (&batch[1], b"stale")];
    let verdicts = q.publish_and_release_batch(&items);
    assert!(verdicts[0].is_ok(), "live item commits: {:?}", verdicts[0]);
    assert!(
        matches!(verdicts[1], Err(WqError::StaleLease { .. })),
        "superseded item is fenced: {:?}",
        verdicts[1]
    );
    assert_eq!(q.report(a).as_deref(), Some(b"kept".as_slice()));
    assert!(q.report(b).is_none());

    // The reclaimer finishes the fenced item's work.
    q.publish_report(&reclaimed, b"redone").unwrap();
    q.release(&reclaimed).unwrap();
    assert_eq!(q.report(b).as_deref(), Some(b"redone".as_slice()));
    assert!(q.drained());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// However renew, heartbeat, release, claims and clock advances
    /// interleave, one submission never ends up with two live holders:
    /// with the clock frozen, at most one of every lease ever handed out
    /// can still commit a report (commit = the operational definition of
    /// "live holder" — it requires being the current, unreleased,
    /// unexpired generation).
    #[test]
    fn interleaved_renew_heartbeat_release_never_two_live_holders(
        ops in prop::collection::vec((0u8..5, any::<u8>(), any::<u8>()), 1..40),
    ) {
        let (q, clock, dir) = queue(20, "prop-renew");
        let seq = q.submit(b"work", 1, 1, 0).unwrap();
        let mut handles: Vec<Lease> = Vec::new();
        let mut next_holder = 0u32;
        for (op, pick, advance) in ops {
            match op {
                0 => {
                    clock.0.fetch_add((advance % 25) as u64, Ordering::SeqCst);
                }
                1 => {
                    next_holder += 1;
                    if let Ok(Some(lease)) = q.try_lease(seq, &format!("w{next_holder}")) {
                        handles.push(lease);
                    }
                }
                2 => {
                    if !handles.is_empty() {
                        let i = pick as usize % handles.len();
                        let _ = q.renew(&mut handles[i]);
                    }
                }
                3 => {
                    if !handles.is_empty() {
                        let i = pick as usize % handles.len();
                        let _ = q.heartbeat(&mut handles[i]);
                    }
                }
                _ => {
                    if !handles.is_empty() {
                        let i = pick as usize % handles.len();
                        let _ = q.release(&handles[i]);
                    }
                }
            }
        }
        let committed = handles
            .iter()
            .filter(|lease| q.publish_report(lease, b"x").is_ok())
            .count();
        prop_assert!(committed <= 1, "{committed} live holders of one seq");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The `SPWS` posture, extended to every queue record: flip any
    /// single byte (or truncate) any file under the queue directory and
    /// the affected record is dropped — submissions cannot be fabricated,
    /// reports cannot be forged, and the accounting never panics. Intact
    /// records keep loading bit-exact.
    #[test]
    fn corrupted_queue_files_are_dropped_never_trusted(
        file_pick in 0usize..1024,
        corruption in 0usize..1024,
        truncate in prop::bool::ANY,
    ) {
        let (q, clock, dir) = queue(30, "prop");
        let seq_a = q.submit(b"payload-a", 10, 5, 777).unwrap();
        let seq_b = q.submit(b"payload-b", 15, 3, 777).unwrap();
        // One completed unit (lease + report + release), one expired
        // lease awaiting reclaim — so every record kind is on disk.
        let lease_a = q.lease_next("w1").unwrap().unwrap();
        q.publish_report(&lease_a, b"report-a").unwrap();
        q.release(&lease_a).unwrap();
        let _lease_b = q.lease_next("w1").unwrap().unwrap();
        clock.0.fetch_add(30, Ordering::SeqCst);

        // Collect every record file under the queue.
        let mut files: Vec<PathBuf> = Vec::new();
        for sub in ["submissions", "leases", "reports", "workers"] {
            if let Ok(entries) = std::fs::read_dir(dir.join(sub)) {
                for entry in entries.flatten() {
                    files.push(entry.path());
                }
            }
        }
        files.sort();
        prop_assert!(!files.is_empty());
        let victim = &files[file_pick % files.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        prop_assume!(!bytes.is_empty());
        if truncate {
            bytes.truncate(corruption % bytes.len());
        } else {
            let at = corruption % bytes.len();
            bytes[at] ^= 0xff;
        }
        std::fs::write(victim, &bytes).unwrap();

        // Nothing read back may be fabricated: every surviving
        // submission is one of the originals, bit for bit.
        for submission in q.submissions() {
            let expected: &[u8] = if submission.seq == seq_a {
                b"payload-a"
            } else {
                prop_assert_eq!(submission.seq, seq_b);
                b"payload-b"
            };
            prop_assert_eq!(&submission.payload[..], expected);
            prop_assert_eq!(submission.origin, 777);
        }
        // A surviving report is the original; a corrupted one reads as
        // absent (the work would simply be re-leased and re-executed).
        if let Some(report) = q.report(seq_a) {
            prop_assert_eq!(&report[..], b"report-a");
        }
        prop_assert!(q.report(seq_b).is_none());
        // Accounting never panics, and dropped records are counted
        // (corrupting a lease or worker file may instead surface as a
        // reclaimable generation — also safe).
        let _ = q.stats();
        // The queue remains operable: a fresh worker can still make
        // progress on whatever validates.
        let _ = q.lease_next("w2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
